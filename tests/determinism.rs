//! Reproducibility: a simulation run is a pure function of its
//! configuration and seed, across the whole stack including the
//! application substrates.

use adios::apps::silo::tpcc::TpccScale;
use adios::prelude::*;

fn params(seed: u64) -> RunParams {
    RunParams {
        offered_rps: 900_000.0,
        seed,
        warmup: SimDuration::from_millis(3),
        measure: SimDuration::from_millis(12),
        local_mem_fraction: 0.2,
        keep_breakdowns: false,
        burst: None,
        timeline_bucket: None,
        trace_capacity: None,
        spans: None,
        faults: None,
        telemetry: None,
        profile: None,
        memory: None,
        tenants: None,
    }
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64) {
    (
        r.recorder.completed_in_window(),
        r.recorder.overall().percentile(50.0),
        r.recorder.overall().percentile(99.9),
        r.stats.prefetches,
        r.cache.misses,
    )
}

#[test]
fn microbench_bitwise_reproducible() {
    for kind in SystemKind::all() {
        let mut w1 = ArrayIndexWorkload::new(16_384);
        let mut w2 = ArrayIndexWorkload::new(16_384);
        let a = run_one(SystemConfig::for_kind(kind), &mut w1, params(5));
        let b = run_one(SystemConfig::for_kind(kind), &mut w2, params(5));
        assert_eq!(fingerprint(&a), fingerprint(&b), "{}", kind.name());
    }
}

#[test]
fn different_seeds_differ() {
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, params(5));
    let b = run_one(SystemConfig::adios(), &mut w2, params(6));
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different arrival sequences should not produce identical runs"
    );
}

#[test]
fn memcached_reproducible() {
    let mut w1 = MemcachedWorkload::new(60_000, 128);
    let mut w2 = MemcachedWorkload::new(60_000, 128);
    let a = run_one(SystemConfig::adios(), &mut w1, params(7));
    let b = run_one(SystemConfig::adios(), &mut w2, params(7));
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn tpcc_reproducible_including_occ() {
    let mut w1 = TpccWorkload::new(TpccScale::tiny(), 9);
    let mut w2 = TpccWorkload::new(TpccScale::tiny(), 9);
    let mut p = params(8);
    p.offered_rps = 60_000.0;
    let a = run_one(SystemConfig::dilos_p(), &mut w1, p.clone());
    let b = run_one(SystemConfig::dilos_p(), &mut w2, p);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(
        w1.stats().retries,
        w2.stats().retries,
        "OCC retries deterministic"
    );
    assert_eq!(w1.stats().commits, w2.stats().commits);
}

#[test]
fn metrics_and_trace_json_bitwise_reproducible() {
    // The observability layer inherits the simulation's determinism:
    // equal seeds serialise to byte-identical metrics + trace JSON.
    let mut p = params(5);
    p.trace_capacity = Some(200_000);
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    assert_eq!(a.trace_dropped, b.trace_dropped);
    assert_eq!(
        adios::core_api::run_json(&a),
        adios::core_api::run_json(&b),
        "equal seeds must serialise identically"
    );

    let mut w3 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w3, p2);
    assert_ne!(
        adios::core_api::run_json(&a),
        adios::core_api::run_json(&c),
        "different seeds must not collide"
    );
}

#[test]
fn span_and_perfetto_json_bitwise_reproducible() {
    // The span layer inherits the simulation's determinism too: equal
    // seeds must serialise to byte-identical span-tree and Perfetto
    // JSON (exemplar selection included).
    use adios::desim::span::{perfetto_json, spans_to_json};
    let mut p = params(5);
    p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    let (ra, rb) = (a.spans.as_ref().unwrap(), b.spans.as_ref().unwrap());
    assert!(!ra.exemplars.is_empty(), "tail exemplars expected");
    assert_eq!(ra.measured, rb.measured);
    assert_eq!(ra.stats.to_json(), rb.stats.to_json());
    assert_eq!(
        spans_to_json(&ra.exemplars),
        spans_to_json(&rb.exemplars),
        "equal seeds must serialise identical span trees"
    );
    assert_eq!(
        perfetto_json(&ra.exemplars),
        perfetto_json(&rb.exemplars),
        "equal seeds must serialise identical Perfetto JSON"
    );

    let mut w3 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w3, p2);
    assert_ne!(
        spans_to_json(&ra.exemplars),
        spans_to_json(&c.spans.as_ref().unwrap().exemplars),
        "different seeds must not collide"
    );
}

#[test]
fn fault_injection_bitwise_reproducible() {
    // The fault plane inherits the simulation's determinism end to
    // end: the same seed and scenario must serialise to byte-identical
    // run JSON (metrics + trace) and Perfetto span JSON.
    use adios::desim::span::perfetto_json;
    let mut p = params(5);
    p.trace_capacity = Some(200_000);
    p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
    p.faults = Some(FaultScenario::lossy());
    let cfg = || SystemConfig {
        memnode_replicas: 2,
        ..SystemConfig::adios()
    };
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(cfg(), &mut w1, p.clone());
    let b = run_one(cfg(), &mut w2, p.clone());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(
        a.metrics.counter("fetch_retransmits"),
        b.metrics.counter("fetch_retransmits"),
        "retransmission schedule must be reproducible"
    );
    assert_eq!(
        a.metrics.counter("faults.injected_losses"),
        b.metrics.counter("faults.injected_losses"),
        "fault injection must be reproducible"
    );
    assert_eq!(
        adios::core_api::run_json(&a),
        adios::core_api::run_json(&b),
        "equal seed + scenario must serialise identically"
    );
    assert_eq!(
        perfetto_json(&a.spans.as_ref().unwrap().exemplars),
        perfetto_json(&b.spans.as_ref().unwrap().exemplars),
        "equal seed + scenario must serialise identical Perfetto JSON"
    );

    // A different scenario over the same seed must not collide.
    let mut w3 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.faults = Some(FaultScenario::stall());
    let c = run_one(cfg(), &mut w3, p2);
    assert_ne!(
        adios::core_api::run_json(&a),
        adios::core_api::run_json(&c),
        "different scenarios must not collide"
    );
}

#[test]
fn sharded_runs_bitwise_reproducible() {
    // Sharding the page space must not cost any determinism: at 1 and
    // 4 shards, equal seeds serialise to byte-identical run JSON
    // (metrics + per-shard block + trace) and Perfetto span JSON.
    use adios::desim::span::perfetto_json;
    let mut jsons = Vec::new();
    for shards in [1usize, 4] {
        let mut p = params(5);
        p.trace_capacity = Some(200_000);
        p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
        let cfg = || SystemConfig {
            memnode_shards: shards,
            ..SystemConfig::adios()
        };
        let mut w1 = ArrayIndexWorkload::new(16_384);
        let mut w2 = ArrayIndexWorkload::new(16_384);
        let a = run_one(cfg(), &mut w1, p.clone());
        let b = run_one(cfg(), &mut w2, p.clone());
        assert_eq!(fingerprint(&a), fingerprint(&b), "{shards} shards");
        assert_eq!(
            adios::core_api::run_json(&a),
            adios::core_api::run_json(&b),
            "{shards} shards: equal seeds must serialise identically"
        );
        assert_eq!(
            perfetto_json(&a.spans.as_ref().unwrap().exemplars),
            perfetto_json(&b.spans.as_ref().unwrap().exemplars),
            "{shards} shards: equal seeds must serialise identical Perfetto JSON"
        );
        jsons.push(adios::core_api::run_json(&a));
    }
    assert_ne!(
        jsons[0], jsons[1],
        "shard counts must not collide: routing and the per-shard block differ"
    );
}

#[test]
fn telemetry_json_bitwise_reproducible() {
    // The telemetry plane inherits the simulation's determinism: equal
    // seeds must produce byte-identical telemetry JSON — series, SLO
    // event log, health trajectories and episode annotations — both
    // standalone and embedded in the run JSON.
    let mut p = params(5);
    p.faults = Some(FaultScenario::lossy());
    p.telemetry = Some(TelemetryConfig::default());
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    let (ta, tb) = (a.telemetry.as_ref().unwrap(), b.telemetry.as_ref().unwrap());
    assert!(ta.ticks > 0, "recorder must have sampled");
    assert_eq!(ta.events, tb.events, "SLO event logs must match");
    assert_eq!(
        ta.to_json(),
        tb.to_json(),
        "equal seeds must serialise identical telemetry JSON"
    );
    assert_eq!(ta.perfetto_json(), tb.perfetto_json());
    assert_eq!(ta.series_csv(), tb.series_csv());
    let ja = adios::core_api::run_json(&a);
    assert!(
        ja.contains("\"telemetry\":{\"tick_ns\":100000,"),
        "run JSON must embed the telemetry block"
    );
    assert_eq!(ja, adios::core_api::run_json(&b));

    // A different seed must not collide.
    let mut w3 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w3, p2);
    assert_ne!(ta.to_json(), c.telemetry.as_ref().unwrap().to_json());
}

/// FNV-1a 64 over a byte string (no dependency needed).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn single_shard_reproduces_the_unsharded_byte_stream() {
    // Regression anchor for the sharding refactor: with the default
    // `memnode_shards = 1`, today's runs must reproduce the
    // pre-sharding serialisation *byte for byte* — same length, same
    // FNV-1a fingerprint — for both the run JSON (metrics + trace) and
    // the Perfetto span export. The constants were captured on the
    // single-primary tree; refresh them via `cargo run --release
    // --example golden_capture` only when an intentional format change
    // lands.
    use adios::desim::span::perfetto_json;
    let mut p = params(5);
    p.trace_capacity = Some(200_000);
    p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
    let mut w = ArrayIndexWorkload::new(16_384);
    let res = run_one(SystemConfig::adios(), &mut w, p);
    let run = adios::core_api::run_json(&res);
    let spans = perfetto_json(&res.spans.as_ref().unwrap().exemplars);
    assert_eq!(
        (run.len(), fnv1a(run.as_bytes())),
        (5_212_345, 0xbaaf_7950_0447_bf72),
        "run JSON drifted from the pre-sharding byte stream"
    );
    assert_eq!(
        (spans.len(), fnv1a(spans.as_bytes())),
        (89_823, 0x2d32_f248_98b5_aab4),
        "Perfetto JSON drifted from the pre-sharding byte stream"
    );
}

#[test]
fn single_tenant_plane_reproduces_the_golden_byte_stream() {
    // The tenant plane must be invisible when it is degenerate: a
    // 1-tenant Poisson plane at the same rate and seed is the *same
    // run* as the planeless golden capture above — same arrival stream
    // (tenant 0 keeps the base seed bit for bit), no tenant counters in
    // the registry, no tenants block in the JSON — so both exports must
    // land on the pre-tenant FNV anchors byte for byte.
    use adios::desim::span::perfetto_json;
    let mut p = params(5);
    p.trace_capacity = Some(200_000);
    p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
    p.tenants = Some(TenantPlane::new(vec![TenantSpec::new(
        900_000.0,
        "array",
        TenantPriority::High,
    )]));
    let mut w = ArrayIndexWorkload::new(16_384);
    let res = run_one(SystemConfig::adios(), &mut w, p);
    let run = adios::core_api::run_json(&res);
    let spans = perfetto_json(&res.spans.as_ref().unwrap().exemplars);
    assert_eq!(
        (run.len(), fnv1a(run.as_bytes())),
        (5_212_345, 0xbaaf_7950_0447_bf72),
        "a degenerate tenant plane must not perturb the run JSON byte stream"
    );
    assert_eq!(
        (spans.len(), fnv1a(spans.as_bytes())),
        (89_823, 0x2d32_f248_98b5_aab4),
        "a degenerate tenant plane must not perturb the Perfetto byte stream"
    );
}

#[test]
fn tenant_plane_runs_bitwise_reproducible() {
    // The tenant plane inherits the simulation's determinism: equal
    // seeds over the same mix must serialise to byte-identical run JSON
    // (per-tenant block + conservation identity included).
    let plane = || {
        TenantPlane::new(vec![
            TenantSpec::new(300_000.0, "array", TenantPriority::High),
            TenantSpec::new(2_500_000.0, "array", TenantPriority::Low).with_bucket(200_000.0, 64),
        ])
        .with_shed_watermark(64)
    };
    let mut p = params(5);
    p.offered_rps = 2_800_000.0;
    p.tenants = Some(plane());
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    assert!(a.tenants[1].sheds > 0, "the mix must actually shed");
    let ja = adios::core_api::run_json(&a);
    assert!(
        ja.contains("\"tenants\":[") && ja.contains("\"conservation\":{"),
        "run JSON must embed the tenant and conservation blocks"
    );
    assert_eq!(ja, adios::core_api::run_json(&b));

    // A different seed must not collide.
    let mut w3 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w3, p2);
    assert_ne!(ja, adios::core_api::run_json(&c));
}

#[test]
fn workload_traces_independent_of_system() {
    // The same seed must offer the *same request sequence* to every
    // system — that is what makes cross-system comparisons fair.
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::dilos(), &mut w1, params(11));
    let b = run_one(SystemConfig::adios(), &mut w2, params(11));
    // Both systems clear this light load: same completion counts.
    assert_eq!(
        a.recorder.completed_total(),
        b.recorder.completed_total(),
        "identical arrival sequences expected"
    );
}

#[test]
fn profiler_output_bitwise_reproducible() {
    // The core profiler inherits the simulation's determinism: equal
    // seeds must serialise to byte-identical profile JSON, folded
    // flamegraph text and Perfetto state tracks, standalone and
    // embedded in the run JSON — and profiler-off runs must carry no
    // profile block at all (the golden byte-stream test above pins
    // that path bit for bit).
    let mut p = params(5);
    p.profile = Some(adios::desim::ProfileConfig::default());
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    let (pa, pb) = (a.profile.as_ref().unwrap(), b.profile.as_ref().unwrap());
    assert!(!pa.folded().is_empty(), "flamegraph must have stacks");
    assert_eq!(pa.folded(), pb.folded(), "folded stacks must match");
    assert_eq!(pa.to_json(), pb.to_json(), "profile JSON must match");
    assert_eq!(pa.perfetto_events(), pb.perfetto_events());
    let ja = adios::core_api::run_json(&a);
    assert!(
        ja.contains("\"profile\":{\"window_ns\":"),
        "run JSON must embed the profile block"
    );
    assert_eq!(ja, adios::core_api::run_json(&b));

    // Profiler-off runs say nothing about profiling.
    let mut w3 = ArrayIndexWorkload::new(16_384);
    let off = run_one(SystemConfig::adios(), &mut w3, params(5));
    assert!(
        !adios::core_api::run_json(&off).contains("\"profile\""),
        "disabled profiler must leave the run JSON untouched"
    );

    // A different seed must not collide.
    let mut w4 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w4, p2);
    assert_ne!(pa.to_json(), c.profile.as_ref().unwrap().to_json());
}

#[test]
fn explicit_single_dispatcher_reproduces_the_golden_byte_stream() {
    // The dispatcher-scaling knobs must be invisible at their
    // defaults: spelling out `dispatchers = 1` + `SingleFcfs`
    // explicitly is the *same machine* as the golden capture above —
    // same run JSON and Perfetto export, byte for byte, on the
    // committed FNV anchors.
    use adios::desim::span::perfetto_json;
    let mut p = params(5);
    p.trace_capacity = Some(200_000);
    p.spans = Some(adios::desim::SpanConfig::with_exemplars(95.0, 32));
    let cfg = SystemConfig {
        dispatchers: 1,
        dispatch_policy: DispatchPolicy::SingleFcfs,
        ..SystemConfig::adios()
    };
    let mut w = ArrayIndexWorkload::new(16_384);
    let res = run_one(cfg, &mut w, p);
    let run = adios::core_api::run_json(&res);
    let spans = perfetto_json(&res.spans.as_ref().unwrap().exemplars);
    assert_eq!(
        (run.len(), fnv1a(run.as_bytes())),
        (5_212_345, 0xbaaf_7950_0447_bf72),
        "an explicit single-dispatcher machine must reproduce the golden run JSON"
    );
    assert_eq!(
        (spans.len(), fnv1a(spans.as_bytes())),
        (89_823, 0x2d32_f248_98b5_aab4),
        "an explicit single-dispatcher machine must reproduce the golden Perfetto JSON"
    );
}

#[test]
fn multi_dispatcher_runs_bitwise_reproducible() {
    // Scaling the dispatch plane must not cost any determinism: for
    // every policy on a four-dispatcher machine, equal seeds serialise
    // to byte-identical run JSON (metrics, per-dispatcher counters and
    // trace included) — and the policies must not collide with each
    // other, since their admission schedules genuinely differ.
    let mut jsons = Vec::new();
    for policy in [
        DispatchPolicy::SingleFcfs,
        DispatchPolicy::WorkStealing,
        DispatchPolicy::FlatCombining,
    ] {
        let cfg = || SystemConfig {
            dispatchers: 4,
            dispatch_policy: policy,
            workers: 32,
            ..SystemConfig::adios()
        };
        let mut p = params(5);
        p.offered_rps = 3_000_000.0;
        p.trace_capacity = Some(200_000);
        let mut w1 = ArrayIndexWorkload::new(16_384);
        let mut w2 = ArrayIndexWorkload::new(16_384);
        let a = run_one(cfg(), &mut w1, p.clone());
        let b = run_one(cfg(), &mut w2, p);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{policy:?}");
        let ja = adios::core_api::run_json(&a);
        assert_eq!(
            ja,
            adios::core_api::run_json(&b),
            "{policy:?}: equal seeds must serialise identically"
        );
        jsons.push(ja);
    }
    assert_ne!(jsons[0], jsons[1], "stealing must not collide with FCFS");
    assert_ne!(jsons[0], jsons[2], "combining must not collide with FCFS");
    assert_ne!(jsons[1], jsons[2], "stealing and combining must differ");
}

#[test]
fn memory_observatory_bitwise_reproducible() {
    // The memory observatory inherits the simulation's determinism:
    // equal seeds must serialise byte-identical `"memory"` run-JSON
    // blocks, heatmap CSVs and Perfetto counter tracks — and
    // observatory-off runs must carry no memory block at all (the
    // golden byte-stream tests above pin that path bit for bit).
    let mut p = params(5);
    p.memory = Some(MemObsConfig::default());
    let mut w1 = ArrayIndexWorkload::new(16_384);
    let mut w2 = ArrayIndexWorkload::new(16_384);
    let a = run_one(SystemConfig::adios(), &mut w1, p.clone());
    let b = run_one(SystemConfig::adios(), &mut w2, p.clone());
    let (ma, mb) = (a.memory.as_ref().unwrap(), b.memory.as_ref().unwrap());
    assert!(ma.holds(), "fate conservation must hold");
    assert!(ma.touches > 0, "the run must book demand accesses");
    assert_eq!(ma.to_json(), mb.to_json(), "memory JSON must match");
    assert_eq!(ma.heatmap_csv(), mb.heatmap_csv());
    assert_eq!(ma.fingerprint_csv(), mb.fingerprint_csv());
    assert_eq!(
        ma.perfetto_counter_events(3_000_000),
        mb.perfetto_counter_events(3_000_000)
    );
    let ja = adios::core_api::run_json(&a);
    assert!(
        ja.contains("\"memory\":{\"window_ns\":"),
        "run JSON must embed the memory block"
    );
    assert_eq!(ja, adios::core_api::run_json(&b));

    // Observatory-off runs say nothing about memory.
    let mut w3 = ArrayIndexWorkload::new(16_384);
    let off = run_one(SystemConfig::adios(), &mut w3, params(5));
    assert!(off.memory.is_none());
    assert!(
        !adios::core_api::run_json(&off).contains("\"memory\""),
        "disabled observatory must leave the run JSON untouched"
    );

    // A different seed must not collide.
    let mut w4 = ArrayIndexWorkload::new(16_384);
    let mut p2 = p.clone();
    p2.seed = 6;
    let c = run_one(SystemConfig::adios(), &mut w4, p2);
    assert_ne!(ma.to_json(), c.memory.as_ref().unwrap().to_json());
}
