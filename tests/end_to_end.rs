//! End-to-end integration tests: the paper's headline behaviours must
//! hold across the full stack (fabric + paging + runtime + loadgen) at
//! test-sized working sets.

use adios::prelude::*;

fn params(rps: f64) -> RunParams {
    RunParams {
        offered_rps: rps,
        seed: 77,
        warmup: SimDuration::from_millis(3),
        measure: SimDuration::from_millis(15),
        local_mem_fraction: 0.2,
        keep_breakdowns: false,
        burst: None,
        timeline_bucket: None,
        trace_capacity: None,
        spans: None,
        faults: None,
        telemetry: None,
        profile: None,
        memory: None,
        tenants: None,
    }
}

fn micro(kind: SystemKind, rps: f64) -> RunResult {
    let mut wl = ArrayIndexWorkload::new(32_768);
    run_one(SystemConfig::for_kind(kind), &mut wl, params(rps))
}

#[test]
fn headline_throughput_ordering() {
    // Past every busy-waiter's saturation: Adios > DiLOS ≈ DiLOS-P > Hermit.
    let rps = 2_600_000.0;
    let hermit = micro(SystemKind::Hermit, rps).recorder.achieved_rps();
    let dilos = micro(SystemKind::Dilos, rps).recorder.achieved_rps();
    let dilos_p = micro(SystemKind::DilosP, rps).recorder.achieved_rps();
    let adios = micro(SystemKind::Adios, rps).recorder.achieved_rps();
    assert!(adios > dilos * 1.2, "adios {adios} vs dilos {dilos}");
    assert!(adios > dilos_p * 1.2, "adios {adios} vs dilos_p {dilos_p}");
    assert!(dilos > hermit, "dilos {dilos} vs hermit {hermit}");
}

#[test]
fn headline_tail_latency_past_the_knee() {
    // At a load DiLOS can no longer absorb, its tail explodes while
    // Adios' stays in the tens of microseconds.
    let rps = 1_900_000.0;
    let dilos = micro(SystemKind::Dilos, rps);
    let adios = micro(SystemKind::Adios, rps);
    let (d, a) = (
        dilos.recorder.overall().percentile(99.9),
        adios.recorder.overall().percentile(99.9),
    );
    assert!(
        d > a * 3,
        "DiLOS P99.9 {d} ns should dwarf Adios' {a} ns past the knee"
    );
    assert!(
        a < 100_000,
        "Adios P99.9 should stay microsecond-scale: {a} ns"
    );
}

#[test]
fn rdma_utilisation_gap() {
    let rps = 2_600_000.0;
    let dilos = micro(SystemKind::Dilos, rps);
    let adios = micro(SystemKind::Adios, rps);
    assert!(
        adios.rdma_data_util > dilos.rdma_data_util + 0.15,
        "adios {} vs dilos {}",
        adios.rdma_data_util,
        dilos.rdma_data_util
    );
    assert!(adios.rdma_data_util > 0.6, "{}", adios.rdma_data_util);
}

#[test]
fn spin_time_is_the_differentiator() {
    let rps = 1_500_000.0;
    let dilos = micro(SystemKind::Dilos, rps);
    let adios = micro(SystemKind::Adios, rps);
    assert!(dilos.spin_fraction() > 0.3, "{}", dilos.spin_fraction());
    assert!(adios.spin_fraction() < 0.03, "{}", adios.spin_fraction());
}

#[test]
fn polling_delegation_improves_peak() {
    let rps = 2_400_000.0;
    let mut wl = ArrayIndexWorkload::new(32_768);
    let on = run_one(SystemConfig::adios(), &mut wl, params(rps));
    let off_cfg = SystemConfig {
        polling_delegation: false,
        ..SystemConfig::adios()
    };
    let off = run_one(off_cfg, &mut wl, params(rps));
    assert!(
        on.recorder.achieved_rps() >= off.recorder.achieved_rps(),
        "delegation must not hurt: {} vs {}",
        on.recorder.achieved_rps(),
        off.recorder.achieved_rps()
    );
}

#[test]
fn sensitivity_to_local_memory_is_monotone_for_adios() {
    let mut wl = ArrayIndexWorkload::new(32_768);
    let mut last = 0.0;
    for frac in [0.1, 0.4, 1.0] {
        let mut p = params(2_000_000.0);
        p.local_mem_fraction = frac;
        let r = run_one(SystemConfig::adios(), &mut wl, p);
        let achieved = r.recorder.achieved_rps();
        assert!(
            achieved >= last * 0.98,
            "throughput should not degrade with more local memory: {achieved} after {last}"
        );
        last = achieved;
    }
}

#[test]
fn dilos_wins_with_unlimited_local_memory() {
    // The paper's honesty check: with no remote memory, the simpler
    // busy-wait code path is (slightly) ahead.
    let mut wl = ArrayIndexWorkload::new(32_768);
    let mut p = params(1_000_000.0);
    p.local_mem_fraction = 1.0;
    let d = run_one(SystemConfig::dilos(), &mut wl, p.clone());
    let a = run_one(SystemConfig::adios(), &mut wl, p);
    assert!(
        d.recorder.overall().percentile(50.0) <= a.recorder.overall().percentile(50.0),
        "DiLOS P50 {} vs Adios {}",
        d.recorder.overall().percentile(50.0),
        a.recorder.overall().percentile(50.0)
    );
    assert_eq!(d.cache.misses, 0);
    assert_eq!(a.cache.misses, 0);
}

#[test]
fn hermit_tail_reflects_kernel_interference() {
    let hermit = micro(SystemKind::Hermit, 400_000.0);
    let dilos = micro(SystemKind::Dilos, 400_000.0);
    let (h, d) = (
        hermit.recorder.overall().percentile(99.9),
        dilos.recorder.overall().percentile(99.9),
    );
    assert!(
        h > d * 5,
        "Hermit P99.9 {h} ns should be far above DiLOS' {d} ns at light load"
    );
}

#[test]
fn pf_aware_dispatch_never_worse_on_average() {
    let mut wl = ArrayIndexWorkload::new(32_768);
    let mut pf_total = 0u64;
    let mut rr_total = 0u64;
    for rps in [1_200_000.0, 1_800_000.0] {
        let pf = run_one(SystemConfig::adios(), &mut wl, params(rps));
        let rr_cfg = SystemConfig {
            worker_select: WorkerSelect::RoundRobin,
            ..SystemConfig::adios()
        };
        let rr = run_one(rr_cfg, &mut wl, params(rps));
        pf_total += pf.recorder.overall().percentile(99.9);
        rr_total += rr.recorder.overall().percentile(99.9);
    }
    assert!(
        pf_total as f64 <= rr_total as f64 * 1.05,
        "PF-aware {pf_total} vs RR {rr_total}"
    );
}

#[test]
fn preemption_is_counterproductive_on_low_dispersion() {
    // Figure 2a: on the (bimodal but short) microbenchmark, DiLOS-P is
    // no better than DiLOS.
    let d = micro(SystemKind::Dilos, 1_500_000.0);
    let p = micro(SystemKind::DilosP, 1_500_000.0);
    assert!(
        p.recorder.overall().percentile(99.0) >= d.recorder.overall().percentile(99.0) * 95 / 100,
        "DiLOS-P should not beat DiLOS here"
    );
    // Remote requests (~5.5 µs busy-waited service) exceed the 5 µs
    // quantum, so most of them eat a pointless preemption — exactly why
    // the paper finds preemption counterproductive at low dispersion.
    assert!(p.stats.preemptions > 0);
    assert_eq!(d.stats.preemptions, 0);
}

#[test]
fn bursty_arrivals_raise_the_tail_at_equal_mean_load() {
    // Mean load such that even the 1.9x burst peak stays within Adios'
    // capacity — so completions are preserved and only the tail moves.
    let mut wl = ArrayIndexWorkload::new(32_768);
    let steady = params(1_000_000.0);
    let mut bursty = params(1_000_000.0);
    bursty.burst = Some((1.9, SimDuration::from_micros(300)));
    let s = run_one(SystemConfig::adios(), &mut wl, steady);
    let b = run_one(SystemConfig::adios(), &mut wl, bursty);
    assert!(
        b.recorder.overall().percentile(99.9) > s.recorder.overall().percentile(99.9),
        "bursts must show in the tail: {} vs {}",
        b.recorder.overall().percentile(99.9),
        s.recorder.overall().percentile(99.9)
    );
    // Same mean: throughput within a few percent.
    let ratio = b.recorder.achieved_rps() / s.recorder.achieved_rps();
    assert!((0.9..=1.1).contains(&ratio), "mean rate preserved: {ratio}");
}

#[test]
fn infiniswap_sits_far_below_every_busy_waiter() {
    // The paper's reason for excluding Infiniswap from its figures.
    let inf = {
        let mut wl = ArrayIndexWorkload::new(32_768);
        run_one(SystemConfig::infiniswap(), &mut wl, params(900_000.0))
    };
    let dilos = micro(SystemKind::Dilos, 900_000.0);
    assert!(
        inf.recorder.achieved_rps() < dilos.recorder.achieved_rps() * 0.8,
        "infiniswap {} vs dilos {}",
        inf.recorder.achieved_rps(),
        dilos.recorder.achieved_rps()
    );
    assert!(
        inf.recorder.overall().percentile(50.0) > dilos.recorder.overall().percentile(50.0) * 5,
        "kernel-scheduler yielding is not microsecond-scale"
    );
}

#[test]
fn work_stealing_approximates_the_single_queue() {
    let mut wl = ArrayIndexWorkload::new(32_768);
    let sq = run_one(SystemConfig::adios(), &mut wl, params(1_600_000.0));
    let ws_cfg = SystemConfig {
        queue_model: QueueModel::PerWorkerStealing,
        ..SystemConfig::adios()
    };
    let ws = run_one(ws_cfg, &mut wl, params(1_600_000.0));
    assert!(ws.stats.steals > 0);
    let ratio = ws.recorder.overall().percentile(99.9) as f64
        / sq.recorder.overall().percentile(99.9) as f64;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "stealing should track c-FCFS within ~1.5x: {ratio}"
    );
}
