//! Property-based tests over the full stack: arbitrary loads, cache
//! ratios and policies must never violate the simulator's invariants.

use adios::prelude::*;
use proptest::prelude::*;

fn run_micro(kind: SystemKind, rps: f64, frac: f64, seed: u64) -> RunResult {
    let mut wl = ArrayIndexWorkload::new(8_192);
    run_one(
        SystemConfig::for_kind(kind),
        &mut wl,
        RunParams {
            offered_rps: rps,
            seed,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(6),
            local_mem_fraction: frac,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No configuration panics, and basic accounting invariants hold.
    #[test]
    fn simulation_invariants(
        kind_idx in 0usize..4,
        rps in 50_000.0f64..3_000_000.0,
        frac in 0.05f64..1.0,
        seed in 0u64..1_000,
    ) {
        let kind = SystemKind::all()[kind_idx];
        let r = run_micro(kind, rps, frac, seed);

        // Latency percentiles are ordered.
        let h = r.recorder.overall();
        prop_assert!(h.percentile(50.0) <= h.percentile(99.0));
        prop_assert!(h.percentile(99.0) <= h.percentile(99.9));

        // Utilisation is a fraction.
        prop_assert!((0.0..=1.0).contains(&r.rdma_data_util));
        prop_assert!((0.0..=1.0).contains(&r.rdma_ctrl_util));

        // Spin time cannot exceed total worker time.
        prop_assert!(r.spin_fraction() <= 1.0 + 1e-9);

        // Cache accounting: hits + misses + coalesced cover accesses;
        // misses imply fetch traffic unless everything is local. Zero
        // misses are only guaranteed when the rounded frame count
        // covers every page.
        if ((8_192.0 * frac).round() as u64) >= 8_192 {
            prop_assert_eq!(r.cache.misses, 0);
        }
        if r.cache.misses == 0 {
            prop_assert!(r.rdma_data_util < 1e-6);
        }

        // Throughput can never exceed offered load (completions in the
        // window come from the same open-loop process).
        prop_assert!(r.recorder.achieved_rps() <= rps * 1.15 + 50_000.0);
    }

    /// The yield policy never spins (beyond QP-full pauses, which are
    /// bounded by fetch latency).
    #[test]
    fn adios_never_spins_meaningfully(
        rps in 100_000.0f64..2_400_000.0,
        seed in 0u64..100,
    ) {
        let r = run_micro(SystemKind::Adios, rps, 0.2, seed);
        prop_assert!(
            r.spin_fraction() < 0.05,
            "spin fraction {} at {} rps",
            r.spin_fraction(),
            rps
        );
    }

    /// Busy-wait spin time scales with the miss rate.
    #[test]
    fn dilos_spin_tracks_misses(frac in 0.1f64..0.9) {
        let r = run_micro(SystemKind::Dilos, 1_000_000.0, frac, 3);
        let miss_rate =
            r.cache.misses as f64 / (r.cache.hits + r.cache.misses).max(1) as f64;
        if miss_rate > 0.4 {
            prop_assert!(r.spin_fraction() > 0.1, "spin {}", r.spin_fraction());
        }
        if miss_rate < 0.05 {
            prop_assert!(r.spin_fraction() < 0.1, "spin {}", r.spin_fraction());
        }
    }

    /// Breakdown components of any run stay below the recorded e2e
    /// latency budget in aggregate.
    #[test]
    fn breakdowns_are_sane(seed in 0u64..50) {
        let mut wl = ArrayIndexWorkload::new(8_192);
        let mut r = run_one(
            SystemConfig::dilos(),
            &mut wl,
            RunParams {
                offered_rps: 1_200_000.0,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                keep_breakdowns: true,
                burst: None,
                timeline_bucket: None,
            },
        );
        let p50_e2e = r.recorder.overall().percentile(50.0) as f64;
        let b = r.recorder.breakdown_at(50.0);
        let total = b.mean.queueing_ns + b.mean.handling_ns + b.mean.rdma_ns
            + b.mean.ctxswitch_ns;
        // The on-node components cannot exceed end-to-end latency (which
        // additionally includes the client links), modulo bucketing.
        prop_assert!(
            total <= p50_e2e * 1.25,
            "components {total} vs e2e {p50_e2e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Workload traces from the applications always replay to completion
    /// (no stuck requests) at a light load.
    #[test]
    fn app_traces_always_complete(seed in 0u64..20) {
        let mut wl = MemcachedWorkload::new(30_000, 128);
        let r = run_one(
            SystemConfig::adios(),
            &mut wl,
            RunParams {
                offered_rps: 150_000.0,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(8),
                local_mem_fraction: 0.2,
                keep_breakdowns: false,
                burst: None,
                timeline_bucket: None,
            },
        );
        prop_assert_eq!(r.recorder.dropped(), 0);
        prop_assert!(r.recorder.completed_in_window() > 500);
    }
}
