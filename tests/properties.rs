//! Property-based tests over the full stack: randomized loads, cache
//! ratios and policies must never violate the simulator's invariants.
//! Inputs are drawn from the simulator's own seeded generator so the
//! suite is deterministic (no external property-testing dependency).

use adios::desim::Rng;
use adios::prelude::*;

fn run_micro(kind: SystemKind, rps: f64, frac: f64, seed: u64) -> RunResult {
    let mut wl = ArrayIndexWorkload::new(8_192);
    run_one(
        SystemConfig::for_kind(kind),
        &mut wl,
        RunParams {
            offered_rps: rps,
            seed,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(6),
            local_mem_fraction: frac,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
            ..Default::default()
        },
    )
}

/// No configuration panics, and basic accounting invariants hold.
#[test]
fn simulation_invariants() {
    let mut gen = Rng::new(0x51AB);
    for case in 0..24 {
        let kind = SystemKind::all()[case % 4];
        let rps = 50_000.0 + gen.gen_f64() * 2_950_000.0;
        let frac = 0.05 + gen.gen_f64() * 0.95;
        let seed = gen.gen_range(1_000);
        let r = run_micro(kind, rps, frac, seed);
        let ctx = format!("{} rps={rps:.0} frac={frac:.3} seed={seed}", kind.name());

        // Latency percentiles are ordered.
        let h = r.recorder.overall();
        assert!(h.percentile(50.0) <= h.percentile(99.0), "{ctx}");
        assert!(h.percentile(99.0) <= h.percentile(99.9), "{ctx}");

        // Utilisation is a fraction.
        assert!((0.0..=1.0).contains(&r.rdma_data_util), "{ctx}");
        assert!((0.0..=1.0).contains(&r.rdma_ctrl_util), "{ctx}");

        // Spin time cannot exceed total worker time.
        assert!(
            r.spin_fraction() <= 1.0 + 1e-9,
            "{ctx}: {}",
            r.spin_fraction()
        );

        // Cache accounting: zero misses are only guaranteed when the
        // rounded frame count covers every page; no misses implies no
        // fetch traffic.
        if ((8_192.0 * frac).round() as u64) >= 8_192 {
            assert_eq!(r.cache.misses, 0, "{ctx}");
        }
        if r.cache.misses == 0 {
            assert!(r.rdma_data_util < 1e-6, "{ctx}");
        }

        // Throughput can never exceed offered load (completions in the
        // window come from the same open-loop process).
        assert!(r.recorder.achieved_rps() <= rps * 1.15 + 50_000.0, "{ctx}");
    }
}

/// The yield policy never spins (beyond QP-full pauses, which are
/// bounded by fetch latency).
#[test]
fn adios_never_spins_meaningfully() {
    let mut gen = Rng::new(0xAD10);
    for _ in 0..8 {
        let rps = 100_000.0 + gen.gen_f64() * 2_300_000.0;
        let seed = gen.gen_range(100);
        let r = run_micro(SystemKind::Adios, rps, 0.2, seed);
        assert!(
            r.spin_fraction() < 0.05,
            "spin fraction {} at {} rps (seed {seed})",
            r.spin_fraction(),
            rps
        );
    }
}

/// Busy-wait spin time scales with the miss rate.
#[test]
fn dilos_spin_tracks_misses() {
    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = run_micro(SystemKind::Dilos, 1_000_000.0, frac, 3);
        let miss_rate = r.cache.misses as f64 / (r.cache.hits + r.cache.misses).max(1) as f64;
        if miss_rate > 0.4 {
            assert!(
                r.spin_fraction() > 0.1,
                "frac {frac}: spin {}",
                r.spin_fraction()
            );
        }
        if miss_rate < 0.05 {
            assert!(
                r.spin_fraction() < 0.1,
                "frac {frac}: spin {}",
                r.spin_fraction()
            );
        }
    }
}

/// Breakdown components of any run stay below the recorded e2e latency
/// budget in aggregate.
#[test]
fn breakdowns_are_sane() {
    for seed in [0u64, 7, 13, 29, 43] {
        let mut wl = ArrayIndexWorkload::new(8_192);
        let mut r = run_one(
            SystemConfig::dilos(),
            &mut wl,
            RunParams {
                offered_rps: 1_200_000.0,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                keep_breakdowns: true,
                burst: None,
                timeline_bucket: None,
                ..Default::default()
            },
        );
        let p50_e2e = r.recorder.overall().percentile(50.0) as f64;
        let b = r.recorder.breakdown_at(50.0);
        let total = b.mean.queueing_ns + b.mean.handling_ns + b.mean.rdma_ns + b.mean.ctxswitch_ns;
        // The on-node components cannot exceed end-to-end latency (which
        // additionally includes the client links), modulo bucketing.
        assert!(
            total <= p50_e2e * 1.25,
            "seed {seed}: components {total} vs e2e {p50_e2e}"
        );
    }
}

/// Every percentile family the span layer reports is monotone:
/// p50 ≤ p99 ≤ p99.9 for the end-to-end histogram of every sweep row
/// and for every per-stage histogram.
#[test]
fn span_percentiles_are_monotone() {
    let mut gen = Rng::new(0x5AA5);
    for case in 0..8 {
        let kind = SystemKind::all()[case % 4];
        let rps = 200_000.0 + gen.gen_f64() * 1_800_000.0;
        let seed = gen.gen_range(1_000);
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            SystemConfig::for_kind(kind),
            &mut wl,
            RunParams {
                offered_rps: rps,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                spans: Some(adios::desim::SpanConfig::stats_only()),
                ..Default::default()
            },
        );
        let ctx = format!("{} rps={rps:.0} seed={seed}", kind.name());
        let h = r.recorder.overall();
        assert!(h.percentile(50.0) <= h.percentile(99.0), "{ctx}");
        assert!(h.percentile(99.0) <= h.percentile(99.9), "{ctx}");
        let report = r.spans.as_ref().expect("span stats requested");
        for (name, h) in report.stats.iter() {
            let (p50, p99, p999) = (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
            assert!(p50 <= p99, "{ctx} stage {name}: p50 {p50} > p99 {p99}");
            assert!(p99 <= p999, "{ctx} stage {name}: p99 {p99} > p99.9 {p999}");
            assert!(p999 <= h.max(), "{ctx} stage {name}");
        }
    }
}

/// Critical-path attribution tiles the request exactly: the ten phase
/// components of every measured request sum to its end-to-end latency,
/// and the aggregated `BreakdownAt` rows inherit that identity within
/// float rounding.
#[test]
fn critical_path_components_sum_to_e2e() {
    for kind in SystemKind::all() {
        let mut wl = ArrayIndexWorkload::new(8_192);
        let mut r = run_one(
            SystemConfig::for_kind(kind),
            &mut wl,
            RunParams {
                offered_rps: 1_200_000.0,
                seed: 17,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                keep_breakdowns: true,
                spans: Some(adios::desim::SpanConfig::default()),
                ..Default::default()
            },
        );
        let report = r.spans.as_ref().expect("attributions requested");
        assert!(!report.attributions.is_empty(), "{}", kind.name());
        for cp in &report.attributions {
            assert_eq!(
                cp.components_sum(),
                cp.e2e_ns,
                "{}: stage components must tile the request exactly",
                kind.name()
            );
        }
        for p in [10.0, 50.0, 99.0, 99.9] {
            let b = r.recorder.breakdown_at(p);
            if b.mean_e2e_ns == 0.0 {
                continue;
            }
            // total_ns() excludes the busy-wait overlay (spin time is
            // already inside rdma_ns), so means must match e2e exactly
            // up to float rounding.
            let diff = (b.mean.total_ns() - b.mean_e2e_ns).abs();
            assert!(
                diff <= 1.0,
                "{} P{p}: components {} vs e2e {}",
                kind.name(),
                b.mean.total_ns(),
                b.mean_e2e_ns
            );
        }
    }
}

/// Retransmission conserves every request: under randomized non-fatal
/// fault scenarios (packet loss, corruption, link flaps, memnode
/// stalls) nothing is ever lost — the RC transport retries until
/// delivery — and the error-CQE bookkeeping partitions exactly into
/// failovers plus chain failures.
#[test]
fn conservation_under_faults() {
    let scenarios: &[fn() -> FaultScenario] = &[
        FaultScenario::lossy,
        FaultScenario::flaky,
        FaultScenario::stall,
    ];
    let mut gen = Rng::new(0xFA17);
    for case in 0..6 {
        let kind = SystemKind::all()[case % 4];
        let scenario = scenarios[case % scenarios.len()]();
        let rps = 200_000.0 + gen.gen_f64() * 600_000.0;
        let seed = gen.gen_range(1_000);
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            SystemConfig::for_kind(kind),
            &mut wl,
            RunParams {
                offered_rps: rps,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(8),
                local_mem_fraction: 0.2,
                faults: Some(scenario.clone()),
                telemetry: None,
                ..Default::default()
            },
        );
        let ctx = format!(
            "{} scenario={} rps={rps:.0} seed={seed}",
            kind.name(),
            scenario.name
        );
        let c = |n: &str| r.metrics.counter(n).unwrap_or(0);
        // These scenarios inject no fatal errors, so no request may be
        // dropped or aborted: loss is absorbed by retransmission.
        assert_eq!(r.recorder.dropped(), 0, "{ctx}");
        assert_eq!(c("fetch_aborts"), 0, "{ctx}");
        assert_eq!(
            c("fetch_cqe_errors"),
            c("fetch_failovers") + c("fetch_chain_failures"),
            "{ctx}"
        );
        assert!(r.recorder.completed_in_window() > 500, "{ctx}");
        let h = r.recorder.overall();
        assert!(h.percentile(50.0) <= h.percentile(99.0), "{ctx}");
        assert!(h.percentile(99.0) <= h.percentile(99.9), "{ctx}");
    }
}

/// Fatal faults stay conserved too: with a replica memnode a crash
/// fails over without terminally failing a single fetch; without one,
/// every exhausted retry chain surfaces as an explicit abort and drop —
/// nothing vanishes silently.
#[test]
fn crash_faults_account_for_every_request() {
    let run_crash = |replicas: usize| {
        let mut wl = ArrayIndexWorkload::new(8_192);
        run_one(
            SystemConfig {
                memnode_replicas: replicas,
                ..SystemConfig::adios()
            },
            &mut wl,
            RunParams {
                offered_rps: 150_000.0,
                seed: 21,
                warmup: SimDuration::from_millis(3),
                // The outage spans t = 10..60 ms; keep a chunk of it
                // inside the measurement window.
                measure: SimDuration::from_millis(27),
                local_mem_fraction: 0.2,
                faults: Some(FaultScenario::crash()),
                telemetry: None,
                ..Default::default()
            },
        )
    };

    let with_replica = run_crash(2);
    let c = |r: &RunResult, n: &str| r.metrics.counter(n).unwrap_or(0);
    assert!(
        c(&with_replica, "fetch_failovers") > 0,
        "outage must trigger failovers"
    );
    assert_eq!(
        c(&with_replica, "fetch_aborts"),
        0,
        "with a replica no fetch fails terminally"
    );
    assert_eq!(
        c(&with_replica, "fetch_cqe_errors"),
        c(&with_replica, "fetch_failovers") + c(&with_replica, "fetch_chain_failures"),
    );

    let without_replica = run_crash(1);
    assert!(
        c(&without_replica, "fetch_chain_failures") > 0,
        "without a replica retry chains must exhaust"
    );
    assert!(
        without_replica.recorder.dropped() > 0,
        "failed chains surface as explicit drops"
    );
    assert_eq!(
        c(&without_replica, "fetch_cqe_errors"),
        c(&without_replica, "fetch_failovers") + c(&without_replica, "fetch_chain_failures"),
    );
}

/// Sharded runs keep the same books, just partitioned: per-shard
/// retransmit / error / failover / chain-failure counters sum exactly
/// to the run totals — no event can land on two shards or on none.
#[test]
fn sharded_counters_sum_to_run_totals() {
    use adios::desim::trace::shard_names as sn;
    for (scenario, replicas) in [
        (FaultScenario::lossy(), 1usize),
        (FaultScenario::crash(), 2usize),
    ] {
        let shards = 4usize;
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            SystemConfig {
                memnode_shards: shards,
                memnode_replicas: replicas,
                ..SystemConfig::adios()
            },
            &mut wl,
            RunParams {
                offered_rps: 300_000.0,
                seed: 23,
                warmup: SimDuration::from_millis(2),
                // Keep part of the 10..60 ms crash outage in-window.
                measure: SimDuration::from_millis(12),
                local_mem_fraction: 0.2,
                faults: Some(scenario.clone()),
                telemetry: None,
                ..Default::default()
            },
        );
        let ctx = format!("scenario={}", scenario.name);
        let c = |n: &str| r.metrics.counter(n).unwrap_or(0);
        let shard_sum =
            |table: &[&'static str; sn::MAX_SHARDS]| (0..shards).map(|s| c(table[s])).sum::<u64>();
        assert_eq!(
            shard_sum(&sn::RETRANSMITS),
            c("fetch_retransmits"),
            "{ctx}: retransmits"
        );
        assert_eq!(
            shard_sum(&sn::CQE_ERRORS),
            c("fetch_cqe_errors"),
            "{ctx}: cqe errors"
        );
        assert_eq!(
            shard_sum(&sn::FAILOVERS),
            c("fetch_failovers"),
            "{ctx}: failovers"
        );
        assert_eq!(
            shard_sum(&sn::CHAIN_FAILURES),
            c("fetch_chain_failures"),
            "{ctx}: chain failures"
        );
        assert!(shard_sum(&sn::FETCHES) > 0, "{ctx}: no fetch traffic");
    }
}

/// The error-CQE partition invariant survives sharding shard by shard
/// under the crash scenario: within every shard, errors split exactly
/// into failovers plus chain failures.
#[test]
fn sharded_crash_partitions_errors_per_shard() {
    use adios::desim::trace::shard_names as sn;
    let shards = 4usize;
    let mut wl = ArrayIndexWorkload::new(8_192);
    let r = run_one(
        SystemConfig {
            memnode_shards: shards,
            memnode_replicas: 2,
            ..SystemConfig::adios()
        },
        &mut wl,
        RunParams {
            offered_rps: 200_000.0,
            seed: 29,
            warmup: SimDuration::from_millis(3),
            // The outage spans t = 10..60 ms; keep a chunk of it
            // inside the measurement window.
            measure: SimDuration::from_millis(27),
            local_mem_fraction: 0.2,
            faults: Some(FaultScenario::crash()),
            telemetry: None,
            ..Default::default()
        },
    );
    let c = |n: &str| r.metrics.counter(n).unwrap_or(0);
    for s in 0..shards {
        assert_eq!(
            c(sn::CQE_ERRORS[s]),
            c(sn::FAILOVERS[s]) + c(sn::CHAIN_FAILURES[s]),
            "shard {s}: error CQEs must partition into failovers and chain failures"
        );
    }
    assert!(
        c(sn::FAILOVERS[0]) > 0,
        "the crash downs shard 0's primary, which must fail over"
    );
    // Demand chains never fail (the replica absorbs the outage); only
    // speculative prefetches — which deliberately get no failover
    // chain — may strand a coalesced waiter.
    assert_eq!(c("fetch_chain_failures"), 0, "no demand chain may die");
    assert!(c("fetch_aborts") <= c("prefetch_errors"));
}

/// Workload traces from the applications always replay to completion
/// (no stuck requests) at a light load.
#[test]
fn app_traces_always_complete() {
    for seed in [1u64, 5, 17] {
        let mut wl = MemcachedWorkload::new(30_000, 128);
        let r = run_one(
            SystemConfig::adios(),
            &mut wl,
            RunParams {
                offered_rps: 150_000.0,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(8),
                local_mem_fraction: 0.2,
                keep_breakdowns: false,
                burst: None,
                timeline_bucket: None,
                ..Default::default()
            },
        );
        assert_eq!(r.recorder.dropped(), 0, "seed {seed}");
        assert!(r.recorder.completed_in_window() > 500, "seed {seed}");
    }
}

/// Telemetry time series keep their bucket accounting honest under
/// randomized sample streams: bucket starts are aligned to the bucket
/// width, every sample lands in the bucket `floor(t / width)`, and the
/// per-bucket mean never exceeds the per-bucket maximum.
#[test]
fn time_series_buckets_are_aligned_and_ordered() {
    use adios::desim::TimeSeries;
    let mut gen = Rng::new(0xA11C);
    for case in 0..16 {
        let bucket = SimDuration::from_micros(1 + gen.gen_range(500));
        let mut series = TimeSeries::new(bucket);
        let mut expected = std::collections::BTreeSet::new();
        let n = 1 + gen.gen_range(200) as usize;
        for _ in 0..n {
            let t = SimTime(gen.gen_range(bucket.0 * 64));
            let v = gen.gen_f64() * 1_000.0 - 200.0;
            series.record(t, v);
            expected.insert(t.0 / bucket.0 * bucket.0);
        }
        let ctx = format!("case {case} bucket {bucket}");
        assert_eq!(series.samples(), n as u64, "{ctx}");
        let means = series.means();
        let maxima = series.maxima();
        assert_eq!(means.len(), maxima.len(), "{ctx}");
        assert_eq!(
            means.iter().map(|(t, _)| t.0).collect::<Vec<_>>(),
            expected.iter().copied().collect::<Vec<_>>(),
            "{ctx}: non-empty buckets must be exactly the sampled ones"
        );
        for ((t, mean), (tm, max)) in means.iter().zip(&maxima) {
            assert_eq!(t, tm, "{ctx}");
            assert_eq!(t.0 % bucket.0, 0, "{ctx}: bucket start unaligned");
            assert!(mean <= max, "{ctx}: mean {mean} > max {max} at {t}");
        }
    }
}

/// Merging two series is indistinguishable (means, maxima, sample
/// counts) from recording the union of their samples into one series.
#[test]
fn time_series_merge_conserves_samples() {
    use adios::desim::TimeSeries;
    let mut gen = Rng::new(0x5E21);
    for case in 0..16 {
        let bucket = SimDuration::from_micros(1 + gen.gen_range(100));
        let mut a = TimeSeries::new(bucket);
        let mut b = TimeSeries::new(bucket);
        let mut combined = TimeSeries::new(bucket);
        for _ in 0..gen.gen_range(150) {
            let t = SimTime(gen.gen_range(bucket.0 * 48));
            let v = gen.gen_f64() * 50.0;
            a.record(t, v);
            combined.record(t, v);
        }
        for _ in 0..gen.gen_range(150) {
            let t = SimTime(gen.gen_range(bucket.0 * 48));
            let v = gen.gen_f64() * 50.0;
            b.record(t, v);
            combined.record(t, v);
        }
        let ctx = format!("case {case} bucket {bucket}");
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.samples(), a.samples() + b.samples(), "{ctx}");
        assert_eq!(merged.samples(), combined.samples(), "{ctx}");
        // Maxima are order-independent and must match exactly; means
        // may differ by rounding since merge adds bucket sums in a
        // different order than sequential recording.
        assert_eq!(merged.maxima(), combined.maxima(), "{ctx}: maxima diverge");
        let (m, c) = (merged.means(), combined.means());
        assert_eq!(m.len(), c.len(), "{ctx}");
        for ((tm, vm), (tc, vc)) in m.iter().zip(&c) {
            assert_eq!(tm, tc, "{ctx}");
            assert!(
                (vm - vc).abs() <= 1e-9 * vc.abs().max(1.0),
                "{ctx}: mean {vm} vs {vc} at {tm}"
            );
        }
    }
}

/// SLO breach intervals reported by the telemetry plane are well
/// formed — per rule the events alternate begin/end starting with a
/// begin, every interval is non-empty, intervals never overlap — and
/// they agree with the exported burn-rate series: the quantised burn
/// is >= 1.0 exactly at ticks inside a breach interval.
#[test]
fn slo_breach_intervals_are_well_formed_and_match_burn_series() {
    use adios::desim::{parse_slo_spec, SloEventKind, TelemetryConfig};
    let mut wl = ArrayIndexWorkload::new(16_384);
    let r = run_one(
        SystemConfig::adios(),
        &mut wl,
        RunParams {
            offered_rps: 800_000.0,
            seed: 7,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(12),
            local_mem_fraction: 0.2,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
            faults: Some(FaultScenario::lossy()),
            telemetry: Some(TelemetryConfig {
                tick: SimDuration::from_micros(100),
                rules: parse_slo_spec("lat<20us:0.05@1ms").unwrap(),
            }),
            ..Default::default()
        },
    );
    let report = r.telemetry.expect("telemetry was enabled");
    assert!(report.ticks > 0);
    assert!(
        !report.events.is_empty(),
        "the lossy episode must trip at least one breach"
    );

    for (i, _rule) in report.rules.iter().enumerate() {
        let events: Vec<_> = report.events.iter().filter(|e| e.rule == i).collect();
        let mut intervals: Vec<(SimTime, Option<SimTime>)> = Vec::new();
        for e in &events {
            match e.kind {
                SloEventKind::BreachBegin => {
                    assert!(
                        intervals.last().is_none_or(|(_, end)| end.is_some()),
                        "rule {i}: begin at {} while a breach is already open",
                        e.at
                    );
                    intervals.push((e.at, None));
                }
                SloEventKind::BreachEnd => {
                    let open = intervals
                        .last_mut()
                        .unwrap_or_else(|| panic!("rule {i}: end at {} before any begin", e.at));
                    assert!(
                        open.1.is_none(),
                        "rule {i}: end at {} without a begin",
                        e.at
                    );
                    assert!(open.0 < e.at, "rule {i}: empty breach interval at {}", e.at);
                    open.1 = Some(e.at);
                }
            }
        }
        for pair in intervals.windows(2) {
            let prev_end = pair[0].1.expect("only the last interval may stay open");
            assert!(
                prev_end <= pair[1].0,
                "rule {i}: overlapping breach intervals"
            );
        }

        // Agreement with the exported burn series: in-breach ticks are
        // exactly the ticks where the quantised burn reads >= 1.0.
        for (t, burn) in report.burn_series(i).lasts() {
            let in_breach = intervals
                .iter()
                .any(|(begin, end)| *begin <= t && end.is_none_or(|end| t < end));
            assert_eq!(
                burn >= 1.0,
                in_breach,
                "rule {i}: burn {burn} at {t} disagrees with breach intervals"
            );
        }
    }
}

/// The completions rate series must not dip at the warm-up rebase
/// boundary. `Metrics::reset` zeroes every counter between two ticks;
/// the counts accrued since the last pre-boundary sample are banked
/// into the straddling tick rather than clamped away by the recorder's
/// saturating delta (regression: the first in-window tick of every
/// rate series used to read ~0).
#[test]
fn telemetry_rates_survive_the_warmup_rebase_boundary() {
    use adios::desim::TelemetryConfig;
    let mut wl = ArrayIndexWorkload::new(16_384);
    let r = run_one(
        SystemConfig::adios(),
        &mut wl,
        RunParams {
            offered_rps: 800_000.0,
            seed: 11,
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(6),
            local_mem_fraction: 0.2,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
            telemetry: Some(TelemetryConfig {
                // Four ticks per warm-up ms: the registry reset at 1 ms
                // lands inside the (750 µs, 1 ms] sampling period, so
                // the tick at 1 ms must carry the banked tail.
                tick: SimDuration::from_micros(250),
                rules: Vec::new(),
            }),
            ..Default::default()
        },
    );
    let report = r.telemetry.expect("telemetry was enabled");
    let pts = report
        .counter_series("completions")
        .expect("completions series")
        .means();
    assert!(pts.len() >= 20, "expected a tick every 250 µs");
    let mut sorted: Vec<f64> = pts.iter().map(|(_, v)| *v).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    assert!(median > 0.0, "steady load must complete requests");
    for (at, v) in &pts {
        assert!(
            *v > 0.3 * median,
            "completions rate dip at {at}: {v} vs median {median} — \
             the boundary tail was lost"
        );
    }
}

/// Tentpole invariant of the core profiler: every core's timeline is
/// tiled exhaustively — the typed state durations sum to the
/// measurement window *exactly* (no gaps, no overlaps), for every
/// system, with and without faults, across random loads and seeds.
/// Mirrors the span layer's component-sum identity, one level down.
#[test]
fn core_state_tilings_sum_to_window() {
    use adios::desim::{CoreState, ProfileConfig};
    let mut gen = Rng::new(0xC03E);
    for case in 0..8 {
        let kind = SystemKind::all()[case % 4];
        let rps = 200_000.0 + gen.gen_f64() * 1_800_000.0;
        let seed = gen.gen_range(1_000);
        let faults = (case % 2 == 1).then(FaultScenario::lossy);
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            SystemConfig::for_kind(kind),
            &mut wl,
            RunParams {
                offered_rps: rps,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                faults,
                profile: Some(ProfileConfig::default()),
                ..Default::default()
            },
        );
        let p = r.profile.as_ref().expect("profiler requested");
        let window = p.window.as_nanos();
        let ctx = format!("{} rps={rps:.0} seed={seed}", kind.name());
        assert!(!p.cores.is_empty(), "{ctx}: dispatcher + workers expected");
        for c in &p.cores {
            let sum: u64 = CoreState::ALL.iter().map(|&s| c.ns(s)).sum();
            assert_eq!(
                sum, window,
                "{ctx}: core {} state durations must tile the window exactly",
                c.label
            );
            // The flame sub-windows re-tile the same totals: summing a
            // state across sub-windows reproduces the whole-window value.
            for (si, &s) in CoreState::ALL.iter().enumerate() {
                let tiled: u64 = c.tiles.iter().map(|tile| tile[si]).sum();
                assert_eq!(
                    tiled,
                    c.ns(s),
                    "{ctx}: core {} state {} sub-window split must conserve time",
                    c.label,
                    s.name()
                );
            }
        }
    }
}

/// Little's law (L = λ·W) cross-checks every instrumented queue on the
/// clean and lossy scenarios: whenever a queue saw enough traffic for
/// the law to have statistical teeth (≥ 100 wait samples), the measured
/// time-averaged depth and the arrival-rate × mean-wait prediction must
/// agree within the documented tolerance (consistency ≥ 0.7; see
/// MODEL.md §12).
#[test]
fn queue_littles_law_holds_on_none_and_lossy() {
    use adios::desim::ProfileConfig;
    for scenario in [None, Some(FaultScenario::lossy())] {
        for kind in [SystemKind::Dilos, SystemKind::Adios] {
            let mut wl = ArrayIndexWorkload::new(8_192);
            let r = run_one(
                SystemConfig::for_kind(kind),
                &mut wl,
                RunParams {
                    offered_rps: 900_000.0,
                    seed: 5,
                    warmup: SimDuration::from_millis(2),
                    measure: SimDuration::from_millis(8),
                    local_mem_fraction: 0.2,
                    faults: scenario.clone(),
                    profile: Some(ProfileConfig::default()),
                    ..Default::default()
                },
            );
            let p = r.profile.as_ref().expect("profiler requested");
            let name = scenario.as_ref().map_or("none", |s| s.name);
            let mut checked = 0usize;
            for q in &p.queues {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&q.littles_consistency),
                    "{} / {name}: queue {} consistency {} out of range",
                    kind.name(),
                    q.name,
                    q.littles_consistency
                );
                if q.wait_samples >= 100 {
                    checked += 1;
                    assert!(
                        q.littles_consistency >= 0.7,
                        "{} / {name}: queue {} violates Little's law: \
                         depth {:.4} vs {:.1}/s × {:.1} ns (consistency {:.3})",
                        kind.name(),
                        q.name,
                        q.mean_depth,
                        q.arrival_rate_hz,
                        q.mean_wait_ns,
                        q.littles_consistency
                    );
                }
            }
            assert!(
                checked > 0,
                "{} / {name}: at least one queue must carry enough samples to check",
                kind.name()
            );
        }
    }
}

/// Randomized tenant mixes: per-tenant accounting must partition the
/// run-level view exactly, and request conservation must hold whatever
/// the mix shape, buckets or watermark.
#[test]
fn tenant_accounting_partitions_the_run() {
    let mut gen = Rng::new(0x7E4A);
    for case in 0..8 {
        let n = 2 + (case % 3); // 2..=4 tenants
        let mut specs = Vec::new();
        for t in 0..n {
            let rate = 100_000.0 + gen.gen_f64() * 1_400_000.0;
            let prio = if t == 0 {
                TenantPriority::High
            } else {
                TenantPriority::Low
            };
            let mut s = TenantSpec::new(rate, "array", prio);
            if gen.gen_range(2) == 0 {
                s = s.with_bucket(rate * (0.3 + gen.gen_f64() * 0.5), 64);
            }
            specs.push(s);
        }
        let mut plane = TenantPlane::new(specs);
        if gen.gen_range(2) == 0 {
            plane = plane.with_shed_watermark(32 + gen.gen_range(96) as usize);
        }
        let total = plane.total_rate_rps();
        let seed = 1 + gen.gen_range(1_000);
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            SystemConfig::adios(),
            &mut wl,
            RunParams {
                offered_rps: total,
                seed,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                tenants: Some(plane),
                ..Default::default()
            },
        );
        let ctx = format!("case {case}: {n} tenants, {total:.0} rps, seed {seed}");

        // The conservation identity holds on every mix.
        assert!(r.conservation.holds(), "{ctx}: {:?}", r.conservation);

        // Per-tenant windows partition the recorder's view: windowed
        // completions and exclusions (sheds + overflow drops) both sum
        // to the run-level numbers, and each tenant's histogram holds
        // exactly its own completions.
        assert_eq!(r.tenants.len(), n, "{ctx}");
        let completed: u64 = r.tenants.iter().map(|t| t.completed).sum();
        let excluded: u64 = r.tenants.iter().map(|t| t.sheds + t.drops).sum();
        assert_eq!(completed, r.recorder.completed_in_window(), "{ctx}");
        assert_eq!(excluded, r.recorder.dropped(), "{ctx}");
        for t in &r.tenants {
            assert_eq!(
                t.latency_ns.count(),
                t.completed,
                "{ctx}: tenant {}",
                t.tenant
            );
            assert!(t.admitted <= t.arrivals, "{ctx}: tenant {}", t.tenant);
            assert!(
                t.sheds + t.drops <= t.arrivals,
                "{ctx}: tenant {}",
                t.tenant
            );
        }
        let arrivals: u64 = r.tenants.iter().map(|t| t.arrivals).sum();
        assert!(arrivals > 0, "{ctx}: the window must see traffic");
    }
}

/// A tenant's arrival stream belongs to that tenant alone: reseeding
/// one tenant must not move any other tenant's windowed arrivals.
#[test]
fn tenant_arrival_streams_are_independent_at_run_level() {
    let plane = |bump: u64| {
        TenantPlane::new(vec![
            TenantSpec::new(400_000.0, "array", TenantPriority::High),
            TenantSpec::new(600_000.0, "array", TenantPriority::Low).with_seed_bump(bump),
        ])
    };
    let run = |bump: u64| {
        let mut wl = ArrayIndexWorkload::new(8_192);
        run_one(
            SystemConfig::adios(),
            &mut wl,
            RunParams {
                offered_rps: 1_000_000.0,
                seed: 17,
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(6),
                local_mem_fraction: 0.2,
                tenants: Some(plane(bump)),
                ..Default::default()
            },
        )
    };
    let a = run(0);
    let b = run(0xDEAD_BEEF);
    assert_eq!(
        a.tenants[0].arrivals, b.tenants[0].arrivals,
        "tenant 0's arrival stream must not move when tenant 1 reseeds"
    );
    assert_ne!(
        a.tenants[1].arrivals, b.tenants[1].arrivals,
        "tenant 1's stream must actually change under the bump"
    );
}

// ----- dispatcher scaling ------------------------------------------------

/// Request conservation must hold for every dispatch policy at every
/// dispatcher count: arrivals partition exactly into completions,
/// drops, sheds, aborts and end-of-run in-flight, with no request
/// created or lost by ingress fan-in, stealing or combining.
#[test]
fn request_conservation_holds_for_every_dispatch_policy() {
    let mut gen = Rng::new(0xD15B);
    for policy in [
        DispatchPolicy::SingleFcfs,
        DispatchPolicy::WorkStealing,
        DispatchPolicy::FlatCombining,
    ] {
        for ndisp in [1usize, 2, 4] {
            let seed = gen.gen_range(1_000);
            let frac = 0.3 + gen.gen_f64() * 0.7;
            let cfg = SystemConfig {
                dispatchers: ndisp,
                dispatch_policy: policy,
                workers: 8 * ndisp,
                ..SystemConfig::adios()
            };
            // Offered load scales with the machine so every point sits
            // past its own saturation knee (drops and queueing occur).
            let mut wl = ArrayIndexWorkload::new(8_192);
            let r = run_one(
                cfg,
                &mut wl,
                RunParams {
                    offered_rps: 2_000_000.0 * ndisp as f64,
                    seed,
                    warmup: SimDuration::from_millis(2),
                    measure: SimDuration::from_millis(6),
                    local_mem_fraction: frac,
                    ..Default::default()
                },
            );
            let ctx = format!("{policy:?} x{ndisp} seed={seed} frac={frac:.3}");
            assert!(r.conservation.arrivals > 0, "{ctx}");
            assert!(r.conservation.holds(), "{ctx}: {:?}", r.conservation);
        }
    }
}

/// A steal migrates an admission to the thief's timeline; it must
/// never duplicate it. Every admission is charged to exactly one
/// dispatcher, so the per-dispatcher admitted counters sum to the
/// number of requests that actually entered the run queue: no more
/// than the non-dropped, non-shed arrivals, no fewer than the
/// completions.
#[test]
fn steals_never_dispatch_a_request_twice() {
    use adios::desim::trace::dispatcher_names as dn;
    let cfg = SystemConfig {
        dispatchers: 4,
        dispatch_policy: DispatchPolicy::WorkStealing,
        workers: 32,
        ..SystemConfig::adios()
    };
    // Zero warmup: registry counters only tick inside the measured
    // window, and the conservation identity spans the whole run — a
    // zero-length warmup makes the two views the same population.
    let mut wl = ArrayIndexWorkload::new(8_192);
    let r = run_one(
        cfg,
        &mut wl,
        RunParams {
            offered_rps: 5_000_000.0,
            seed: 42,
            warmup: SimDuration::ZERO,
            measure: SimDuration::from_millis(8),
            local_mem_fraction: 1.0,
            ..Default::default()
        },
    );
    let c = |name| r.metrics.counter(name).unwrap_or(0);
    let steals: u64 = (0..4).map(|d| c(dn::STEALS[d])).sum();
    assert!(steals > 0, "the overload must actually trigger steals");
    let admitted: u64 = (0..4).map(|d| c(dn::ADMITTED[d])).sum();
    let cons = &r.conservation;
    let upper = cons.arrivals - cons.drops - cons.sheds;
    let lower = cons.completions;
    assert!(
        admitted <= upper,
        "admitted {admitted} exceeds admissible arrivals {upper}: \
         some request was dispatched twice ({cons:?})"
    );
    assert!(
        admitted >= lower,
        "admitted {admitted} below completions {lower}: \
         some completion was never admitted ({cons:?})"
    );
    assert!(cons.holds(), "{cons:?}");
}

/// Combining batches amortise the admission charge but must never
/// reorder same-tenant same-priority requests: on a single-class run
/// the admit-commit sequence is exactly the arrival sequence (the
/// batch tail serialises admissions globally). Work stealing is
/// exempt by design — it trades cross-ingress order for throughput.
#[test]
fn combining_never_reorders_same_class_requests() {
    use adios::desim::trace::dispatcher_names as dn;
    for policy in [DispatchPolicy::SingleFcfs, DispatchPolicy::FlatCombining] {
        let cfg = SystemConfig {
            dispatchers: 4,
            dispatch_policy: policy,
            workers: 32,
            ..SystemConfig::adios()
        };
        let mut wl = ArrayIndexWorkload::new(8_192);
        let r = run_one(
            cfg,
            &mut wl,
            RunParams {
                offered_rps: 3_000_000.0,
                seed: 7,
                warmup: SimDuration::from_millis(1),
                measure: SimDuration::from_millis(4),
                local_mem_fraction: 1.0,
                trace_capacity: Some(200_000),
                ..Default::default()
            },
        );
        assert_eq!(
            r.trace_dropped, 0,
            "{policy:?}: replay needs the full trace"
        );
        if policy == DispatchPolicy::FlatCombining {
            let combines: u64 = (0..4)
                .map(|d| r.metrics.counter(dn::COMBINES[d]).unwrap_or(0))
                .sum();
            assert!(combines > 0, "the load must actually form batches");
        }
        // Replay: request ids recycle, so track each id's latest
        // arrival sequence number and demand the admit commits walk it
        // strictly forward.
        let mut seq_of = std::collections::HashMap::new();
        let mut next_seq = 0u64;
        let mut last_admitted = 0u64;
        let mut admits = 0u64;
        for ev in r.trace.as_ref().expect("trace enabled") {
            if ev.component != "dispatch" {
                continue;
            }
            match ev.name {
                "arrival" => {
                    next_seq += 1;
                    seq_of.insert(ev.a, next_seq);
                }
                "disp_admit" => {
                    let seq = seq_of[&ev.a];
                    assert!(
                        seq > last_admitted,
                        "{policy:?}: request with arrival seq {seq} admitted \
                         after seq {last_admitted} — admission order broken"
                    );
                    last_admitted = seq;
                    admits += 1;
                }
                _ => {}
            }
        }
        assert!(
            admits > 1_000,
            "{policy:?}: replay saw only {admits} admits"
        );
    }
}

/// The prefetch-fate conservation identity — `issued = hits + lates +
/// wasted + inflight_at_end`, per detector class and in total — holds
/// for every application workload under both detectors, and the
/// derived series stay within their domains.
#[test]
fn memory_observatory_fates_conserve_across_apps_and_detectors() {
    use adios::apps::silo::tpcc::TpccScale;
    let detectors = [
        PrefetcherKind::Readahead { window: 8 },
        PrefetcherKind::Leap {
            window: 6,
            depth: 8,
        },
    ];
    for (d, &prefetcher) in detectors.iter().enumerate() {
        let mk_wl = |app: usize, seed: u64| -> Box<dyn Workload> {
            match app {
                0 => Box::new(MemcachedWorkload::new(60_000, 128)),
                1 => Box::new(RocksDbWorkload::new(60_000, 1024)),
                2 => Box::new(TpccWorkload::new(TpccScale::tiny(), seed)),
                3 => Box::new(FaissWorkload::new(10_000, 32, 8, seed)),
                _ => Box::new(LlmServeWorkload::new(64, 64)),
            }
        };
        for app in 0..5 {
            let seed = 300 + (d * 5 + app) as u64;
            let mut wl = mk_wl(app, seed);
            let cfg = SystemConfig {
                prefetcher,
                ..SystemConfig::adios()
            };
            let r = run_one(
                cfg,
                &mut *wl,
                RunParams {
                    offered_rps: 120_000.0,
                    seed,
                    warmup: SimDuration::from_millis(1),
                    measure: SimDuration::from_millis(4),
                    memory: Some(MemObsConfig::default()),
                    ..Default::default()
                },
            );
            let m = r.memory.as_ref().expect("observatory enabled");
            let ctx = format!("detector={d} app={app} seed={seed}");
            assert!(m.holds(), "{ctx}: conservation violated: {:?}", m.classes);
            assert!((0.0..=1.0).contains(&m.hit_rate()), "{ctx}");
            assert!(m.heat_skew >= 0.0, "{ctx}");
            let share: f64 = m.shard_shares.iter().sum();
            assert!(
                m.touches == 0 || (share - 1.0).abs() < 1e-6,
                "{ctx}: shard shares must partition the heat ({share})"
            );
            for row in &m.rows {
                assert!((0.0..=1.0).contains(&row.hit_rate), "{ctx}");
                let in_buckets: u64 = row.buckets.iter().sum();
                assert!(in_buckets >= row.ws_pages, "{ctx}: bucket counts cover WS");
            }
        }
    }
}
