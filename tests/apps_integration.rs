//! Application workloads driven through the full simulation stack.

use adios::apps::ordb::{CLASS_GET, CLASS_SCAN};
use adios::apps::silo::tpcc::TpccScale;
use adios::prelude::*;

fn params(rps: f64, measure_ms: u64) -> RunParams {
    RunParams {
        offered_rps: rps,
        seed: 99,
        warmup: SimDuration::from_millis(3),
        measure: SimDuration::from_millis(measure_ms),
        local_mem_fraction: 0.2,
        keep_breakdowns: false,
        burst: None,
        timeline_bucket: None,
        trace_capacity: None,
        spans: None,
        faults: None,
        telemetry: None,
        profile: None,
        memory: None,
        tenants: None,
    }
}

#[test]
fn memcached_serves_and_dirties_pages() {
    let mut wl = MemcachedWorkload::new(150_000, 128);
    let r = run_one(SystemConfig::adios(), &mut wl, params(400_000.0, 15));
    assert!(r.recorder.completed_in_window() > 3_000);
    // GETs bump LRU metadata → evictions of dirty pages → write-backs.
    assert!(r.stats.writebacks > 0, "LRU bumps must cause write-backs");
    assert_eq!(r.recorder.dropped(), 0);
}

#[test]
fn memcached_throughput_capped_by_nic_not_workers() {
    // §5.2: the NIC (engine + write-backs), not worker CPU, caps
    // Memcached; Adios and DiLOS peak close together.
    // At test scale the index is fully hot, so the NIC bound is softer
    // than at the paper-like scale Figure 10 checks; both systems must
    // still saturate well below the absurd offered load, close together.
    let mut wl = MemcachedWorkload::new(150_000, 128);
    let a = run_one(SystemConfig::adios(), &mut wl, params(3_200_000.0, 15));
    let d = run_one(SystemConfig::dilos(), &mut wl, params(3_200_000.0, 15));
    assert!(
        a.recorder.achieved_rps() < 3_000_000.0,
        "Adios must saturate"
    );
    assert!(
        d.recorder.achieved_rps() < 3_000_000.0,
        "DiLOS must saturate"
    );
    let ratio = a.recorder.achieved_rps() / d.recorder.achieved_rps();
    assert!(
        (0.95..=2.3).contains(&ratio),
        "memcached gains bounded by the NIC: {ratio}"
    );
}

#[test]
fn rocksdb_scan_tail_separates_systems() {
    // Past DiLOS' knee (its capacity here is ~0.7 MRPS), SCAN-induced
    // HOL blocking dominates its GET tail.
    let mut wl = RocksDbWorkload::new(120_000, 1024);
    let d = run_one(SystemConfig::dilos(), &mut wl, params(850_000.0, 20));
    let a = run_one(SystemConfig::adios(), &mut wl, params(850_000.0, 20));
    let d_get = d.recorder.class(CLASS_GET).percentile(99.9);
    let a_get = a.recorder.class(CLASS_GET).percentile(99.9);
    assert!(
        d_get > a_get,
        "GETs behind busy-waiting SCANs must show HOL blocking: {d_get} vs {a_get}"
    );
    // SCANs are the heavy class for everyone.
    assert!(
        a.recorder.class(CLASS_SCAN).percentile(50.0)
            > a.recorder.class(CLASS_GET).percentile(50.0) * 5
    );
}

#[test]
fn rocksdb_scans_benefit_from_readahead() {
    let mut wl = RocksDbWorkload::new(120_000, 1024);
    let on = run_one(SystemConfig::adios(), &mut wl, params(200_000.0, 15));
    let cfg_off = SystemConfig {
        prefetcher: runtime::PrefetcherKind::None,
        speculative_readahead: 0.0,
        ..SystemConfig::adios()
    };
    let off = run_one(cfg_off, &mut wl, params(200_000.0, 15));
    assert!(on.stats.prefetches > 0);
    assert!(
        on.recorder.class(CLASS_SCAN).percentile(50.0)
            < off.recorder.class(CLASS_SCAN).percentile(50.0),
        "sequential readahead must shorten SCANs"
    );
}

#[test]
fn tpcc_runs_transactionally_under_simulation() {
    let mut wl = TpccWorkload::new(TpccScale::tiny(), 5);
    let r = run_one(SystemConfig::adios(), &mut wl, params(80_000.0, 25));
    assert!(r.recorder.completed_in_window() > 500);
    let stats = wl.stats();
    assert!(stats.commits.iter().sum::<u64>() > 500);
    // All five classes appear.
    for class in 0..5u16 {
        assert!(
            r.recorder.class(class).count() > 0,
            "class {class} unused in the mix"
        );
    }
    // TPC-C writes must flow back to the memory node.
    assert!(r.stats.writebacks > 0);
}

#[test]
fn tpcc_consistency_survives_simulation() {
    use adios::apps::silo::tpcc::{DISTRICT, WAREHOUSE};
    let mut wl = TpccWorkload::new(TpccScale::tiny(), 6);
    let _ = run_one(SystemConfig::dilos(), &mut wl, params(80_000.0, 25));
    let db = wl.db();
    let scale = db.scale();
    for w in 0..scale.warehouses {
        let w_ytd = db.engine().peek_field(WAREHOUSE, w, 0).unwrap();
        let d_sum: u64 = (0..scale.districts_per_w)
            .map(|d| {
                db.engine()
                    .peek_field(DISTRICT, w * scale.districts_per_w + d, 0)
                    .unwrap()
            })
            .sum();
        assert_eq!(w_ytd, d_sum, "TPC-C consistency condition 1");
    }
}

#[test]
fn faiss_queries_are_millisecond_scale_and_sequential() {
    let mut wl = FaissWorkload::new(20_000, 64, 4, 7);
    let r = run_one(SystemConfig::adios(), &mut wl, params(2_000.0, 120));
    assert!(r.recorder.completed_in_window() > 50);
    let p50 = r.recorder.overall().percentile(50.0);
    assert!(
        (100_000..50_000_000).contains(&p50),
        "vector search should be sub-50ms but far above µs: {p50} ns"
    );
    assert!(
        r.stats.prefetches > 0,
        "IVF list sweeps must trigger readahead"
    );
}

#[test]
fn faiss_busywait_collapses_before_adios() {
    let mut wl = FaissWorkload::new(20_000, 64, 4, 8);
    let load = 12_000.0;
    let d = run_one(SystemConfig::dilos(), &mut wl, params(load, 120));
    let a = run_one(SystemConfig::adios(), &mut wl, params(load, 120));
    assert!(
        a.recorder.achieved_rps() > d.recorder.achieved_rps() * 1.1,
        "adios {} vs dilos {}",
        a.recorder.achieved_rps(),
        d.recorder.achieved_rps()
    );
}
