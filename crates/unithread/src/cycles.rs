//! Cycle-accurate switch measurement (Table 1).
//!
//! The paper measures context-switch cost in cycles with `rdtsc` on the
//! compute node. This module runs the same microbenchmark natively:
//! a tight ping-pong between a main context and one thread context,
//! reporting cycles per one-way switch.

use std::cell::Cell;

use crate::context::{self, Context};
use crate::heavy::{self, HeavyContext};

/// Reads the time-stamp counter.
#[inline]
pub fn rdtsc() -> u64 {
    // SAFETY: `rdtsc` has no preconditions on x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Result of a switch microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCost {
    /// Cycles per one-way context switch (median of batches).
    pub cycles_per_switch: f64,
    /// Context size in bytes.
    pub context_bytes: usize,
}

thread_local! {
    static PING_MAIN: Cell<*mut Context> = const { Cell::new(std::ptr::null_mut()) };
    static PING_SELF: Cell<*mut Context> = const { Cell::new(std::ptr::null_mut()) };
    static HPING_MAIN: Cell<*mut HeavyContext> = const { Cell::new(std::ptr::null_mut()) };
    static HPING_SELF: Cell<*mut HeavyContext> = const { Cell::new(std::ptr::null_mut()) };
}

extern "C" fn ping_entry(_arg: u64) -> ! {
    loop {
        // SAFETY: the measurement function installs both pointers and
        // keeps the contexts alive for the whole run.
        unsafe {
            context::switch(PING_SELF.with(|c| c.get()), PING_MAIN.with(|c| c.get()));
        }
    }
}

extern "C" fn hping_entry(_arg: u64) -> ! {
    loop {
        // SAFETY: as in `ping_entry`.
        unsafe {
            heavy::heavy_switch(HPING_SELF.with(|c| c.get()), HPING_MAIN.with(|c| c.get()));
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Measures the unithread (80 B) switch: cycles per one-way switch.
pub fn measure_unithread_switch(batches: usize, iters_per_batch: usize) -> SwitchCost {
    let mut stack = vec![0u8; 64 * 1024];
    // SAFETY: pointer stays inside the allocation.
    let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
    let mut main_ctx = Context::zeroed();
    let mut th_ctx = Context::prepare(ping_entry, 0, top);
    PING_MAIN.with(|c| c.set(&mut main_ctx));
    PING_SELF.with(|c| c.set(&mut th_ctx));

    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = rdtsc();
        for _ in 0..iters_per_batch {
            // SAFETY: contexts and stack outlive the loop.
            unsafe { context::switch(&mut main_ctx, &th_ctx) };
        }
        let t1 = rdtsc();
        // Each iteration is two one-way switches (there and back).
        samples.push((t1 - t0) as f64 / (2.0 * iters_per_batch as f64));
    }
    SwitchCost {
        cycles_per_switch: median(samples),
        context_bytes: std::mem::size_of::<Context>(),
    }
}

/// Measures the `ucontext_t`-equivalent (968 B) switch.
pub fn measure_heavy_switch(batches: usize, iters_per_batch: usize) -> SwitchCost {
    let mut stack = vec![0u8; 64 * 1024];
    // SAFETY: pointer stays inside the allocation.
    let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
    let mut main_ctx = HeavyContext::zeroed();
    let mut th_ctx = HeavyContext::zeroed();
    th_ctx.init(hping_entry, 0, top);
    HPING_MAIN.with(|c| c.set(&mut main_ctx));
    HPING_SELF.with(|c| c.set(&mut th_ctx));

    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = rdtsc();
        for _ in 0..iters_per_batch {
            // SAFETY: contexts and stack outlive the loop.
            unsafe { heavy::heavy_switch(&mut main_ctx, &th_ctx) };
        }
        let t1 = rdtsc();
        samples.push((t1 - t0) as f64 / (2.0 * iters_per_batch as f64));
    }
    SwitchCost {
        cycles_per_switch: median(samples),
        context_bytes: std::mem::size_of::<HeavyContext>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdtsc_is_monotonic_enough() {
        let a = rdtsc();
        let b = rdtsc();
        assert!(b >= a);
    }

    #[test]
    fn unithread_switch_is_fast() {
        let cost = measure_unithread_switch(16, 2_000);
        assert_eq!(cost.context_bytes, 80);
        // Table 1 reports 40 cycles on the paper's Xeon; leave generous
        // headroom for virtualised/contended CI hosts.
        assert!(
            cost.cycles_per_switch < 400.0,
            "unithread switch = {} cycles",
            cost.cycles_per_switch
        );
    }

    #[test]
    fn heavy_switch_is_slower_than_unithread() {
        let light = measure_unithread_switch(16, 2_000);
        let heavy = measure_heavy_switch(16, 2_000);
        assert_eq!(heavy.context_bytes, 968);
        assert!(
            heavy.cycles_per_switch > light.cycles_per_switch * 1.5,
            "heavy {} vs light {} cycles",
            heavy.cycles_per_switch,
            light.cycles_per_switch
        );
    }
}
