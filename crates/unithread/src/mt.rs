//! A native multi-threaded Adios-style node.
//!
//! This module assembles the unithread [`Runner`] into the paper's
//! compute-node architecture (Figure 3), running on real OS threads:
//!
//! - a **dispatcher thread** receives requests and assigns them to the
//!   worker with the fewest outstanding remote fetches — Algorithm 1's
//!   PF-aware dispatching over live counters;
//! - **worker threads** each own a [`Runner`]: one unithread per
//!   request, created in the pre-allocated unified-buffer pool;
//! - a **remote-memory thread** stands in for the memory node + RNIC:
//!   fetch requests complete after an injected latency, and the worker
//!   polls its completion channel *before starting new unithreads*
//!   (Figure 5, step 8).
//!
//! The key behaviour to observe is yield-based fault handling for
//! real: [`FaultCtx::fetch_remote`] parks the calling unithread and the
//! worker keeps executing other requests; nothing busy-waits.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::runner::{Runner, ThreadId, Yielder};

/// A request handler: parses the payload (via the yielder), performs
/// remote fetches through the fault context, and returns the reply.
pub type Handler = Arc<dyn Fn(&mut Yielder, &FaultCtx) -> Vec<u8> + Send + Sync>;

struct Request {
    payload: Vec<u8>,
    reply: Sender<Vec<u8>>,
}

/// Per-worker handle for issuing remote fetches from inside a
/// unithread.
pub struct FaultCtx {
    worker: usize,
    fetch_tx: Sender<FetchReq>,
    outstanding: Arc<AtomicUsize>,
    max_outstanding: Arc<AtomicUsize>,
}

struct FetchReq {
    worker: usize,
    thread: ThreadId,
    /// Completions left before the thread is resumed (batch fetches
    /// park once for N pages).
    remaining: u32,
}

impl FaultCtx {
    /// Fetches `page` from "remote memory": issues the request, parks
    /// the calling unithread (the yield of Figure 5 step 5) and returns
    /// once the fetch completed and the worker resumed us.
    pub fn fetch_remote(&self, y: &mut Yielder, page: u64) {
        self.fetch_many_remote(y, &[page]);
    }

    /// Fetches a batch of pages with one park: all fetches are issued
    /// back-to-back (they pipeline on the "NIC") and the unithread
    /// resumes when the last one lands — the batched readahead pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is empty.
    pub fn fetch_many_remote(&self, y: &mut Yielder, pages: &[u64]) {
        assert!(!pages.is_empty(), "batch fetch of zero pages");
        let n = pages.len();
        let now = self.outstanding.fetch_add(n, Ordering::SeqCst) + n;
        self.max_outstanding.fetch_max(now, Ordering::SeqCst);
        for (i, _page) in pages.iter().enumerate() {
            // The demo store is host-side; latency is what matters.
            self.fetch_tx
                .send(FetchReq {
                    worker: self.worker,
                    thread: y.id(),
                    remaining: (n - i) as u32,
                })
                .expect("remote memory thread alive");
        }
        y.park();
    }
}

/// Configuration of a native node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Worker threads (the paper uses 8).
    pub workers: usize,
    /// Unithread buffers per worker.
    pub pool_per_worker: usize,
    /// Unified buffer size (≥ 16 KiB recommended for Rust frames).
    pub buffer_bytes: usize,
    /// Payload area within each buffer.
    pub payload_bytes: usize,
    /// Emulated remote-fetch latency.
    pub fetch_latency: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            workers: 2,
            pool_per_worker: 256,
            buffer_bytes: 32 * 1024,
            payload_bytes: 1500,
            fetch_latency: Duration::from_micros(50),
        }
    }
}

/// Statistics of a node run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Requests completed.
    pub completed: u64,
    /// Remote fetches served.
    pub fetches: u64,
    /// Highest number of concurrently outstanding fetches observed on
    /// one worker — > 1 proves the yield overlapped fetches.
    pub max_outstanding: usize,
}

/// A running native node; dropping it shuts everything down.
pub struct MdNode {
    dispatch_tx: Option<Sender<Request>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    completed: Arc<AtomicUsize>,
    fetches: Arc<AtomicUsize>,
    max_outstanding: Arc<AtomicUsize>,
}

impl MdNode {
    /// Starts the node with the given handler.
    pub fn start(config: NodeConfig, handler: Handler) -> MdNode {
        let (dispatch_tx, dispatch_rx) = channel::<Request>();
        let (fetch_tx, fetch_rx) = channel::<FetchReq>();
        let completed = Arc::new(AtomicUsize::new(0));
        let fetches = Arc::new(AtomicUsize::new(0));
        let max_outstanding = Arc::new(AtomicUsize::new(0));

        // Per-worker request + completion channels and PF counters.
        let mut worker_req_txs = Vec::new();
        let mut completion_txs = Vec::new();
        let mut outstanding: Vec<Arc<AtomicUsize>> = Vec::new();
        let mut threads = Vec::new();

        for w in 0..config.workers {
            let (req_tx, req_rx) = channel::<Request>();
            let (comp_tx, comp_rx) = channel::<(ThreadId, bool)>();
            worker_req_txs.push(req_tx);
            completion_txs.push(comp_tx);
            let out = Arc::new(AtomicUsize::new(0));
            outstanding.push(out.clone());
            let cfg = config.clone();
            let handler = handler.clone();
            let fetch_tx = fetch_tx.clone();
            let completed = completed.clone();
            let max_out = max_outstanding.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adios-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            w, cfg, handler, req_rx, comp_rx, fetch_tx, out, completed, max_out,
                        )
                    })
                    .expect("spawn worker"),
            );
        }
        drop(fetch_tx);

        // Remote-memory ("NIC + memory node") thread: completes fetches
        // after the injected latency, in deadline order.
        {
            let latency = config.fetch_latency;
            let fetches = fetches.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("adios-memnode".into())
                    .spawn(move || remote_memory_loop(fetch_rx, completion_txs, latency, fetches))
                    .expect("spawn memnode"),
            );
        }

        // Dispatcher thread: PF-aware assignment (Algorithm 1 over live
        // outstanding-fetch counters).
        {
            threads.push(
                std::thread::Builder::new()
                    .name("adios-dispatcher".into())
                    .spawn(move || {
                        while let Ok(req) = dispatch_rx.recv() {
                            let best = (0..worker_req_txs.len())
                                .min_by_key(|&w| outstanding[w].load(Ordering::Relaxed))
                                .expect("at least one worker");
                            if worker_req_txs[best].send(req).is_err() {
                                break;
                            }
                        }
                        // Closing: drop worker senders to stop workers.
                    })
                    .expect("spawn dispatcher"),
            );
        }

        MdNode {
            dispatch_tx: Some(dispatch_tx),
            threads,
            completed,
            fetches,
            max_outstanding,
        }
    }

    /// Executes one request, blocking until its reply (a test/demo
    /// convenience; real clients would pipeline via [`MdNode::submit`]).
    pub fn call(&self, payload: &[u8]) -> Vec<u8> {
        let rx = self.submit(payload);
        rx.recv().expect("node alive")
    }

    /// Submits a request; the reply arrives on the returned channel.
    pub fn submit(&self, payload: &[u8]) -> Receiver<Vec<u8>> {
        let (reply_tx, reply_rx) = channel();
        self.dispatch_tx
            .as_ref()
            .expect("node running")
            .send(Request {
                payload: payload.to_vec(),
                reply: reply_tx,
            })
            .expect("dispatcher alive");
        reply_rx
    }

    /// Snapshot of the node's counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            completed: self.completed.load(Ordering::SeqCst) as u64,
            fetches: self.fetches.load(Ordering::SeqCst) as u64,
            max_outstanding: self.max_outstanding.load(Ordering::SeqCst),
        }
    }

    /// Stops the node and joins all threads.
    pub fn shutdown(mut self) -> NodeStats {
        let stats = self.stats();
        self.dispatch_tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        stats
    }
}

impl Drop for MdNode {
    fn drop(&mut self) {
        self.dispatch_tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    cfg: NodeConfig,
    handler: Handler,
    req_rx: Receiver<Request>,
    comp_rx: Receiver<(ThreadId, bool)>,
    fetch_tx: Sender<FetchReq>,
    outstanding: Arc<AtomicUsize>,
    completed: Arc<AtomicUsize>,
    max_outstanding: Arc<AtomicUsize>,
) {
    let mut runner = Runner::new(cfg.pool_per_worker, cfg.buffer_bytes, cfg.payload_bytes);
    let mut requests_open = true;
    loop {
        // Figure 5 step 8: poll fetch completions before new unithreads.
        let mut progressed = false;
        while let Ok((tid, resume)) = comp_rx.try_recv() {
            outstanding.fetch_sub(1, Ordering::SeqCst);
            if resume {
                runner.unpark(tid);
            }
            progressed = true;
        }
        // Run everything that is ready.
        while runner.run_one() {
            progressed = true;
        }
        // Accept new requests while buffers are free.
        while requests_open && runner.live_count() < cfg.pool_per_worker {
            match req_rx.try_recv() {
                Ok(req) => {
                    let handler = handler.clone();
                    let ctx = FaultCtx {
                        worker: w,
                        fetch_tx: fetch_tx.clone(),
                        outstanding: outstanding.clone(),
                        max_outstanding: max_outstanding.clone(),
                    };
                    let completed = completed.clone();
                    runner
                        .spawn(&req.payload, move |y| {
                            let reply = handler(y, &ctx);
                            completed.fetch_add(1, Ordering::SeqCst);
                            let _ = req.reply.send(reply);
                        })
                        .expect("live_count < pool checked");
                    progressed = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    requests_open = false;
                    break;
                }
            }
        }
        if !requests_open && runner.live_count() == 0 {
            return;
        }
        if !progressed {
            // Idle: nothing ready and no new work; nap briefly (a real
            // Adios worker would poll; we are polite to CI machines).
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

fn remote_memory_loop(
    fetch_rx: Receiver<FetchReq>,
    completion_txs: Vec<Sender<(ThreadId, bool)>>,
    latency: Duration,
    fetches: Arc<AtomicUsize>,
) {
    // Min-heap of (deadline, worker, thread, resume) via Reverse.
    let mut pending: BinaryHeap<std::cmp::Reverse<(Instant, usize, u32, bool)>> = BinaryHeap::new();
    let mut open = true;
    while open || !pending.is_empty() {
        // Deliver due completions.
        let now = Instant::now();
        while let Some(&std::cmp::Reverse((deadline, w, tid, resume))) = pending.peek() {
            if deadline > now {
                break;
            }
            pending.pop();
            fetches.fetch_add(1, Ordering::SeqCst);
            let _ = completion_txs[w].send((ThreadId(tid), resume));
        }
        // Accept new fetch requests without blocking past the next
        // deadline.
        let wait = pending
            .peek()
            .map(|&std::cmp::Reverse((d, _, _, _))| d.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(2));
        match fetch_rx.recv_timeout(wait.min(Duration::from_millis(2))) {
            Ok(req) => {
                // The batch's pages pipeline: each adds a serialization
                // slot on top of the base latency; only the last resumes
                // the thread.
                pending.push(std::cmp::Reverse((
                    Instant::now() + latency,
                    req.worker,
                    req.thread.0,
                    req.remaining == 1,
                )));
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => open = false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that "faults" on a shared array read and echoes back
    /// the indexed value.
    fn array_handler(values: Arc<Vec<u64>>) -> Handler {
        Arc::new(move |y: &mut Yielder, ctx: &FaultCtx| {
            let idx = u64::from_le_bytes(y.payload()[..8].try_into().unwrap());
            // The page is "remote": fetch before reading.
            ctx.fetch_remote(y, idx / 512);
            values[idx as usize].to_le_bytes().to_vec()
        })
    }

    #[test]
    fn serves_correct_values() {
        let values: Arc<Vec<u64>> = Arc::new((0..4096).map(|i| i * 31 + 7).collect());
        let node = MdNode::start(
            NodeConfig {
                workers: 2,
                fetch_latency: Duration::from_micros(200),
                ..Default::default()
            },
            array_handler(values.clone()),
        );
        for idx in [0u64, 17, 999, 4095] {
            let reply = node.call(&idx.to_le_bytes());
            assert_eq!(
                u64::from_le_bytes(reply[..8].try_into().unwrap()),
                values[idx as usize]
            );
        }
        let stats = node.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.fetches, 4);
    }

    #[test]
    fn yielding_overlaps_fetches() {
        // Pipeline many requests with a long fetch latency: if workers
        // busy-waited, outstanding fetches per worker would never
        // exceed 1.
        let values: Arc<Vec<u64>> = Arc::new((0..4096).map(|i| i ^ 0xABCD).collect());
        let node = MdNode::start(
            NodeConfig {
                workers: 2,
                fetch_latency: Duration::from_millis(2),
                ..Default::default()
            },
            array_handler(values.clone()),
        );
        let receivers: Vec<_> = (0..64u64)
            .map(|i| node.submit(&(i * 13 % 4096).to_le_bytes()))
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let idx = (i as u64 * 13) % 4096;
            let reply = rx.recv().expect("reply");
            assert_eq!(
                u64::from_le_bytes(reply[..8].try_into().unwrap()),
                values[idx as usize],
                "request {i}"
            );
        }
        let stats = node.shutdown();
        assert_eq!(stats.completed, 64);
        assert!(
            stats.max_outstanding > 1,
            "yield-based handling must overlap fetches: max_outstanding = {}",
            stats.max_outstanding
        );
    }

    #[test]
    fn throughput_scales_with_overlap() {
        // With 4 ms fetches and 200 pipelined requests on 2 workers,
        // busy-waiting would need ≥ 400 ms; yielding should finish in a
        // fraction of that.
        let values: Arc<Vec<u64>> = Arc::new((0..4096).map(|i| i + 1).collect());
        let node = MdNode::start(
            NodeConfig {
                workers: 2,
                fetch_latency: Duration::from_millis(4),
                ..Default::default()
            },
            array_handler(values),
        );
        let start = Instant::now();
        let receivers: Vec<_> = (0..200u64)
            .map(|i| node.submit(&(i % 4096).to_le_bytes()))
            .collect();
        for rx in receivers {
            rx.recv().expect("reply");
        }
        let elapsed = start.elapsed();
        node.shutdown();
        assert!(
            elapsed < Duration::from_millis(300),
            "200 × 4 ms fetches finished in {elapsed:?}; busy-waiting would take ≥ 400 ms"
        );
    }

    #[test]
    fn batch_fetch_parks_once() {
        let handler: Handler = Arc::new(|y: &mut Yielder, ctx: &FaultCtx| {
            let base = u64::from_le_bytes(y.payload()[..8].try_into().unwrap());
            // Readahead-style batch: 8 pages, one park.
            let pages: Vec<u64> = (base..base + 8).collect();
            ctx.fetch_many_remote(y, &pages);
            (base * 2).to_le_bytes().to_vec()
        });
        let node = MdNode::start(
            NodeConfig {
                workers: 1,
                fetch_latency: Duration::from_micros(500),
                ..Default::default()
            },
            handler,
        );
        let reply = node.call(&7u64.to_le_bytes());
        assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 14);
        let stats = node.shutdown();
        assert_eq!(stats.fetches, 8, "all batch pages fetched");
        assert_eq!(stats.completed, 1);
        assert!(stats.max_outstanding >= 8, "batch issued before parking");
    }

    #[test]
    #[should_panic(expected = "node alive")]
    fn empty_batch_kills_the_request() {
        // The "zero pages" assertion fires on the worker thread (the
        // runner re-raises it there), so the caller observes the reply
        // channel closing.
        let handler: Handler = Arc::new(|y: &mut Yielder, ctx: &FaultCtx| {
            ctx.fetch_many_remote(y, &[]);
            vec![]
        });
        let node = MdNode::start(NodeConfig::default(), handler);
        let _ = node.call(b"x");
    }

    #[test]
    fn handler_state_survives_the_yield() {
        // Locals held across fetch_remote (the unithread's stack) must
        // be intact after resume.
        let handler: Handler = Arc::new(|y: &mut Yielder, ctx: &FaultCtx| {
            let before: u64 = u64::from_le_bytes(y.payload()[..8].try_into().unwrap());
            let marker = before.wrapping_mul(0x9E37_79B9);
            ctx.fetch_remote(y, before);
            ctx.fetch_remote(y, before + 1); // two yields
            (marker ^ before).to_le_bytes().to_vec()
        });
        let node = MdNode::start(
            NodeConfig {
                workers: 2,
                fetch_latency: Duration::from_micros(300),
                ..Default::default()
            },
            handler,
        );
        for i in [3u64, 77, 1024] {
            let reply = node.call(&i.to_le_bytes());
            let got = u64::from_le_bytes(reply[..8].try_into().unwrap());
            assert_eq!(got, i.wrapping_mul(0x9E37_79B9) ^ i);
        }
        let stats = node.shutdown();
        assert_eq!(stats.fetches, 6);
    }
}
