//! The unified unithread buffer pool.
//!
//! §3.2 / Figure 4 of the paper: each unithread lives in one
//! pre-allocated buffer laid out as
//!
//! ```text
//! | packet payload (MTU) | context | universal stack →ꜜ  |
//! 0                      MTU                    buffer size
//! ```
//!
//! The packet payload, the thread context and the merged kernel+user
//! ("universal") stack share a single allocation, so a request consumes
//! one buffer instead of the three a Shinjuku-style design needs
//! (payload, user stack, exception stack — 12 KB vs 4 KB, a 66 % saving
//! the paper turns into 1 GB of extra page cache).
//!
//! Buffers are pre-allocated at pool construction (131 072 in the
//! paper) and recycled; the request path never allocates.

use crate::context::Context;

/// The paper's pre-allocated pool size (§3.2).
pub const PAPER_POOL_SIZE: usize = 131_072;

/// The paper's per-unithread buffer size (4 KB minimum per request).
pub const PAPER_BUFFER_SIZE: usize = 4096;

/// Stack-bottom canary used to detect overflows (no guard pages: the
/// pool is a single slab, like the paper's pre-allocated buffers).
pub(crate) const STACK_CANARY: u64 = 0xDEAD_C0DE_5AFE_57AC;

/// A pool of unified unithread buffers.
pub struct BufferPool {
    slab: Box<[u8]>,
    buf_size: usize,
    payload_capacity: usize,
    free: Vec<u32>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers of `buf_size` bytes, with
    /// the first `payload_capacity` bytes of each reserved for the
    /// packet payload.
    ///
    /// # Panics
    ///
    /// Panics if the layout leaves less than 256 bytes of stack.
    pub fn new(capacity: usize, buf_size: usize, payload_capacity: usize) -> BufferPool {
        let ctx_off = payload_capacity.div_ceil(16) * 16;
        let stack_bottom = ctx_off + std::mem::size_of::<Context>() + 8; // + canary
        assert!(
            buf_size >= stack_bottom + 256,
            "buffer too small: {buf_size} B leaves no stack after {stack_bottom} B of header"
        );
        BufferPool {
            slab: vec![0u8; capacity * buf_size].into_boxed_slice(),
            buf_size,
            payload_capacity,
            free: (0..capacity as u32).rev().collect(),
            capacity,
        }
    }

    /// Total buffers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Per-buffer size in bytes.
    pub fn buffer_size(&self) -> usize {
        self.buf_size
    }

    /// Takes a buffer; plants the stack canary. Returns `None` when the
    /// pool is exhausted (the paper sizes the pool for the worst burst).
    pub fn acquire(&mut self) -> Option<u32> {
        let idx = self.free.pop()?;
        // SAFETY: idx is in range; canary slot is inside the buffer.
        unsafe { *self.canary_ptr(idx) = STACK_CANARY };
        Some(idx)
    }

    /// Returns a buffer to the pool.
    ///
    /// # Panics
    ///
    /// Panics on a double release (in debug builds, via the free-list
    /// scan) or out-of-range index.
    pub fn release(&mut self, idx: u32) {
        assert!((idx as usize) < self.capacity, "buffer index out of range");
        debug_assert!(!self.free.contains(&idx), "double release of buffer {idx}");
        self.free.push(idx);
    }

    fn base(&self, idx: u32) -> *const u8 {
        // SAFETY: idx < capacity is an invariant of acquire/release.
        unsafe { self.slab.as_ptr().add(idx as usize * self.buf_size) }
    }

    fn ctx_offset(&self) -> usize {
        self.payload_capacity.div_ceil(16) * 16
    }

    /// Pointer to the buffer's context block.
    pub fn context_ptr(&self, idx: u32) -> *mut Context {
        (self.base(idx) as usize + self.ctx_offset()) as *mut Context
    }

    fn canary_ptr(&self, idx: u32) -> *mut u64 {
        (self.base(idx) as usize + self.ctx_offset() + std::mem::size_of::<Context>()) as *mut u64
    }

    /// Exclusive top of the buffer's universal stack (16-aligned).
    pub fn stack_top(&self, idx: u32) -> *mut u8 {
        let end = self.base(idx) as usize + self.buf_size;
        (end & !0xF) as *mut u8
    }

    /// Usable stack bytes per buffer.
    pub fn stack_bytes(&self) -> usize {
        (self.buf_size & !0xF) - self.ctx_offset() - std::mem::size_of::<Context>() - 8
    }

    /// The buffer's packet-payload area.
    pub fn payload(&self, idx: u32) -> &[u8] {
        // SAFETY: payload area is in range and u8 has no validity
        // requirements.
        unsafe { std::slice::from_raw_parts(self.base(idx), self.payload_capacity) }
    }

    /// Mutable packet-payload area.
    ///
    /// # Safety
    ///
    /// The caller must ensure the buffer is currently acquired and no
    /// other alias to its payload exists (a running unithread's
    /// [`Yielder`](crate::Yielder) is the unique accessor).
    pub unsafe fn payload_mut(&mut self, idx: u32) -> &mut [u8] {
        // SAFETY: forwarded to the caller.
        unsafe { std::slice::from_raw_parts_mut(self.base(idx) as *mut u8, self.payload_capacity) }
    }

    /// Whether the stack canary of `idx` is intact.
    pub fn canary_intact(&self, idx: u32) -> bool {
        // SAFETY: canary slot is inside the buffer.
        unsafe { *self.canary_ptr(idx) == STACK_CANARY }
    }

    #[cfg(test)]
    pub(crate) fn corrupt_canary_for_test(&mut self, idx: u32) {
        // SAFETY: test-only; slot is in range.
        unsafe { *self.canary_ptr(idx) = 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = BufferPool::new(4, 16 * 1024, 1500);
        assert_eq!(p.capacity(), 4);
        let a = p.acquire().unwrap();
        let b = p.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.free_count(), 2);
        p.release(a);
        assert_eq!(p.free_count(), 3);
        assert!(p.canary_intact(b));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = BufferPool::new(2, 8 * 1024, 128);
        assert!(p.acquire().is_some());
        assert!(p.acquire().is_some());
        assert!(p.acquire().is_none());
    }

    #[test]
    fn layout_is_ordered_and_aligned() {
        let p = BufferPool::new(2, PAPER_BUFFER_SIZE, 1500);
        let ctx = p.context_ptr(1) as usize;
        let top = p.stack_top(1) as usize;
        assert_eq!(ctx % 16, 0, "context must be 16-aligned");
        assert_eq!(top % 16, 0, "stack top must be 16-aligned");
        assert!(ctx > p.payload(1).as_ptr() as usize);
        assert!(top > ctx + std::mem::size_of::<Context>());
        assert!(p.stack_bytes() >= 256);
    }

    #[test]
    fn paper_buffer_fits_payload_ctx_and_stack() {
        // The paper's 4 KB buffer with a 1500 B MTU leaves > 2.4 KB of
        // universal stack.
        let p = BufferPool::new(1, PAPER_BUFFER_SIZE, 1500);
        assert!(p.stack_bytes() > 2400, "stack = {}", p.stack_bytes());
    }

    #[test]
    fn payload_round_trip() {
        let mut p = BufferPool::new(1, 8 * 1024, 64);
        let idx = p.acquire().unwrap();
        // SAFETY: buffer acquired, single alias.
        let pl = unsafe { p.payload_mut(idx) };
        pl[0] = 0xAB;
        pl[63] = 0xCD;
        assert_eq!(p.payload(idx)[0], 0xAB);
        assert_eq!(p.payload(idx)[63], 0xCD);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn rejects_stackless_layout() {
        BufferPool::new(1, 1600, 1500);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn release_out_of_range_panics() {
        BufferPool::new(1, 8 * 1024, 64).release(5);
    }

    #[test]
    fn memory_saving_vs_three_buffer_design() {
        // §3.2: 4 KB unified vs 12 KB (payload + user stack + exception
        // stack) — a 66 % saving; over the paper's 131 072 buffers that
        // is 1 GB.
        let unified = PAPER_POOL_SIZE * PAPER_BUFFER_SIZE;
        let shinjuku = PAPER_POOL_SIZE * (3 * PAPER_BUFFER_SIZE);
        assert_eq!(shinjuku - unified, 1 << 30);
    }
}
