//! The 80-byte unithread context and its switch.
//!
//! The paper (§3.2, Table 1): "a unithread context only includes one
//! argument register and five callee-saved registers (`rbp`, `rip`,
//! `rsp`, `mxcsr`, and `fpucw`). The rest of the registers, including
//! floating point registers, are stored in the caller's stack frame if
//! necessary; hence, there is no need to save and restore them."
//!
//! Because the switch is an `extern "C"` call, the compiler spills any
//! live caller-saved register around it; the switch itself only has to
//! preserve what the SysV ABI makes *callee*-saved: `rbx`, `rbp`,
//! `r12`–`r15`, the stack pointer, the resume address, and the two
//! floating-point control words. With the argument register that is
//! exactly ten 8-byte slots — 80 bytes, matching Table 1.

use std::arch::global_asm;

/// Saved execution state of a unithread (80 bytes, see Table 1).
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Stack pointer at suspension.
    pub rsp: u64,
    /// Frame pointer.
    pub rbp: u64,
    /// Callee-saved `rbx`.
    pub rbx: u64,
    /// Callee-saved `r12`.
    pub r12: u64,
    /// Callee-saved `r13`.
    pub r13: u64,
    /// Callee-saved `r14`.
    pub r14: u64,
    /// Callee-saved `r15`.
    pub r15: u64,
    /// Resume instruction pointer.
    pub rip: u64,
    /// SSE control/status (`mxcsr`, low 4 bytes) and x87 control word
    /// (`fpucw`, bytes 4–5).
    pub fp_control: u64,
    /// First-argument register (`rdi`), used to pass the entry argument
    /// to a fresh thread.
    pub arg: u64,
}

const _: () = assert!(std::mem::size_of::<Context>() == 80, "Table 1: 80 B");

impl Context {
    /// An all-zero context; must be initialised with [`Context::prepare`]
    /// or by being the *save* side of a switch before being resumed.
    pub const fn zeroed() -> Context {
        Context {
            rsp: 0,
            rbp: 0,
            rbx: 0,
            r12: 0,
            r13: 0,
            r14: 0,
            r15: 0,
            rip: 0,
            fp_control: 0,
            arg: 0,
        }
    }

    /// Prepares a fresh context that will begin executing `entry(arg)`
    /// on the stack whose *exclusive* top is `stack_top`.
    ///
    /// The entry function must never return (it must switch away
    /// permanently instead); this is enforced by its `-> !` type.
    ///
    /// # Safety contract (checked at switch time, not here)
    ///
    /// `stack_top` must point past a writable region large enough for
    /// `entry`'s frames; see [`switch`].
    pub fn prepare(entry: extern "C" fn(u64) -> !, arg: u64, stack_top: *mut u8) -> Context {
        // SysV: at function entry (after `call`), rsp % 16 == 8. We enter
        // via `jmp`, so bias the initial stack the same way.
        let top = (stack_top as u64) & !0xF;
        let mut ctx = Context::zeroed();
        ctx.rsp = top - 8;
        ctx.rip = entry as usize as u64;
        ctx.arg = arg;
        // Default x87 control word (0x037F) and mxcsr (0x1F80).
        ctx.fp_control = 0x1F80 | (0x037F << 32);
        ctx
    }
}

global_asm!(
    r#"
    .global unithread_switch_asm
    .p2align 4
// unithread_switch_asm(save: *mut Context [rdi], resume: *const Context [rsi])
//
// Saves the callee-saved state of the caller into *save, then restores
// *resume and jumps to its rip with its arg in rdi.
unithread_switch_asm:
    // Save side.
    mov     [rdi + 0x08], rbp
    mov     [rdi + 0x10], rbx
    mov     [rdi + 0x18], r12
    mov     [rdi + 0x20], r13
    mov     [rdi + 0x28], r14
    mov     [rdi + 0x30], r15
    mov     rax, [rsp]              // return address = resume rip
    mov     [rdi + 0x38], rax
    lea     rax, [rsp + 8]          // rsp as if we had returned
    mov     [rdi + 0x00], rax
    stmxcsr [rdi + 0x40]
    fnstcw  [rdi + 0x44]

    // Restore side.
    ldmxcsr [rsi + 0x40]
    fldcw   [rsi + 0x44]
    mov     rbp, [rsi + 0x08]
    mov     rbx, [rsi + 0x10]
    mov     r12, [rsi + 0x18]
    mov     r13, [rsi + 0x20]
    mov     r14, [rsi + 0x28]
    mov     r15, [rsi + 0x30]
    mov     rsp, [rsi + 0x00]
    mov     rdi, [rsi + 0x48]       // argument register
    mov     rax, [rsi + 0x38]
    jmp     rax
"#
);

extern "C" {
    fn unithread_switch_asm(save: *mut Context, resume: *const Context);
}

/// Switches from the current execution to the one stored in `resume`,
/// saving the current one into `save`.
///
/// Control returns from this call when something later switches back to
/// `save`.
///
/// # Safety
///
/// - `save` must be valid for writes and `resume` valid for reads, and
///   they must not alias.
/// - `resume` must hold either a context captured by a previous switch
///   or one built by [`Context::prepare`] over a live, sufficiently
///   large stack.
/// - The memory behind `resume`'s stack must stay allocated until that
///   execution completes or is switched away from.
#[inline]
pub unsafe fn switch(save: *mut Context, resume: *const Context) {
    // SAFETY: contract forwarded to the caller; the asm only touches the
    // two context blocks and ABI-visible registers.
    unsafe { unithread_switch_asm(save, resume) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn context_is_80_bytes() {
        assert_eq!(std::mem::size_of::<Context>(), 80);
    }

    thread_local! {
        static MAIN_CTX: Cell<*mut Context> = const { Cell::new(std::ptr::null_mut()) };
        static THREAD_CTX: Cell<*mut Context> = const { Cell::new(std::ptr::null_mut()) };
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }

    extern "C" fn bouncer(arg: u64) -> ! {
        // Keep callee-saved state live across switches.
        let mut acc = arg;
        loop {
            acc = acc.wrapping_mul(3).wrapping_add(1);
            COUNTER.with(|c| c.set(acc));
            // SAFETY: both contexts are installed by the test below and
            // outlive the ping-pong.
            unsafe {
                switch(THREAD_CTX.with(|c| c.get()), MAIN_CTX.with(|c| c.get()));
            }
        }
    }

    #[test]
    fn ping_pong_preserves_state() {
        let mut stack = vec![0u8; 64 * 1024];
        let stack_top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut main_ctx = Context::zeroed();
        let mut thread_ctx = Context::prepare(bouncer, 7, stack_top);
        MAIN_CTX.with(|c| c.set(&mut main_ctx));
        THREAD_CTX.with(|c| c.set(&mut thread_ctx));

        let mut expect = 7u64;
        for _ in 0..100 {
            // SAFETY: contexts and stack live for the whole test.
            unsafe { switch(&mut main_ctx, &thread_ctx) };
            expect = expect.wrapping_mul(3).wrapping_add(1);
            assert_eq!(COUNTER.with(|c| c.get()), expect);
        }
    }

    extern "C" fn float_worker(_arg: u64) -> ! {
        let mut x = 1.0f64;
        loop {
            x = (x * 1.5 + 0.25).sqrt();
            COUNTER.with(|c| c.set(x.to_bits()));
            // SAFETY: as in `bouncer`.
            unsafe {
                switch(THREAD_CTX.with(|c| c.get()), MAIN_CTX.with(|c| c.get()));
            }
        }
    }

    #[test]
    fn float_state_correct_across_switches() {
        let mut stack = vec![0u8; 64 * 1024];
        let stack_top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut main_ctx = Context::zeroed();
        let mut thread_ctx = Context::prepare(float_worker, 0, stack_top);
        MAIN_CTX.with(|c| c.set(&mut main_ctx));
        THREAD_CTX.with(|c| c.set(&mut thread_ctx));

        let mut expect = 1.0f64;
        for _ in 0..50 {
            // Do float work on the main side too, so both sides carry
            // live FP state across the boundary.
            let noise = (expect + 3.0).ln();
            unsafe { switch(&mut main_ctx, &thread_ctx) };
            expect = (expect * 1.5 + 0.25).sqrt();
            assert_eq!(COUNTER.with(|c| c.get()), expect.to_bits());
            assert!(noise.is_finite());
        }
    }
}
