//! Unithreads: the paper's lightweight user-level thread, for real.
//!
//! Unlike the rest of the reproduction — which simulates the RDMA
//! testbed — this crate implements the unithread abstraction natively on
//! x86-64, exactly as §3.2 of the paper describes it:
//!
//! - an **80-byte context** holding one argument register and the
//!   callee-saved state (`rsp`, `rbp`, `rbx`, `r12`–`r15`, `rip`,
//!   `mxcsr`, `fpucw`); everything else is caller-saved under the SysV
//!   ABI and is spilled by the compiler around the switch call, so the
//!   switch itself never touches it;
//! - a **unified buffer** per thread: `[packet payload | context |
//!   universal stack]`, one allocation that serves as network buffer,
//!   kernel stack and user stack at once;
//! - a **pre-allocated pool** (131 072 buffers in the paper) so request
//!   handling never allocates;
//! - a [`HeavyContext`] baseline equivalent to glibc's `ucontext_t`
//!   (968 bytes, full GPR + FPU state + signal-mask syscall), used to
//!   reproduce Table 1.
//!
//! The [`cycles`] module measures both switches with `rdtsc`, which is
//! how Table 1 of `EXPERIMENTS.md` is produced.
//!
//! # Platform support
//!
//! The context switch is x86-64 assembly; the crate compiles only on
//! `x86_64` targets (the paper's testbed is x86-64 as well).

#![cfg(target_arch = "x86_64")]

pub mod buffer;
pub mod context;
pub mod cycles;
pub mod heavy;
pub mod mt;
pub mod runner;

pub use buffer::{BufferPool, PAPER_BUFFER_SIZE, PAPER_POOL_SIZE};
pub use context::Context;
pub use heavy::HeavyContext;
pub use mt::{FaultCtx, MdNode, NodeConfig};
pub use runner::{Runner, SwitchStats, ThreadId, Yielder};
