//! A cooperative unithread runner.
//!
//! [`Runner`] plays the role of an Adios *worker*: it owns a
//! [`BufferPool`], creates a unithread per request, context-switches
//! into it, and regains control whenever the thread yields (the
//! page-fault handler's yield in the paper), parks, or finishes. The
//! single-address-space property the paper gets from the unikernel is
//! inherent here: runner, threads and "kernel" code share one process.

use std::cell::Cell;
use std::collections::VecDeque;

use crate::buffer::BufferPool;
use crate::context::{switch, Context};

/// Identifies a unithread in its runner (the buffer index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Free,
    Ready,
    Running,
    Parked,
    Finished,
}

/// Why `Runner::spawn` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// Every pre-allocated buffer is in use.
    PoolExhausted,
}

type EntryFn = Box<dyn FnOnce(&mut Yielder)>;

/// Context-switch accounting of one runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Unithreads spawned.
    pub spawns: u64,
    /// Parks (the page-fault handler's yield).
    pub parks: u64,
    /// Unparks (fetch completions making a thread runnable).
    pub unparks: u64,
    /// Unithreads run to completion.
    pub finishes: u64,
    /// One-way context switches performed.
    pub switches: u64,
}

struct Core {
    pool: BufferPool,
    state: Vec<State>,
    entries: Vec<Option<EntryFn>>,
    main_ctx: Context,
    ready: VecDeque<u32>,
    current: Option<u32>,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    stats: SwitchStats,
}

thread_local! {
    static CURRENT_CORE: Cell<*mut Core> = const { Cell::new(std::ptr::null_mut()) };
}

/// Handle a running unithread uses to give up the CPU.
pub struct Yielder {
    core: *mut Core,
    tid: u32,
}

impl Yielder {
    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        ThreadId(self.tid)
    }

    /// Yields to the runner and re-queues this thread at the back of
    /// the ready queue (cooperative time slicing).
    pub fn yield_now(&mut self) {
        // SAFETY: `core` outlives every thread it runs (threads only
        // execute inside `Runner::run_one`, which borrows the runner).
        let core = unsafe { &mut *self.core };
        core.state[self.tid as usize] = State::Ready;
        core.ready.push_back(self.tid);
        self.switch_to_runner();
    }

    /// Yields to the runner without re-queueing; the thread sleeps until
    /// [`Runner::unpark`]. This is the page-fault handler's yield: the
    /// thread resumes only when its page fetch completes.
    pub fn park(&mut self) {
        // SAFETY: as in `yield_now`.
        let core = unsafe { &mut *self.core };
        core.state[self.tid as usize] = State::Parked;
        core.stats.parks += 1;
        self.switch_to_runner();
    }

    /// The packet-payload area of this thread's unified buffer.
    pub fn payload(&mut self) -> &mut [u8] {
        // SAFETY: the buffer is acquired for this live thread and the
        // returned borrow is tied to `self`, its unique accessor.
        unsafe { (&mut *self.core).pool.payload_mut(self.tid) }
    }

    fn switch_to_runner(&mut self) {
        // SAFETY: both contexts are alive: the runner's main context is
        // owned by `Core` and this thread's context sits in its acquired
        // buffer; the reference ends before the switch, which returns
        // when the runner resumes us.
        let (own, main) = unsafe {
            let c = &mut *self.core;
            c.stats.switches += 1;
            (c.pool.context_ptr(self.tid), &raw const c.main_ctx)
        };
        // SAFETY: see above; both context blocks stay allocated.
        unsafe { switch(own, main) };
    }
}

extern "C" fn trampoline(arg: u64) -> ! {
    let tid = arg as u32;
    let core = CURRENT_CORE.with(|c| c.get());
    debug_assert!(!core.is_null(), "trampoline outside a runner");
    // SAFETY: `run_one` installed `core` and keeps it alive while the
    // thread runs; the reference is dropped before any switch.
    let entry = unsafe { (&mut *core).entries[tid as usize].take() }.expect("thread without entry");
    let mut yielder = Yielder { core, tid };
    // Panics must not unwind across the assembly boundary: catch and
    // re-raise on the runner side.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        entry(&mut yielder);
    }));
    // SAFETY: core is still alive; we are on this thread's own stack,
    // and the mutable reference ends before the final switch.
    let (own, main) = unsafe {
        let c = &mut *core;
        if let Err(payload) = result {
            c.panic_payload = Some(payload);
        }
        c.state[tid as usize] = State::Finished;
        c.stats.finishes += 1;
        c.stats.switches += 1;
        (c.pool.context_ptr(tid), &raw const c.main_ctx)
    };
    // SAFETY: contexts derived above remain valid; the runner resumes
    // and recycles this buffer only after the switch completes.
    unsafe { switch(own, main) };
    unreachable!("resumed a finished unithread");
}

/// A single-core cooperative unithread scheduler.
///
/// # Examples
///
/// ```
/// use unithread::Runner;
///
/// let mut worker = Runner::new(16, 32 * 1024, 256);
/// // A request that "faults" (parks) once mid-execution.
/// let tid = worker
///     .spawn(b"GET k1", |y| {
///         let first = y.payload()[0];
///         y.park(); // yield-based page fault
///         assert_eq!(y.payload()[0], first); // stack + buffer intact
///     })
///     .unwrap();
/// worker.run_until_idle();          // ran until the park
/// assert_eq!(worker.live_count(), 1);
/// worker.unpark(tid);               // fetch completed
/// worker.run_until_idle();
/// assert_eq!(worker.live_count(), 0); // buffer recycled
/// ```
pub struct Runner {
    core: Box<Core>,
}

impl Runner {
    /// Creates a runner with `capacity` pre-allocated buffers of
    /// `buf_size` bytes (`payload_capacity` of each reserved for packet
    /// payload).
    ///
    /// Rust frames are larger than the C frames of the paper's
    /// unikernel; for closures that do real work, prefer ≥ 16 KB
    /// buffers over the paper's 4 KB.
    pub fn new(capacity: usize, buf_size: usize, payload_capacity: usize) -> Runner {
        Runner {
            core: Box::new(Core {
                pool: BufferPool::new(capacity, buf_size, payload_capacity),
                state: vec![State::Free; capacity],
                entries: (0..capacity).map(|_| None).collect(),
                main_ctx: Context::zeroed(),
                ready: VecDeque::new(),
                current: None,
                panic_payload: None,
                stats: SwitchStats::default(),
            }),
        }
    }

    /// Spawns a unithread for a request; `payload` is copied into the
    /// unified buffer's packet area (as the paper's networking stack
    /// does on RX).
    pub fn spawn<F>(&mut self, payload: &[u8], f: F) -> Result<ThreadId, SpawnError>
    where
        F: FnOnce(&mut Yielder) + 'static,
    {
        let core = &mut *self.core;
        let Some(idx) = core.pool.acquire() else {
            return Err(SpawnError::PoolExhausted);
        };
        // SAFETY: freshly acquired buffer, no other alias.
        let dst = unsafe { core.pool.payload_mut(idx) };
        let n = payload.len().min(dst.len());
        dst[..n].copy_from_slice(&payload[..n]);

        core.entries[idx as usize] = Some(Box::new(f));
        let ctx = Context::prepare(trampoline, idx as u64, core.pool.stack_top(idx));
        // SAFETY: the context block lives inside the acquired buffer.
        unsafe { core.pool.context_ptr(idx).write(ctx) };
        core.state[idx as usize] = State::Ready;
        core.ready.push_back(idx);
        core.stats.spawns += 1;
        Ok(ThreadId(idx))
    }

    /// Runs the next ready unithread until it yields, parks or
    /// finishes. Returns `false` if nothing was ready.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that occurred inside the unithread, and panics
    /// if a thread overflowed its universal stack (canary check).
    pub fn run_one(&mut self) -> bool {
        let core: *mut Core = &mut *self.core;
        // Pre-switch bookkeeping through a short-lived reference that
        // ends before the switch (thread code re-derives its own).
        let (tid, main, target) = {
            let c = &mut *self.core;
            let Some(tid) = c.ready.pop_front() else {
                return false;
            };
            debug_assert_eq!(c.state[tid as usize], State::Ready);
            c.state[tid as usize] = State::Running;
            c.current = Some(tid);
            c.stats.switches += 1;
            (tid, &raw mut c.main_ctx, c.pool.context_ptr(tid))
        };
        let prev = CURRENT_CORE.with(|c| c.replace(core));
        // SAFETY: `main` and `target` point into `self.core`, which is
        // heap-pinned and outlives the call; no reference is live across
        // the switch.
        unsafe { switch(main, target) };
        CURRENT_CORE.with(|c| c.set(prev));

        let c = &mut *self.core;
        c.current = None;
        assert!(
            c.pool.canary_intact(tid),
            "unithread {tid} overflowed its universal stack"
        );
        if c.state[tid as usize] == State::Finished {
            c.state[tid as usize] = State::Free;
            c.entries[tid as usize] = None;
            c.pool.release(tid);
        }
        if let Some(p) = c.panic_payload.take() {
            std::panic::resume_unwind(p);
        }
        true
    }

    /// Runs until no thread is ready (parked threads stay parked).
    pub fn run_until_idle(&mut self) {
        while self.run_one() {}
    }

    /// Makes a parked thread ready again (fetch completion in the
    /// paper's Figure 5, step 8).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not parked.
    pub fn unpark(&mut self, tid: ThreadId) {
        let core = &mut *self.core;
        assert_eq!(
            core.state[tid.0 as usize],
            State::Parked,
            "unpark of non-parked thread {tid:?}"
        );
        core.state[tid.0 as usize] = State::Ready;
        core.ready.push_back(tid.0);
        core.stats.unparks += 1;
    }

    /// Threads currently ready to run.
    pub fn ready_count(&self) -> usize {
        self.core.ready.len()
    }

    /// Threads alive in any state (ready, running or parked).
    pub fn live_count(&self) -> usize {
        self.core.pool.capacity() - self.core.pool.free_count()
    }

    /// One-way context switches performed so far.
    pub fn switch_count(&self) -> u64 {
        self.core.stats.switches
    }

    /// Full context-switch accounting (spawns, parks, unparks,
    /// finishes, switches).
    pub fn stats(&self) -> SwitchStats {
        self.core.stats
    }

    /// Reads a finished-or-live thread's payload area (e.g. a reply the
    /// thread wrote before finishing is *not* accessible — buffers
    /// recycle on finish; read from inside the thread instead).
    pub fn payload_of(&self, tid: ThreadId) -> &[u8] {
        self.core.pool.payload(tid.0)
    }

    #[cfg(test)]
    pub(crate) fn corrupt_canary_for_test(&mut self, tid: ThreadId) {
        self.core.pool.corrupt_canary_for_test(tid.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn runner(cap: usize) -> Runner {
        Runner::new(cap, 32 * 1024, 256)
    }

    #[test]
    fn runs_to_completion() {
        let mut r = runner(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        r.spawn(b"", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(r.run_one());
        assert!(!r.run_one());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(r.live_count(), 0, "buffer recycled");
    }

    #[test]
    fn yield_now_round_robins() {
        let mut r = runner(4);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        for name in 0..2u32 {
            let log = log.clone();
            r.spawn(b"", move |y| {
                log.borrow_mut().push((name, 0));
                y.yield_now();
                log.borrow_mut().push((name, 1));
            })
            .unwrap();
        }
        r.run_until_idle();
        assert_eq!(
            &*log.borrow(),
            &[(0, 0), (1, 0), (0, 1), (1, 1)],
            "yields interleave in FIFO order"
        );
    }

    #[test]
    fn park_requires_unpark() {
        let mut r = runner(2);
        let done = Rc::new(std::cell::Cell::new(false));
        let d = done.clone();
        let tid = r
            .spawn(b"", move |y| {
                y.park();
                d.set(true);
            })
            .unwrap();
        r.run_until_idle();
        assert!(!done.get(), "parked thread must not resume by itself");
        assert_eq!(r.live_count(), 1);
        r.unpark(tid);
        r.run_until_idle();
        assert!(done.get());
        assert_eq!(r.live_count(), 0);
    }

    #[test]
    fn payload_is_copied_into_unified_buffer() {
        let mut r = runner(1);
        let seen = Rc::new(std::cell::RefCell::new(Vec::new()));
        let s = seen.clone();
        r.spawn(b"GET key17", move |y| {
            s.borrow_mut().extend_from_slice(&y.payload()[..9]);
        })
        .unwrap();
        r.run_until_idle();
        assert_eq!(&*seen.borrow(), b"GET key17");
    }

    #[test]
    fn pool_exhaustion_and_recycling() {
        let mut r = runner(2);
        r.spawn(b"", |y| y.park()).unwrap();
        r.spawn(b"", |y| y.park()).unwrap();
        assert!(matches!(
            r.spawn(b"", |_| {}),
            Err(SpawnError::PoolExhausted)
        ));
        r.run_until_idle(); // both park
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    fn thousand_threads_interleave() {
        let mut r = Runner::new(1024, 16 * 1024, 64);
        let sum = Rc::new(std::cell::Cell::new(0u64));
        for i in 0..1000u64 {
            let sum = sum.clone();
            r.spawn(b"", move |y| {
                y.yield_now();
                sum.set(sum.get() + i);
                y.yield_now();
            })
            .unwrap();
        }
        r.run_until_idle();
        assert_eq!(sum.get(), 999 * 1000 / 2);
        assert!(r.switch_count() >= 2 * 3 * 1000_u64 / 2);
    }

    #[test]
    fn unithread_panic_propagates_to_runner() {
        let mut r = runner(2);
        r.spawn(b"", |_| panic!("boom in unithread")).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.run_one();
        }));
        assert!(err.is_err());
        assert_eq!(r.live_count(), 0, "buffer still recycled after panic");
    }

    #[test]
    #[should_panic(expected = "overflowed its universal stack")]
    fn canary_corruption_detected() {
        let mut r = runner(2);
        let tid = r
            .spawn(b"", |y| {
                y.yield_now();
            })
            .unwrap();
        r.run_one(); // thread yields back
        r.corrupt_canary_for_test(tid);
        r.run_one(); // detection on return
    }

    #[test]
    #[should_panic(expected = "unpark of non-parked")]
    fn unpark_ready_thread_panics() {
        let mut r = runner(1);
        let tid = r.spawn(b"", |_| {}).unwrap();
        r.unpark(tid);
    }

    #[test]
    fn switch_stats_account_for_lifecycle() {
        let mut r = runner(4);
        let t1 = r.spawn(b"", |y| y.park()).unwrap();
        r.spawn(b"", |y| y.yield_now()).unwrap();
        r.run_until_idle(); // t1 parks; t2 yields then finishes
        r.unpark(t1);
        r.run_until_idle(); // t1 finishes
        let s = r.stats();
        assert_eq!(s.spawns, 2);
        assert_eq!(s.parks, 1);
        assert_eq!(s.unparks, 1);
        assert_eq!(s.finishes, 2);
        // Every dispatch and every return is one one-way switch: t1 runs
        // twice (park + finish), t2 twice (yield + finish) → 8 switches.
        assert_eq!(s.switches, 8);
        assert_eq!(s.switches, r.switch_count());
    }

    #[test]
    fn recursion_fits_universal_stack() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let mut r = Runner::new(1, 64 * 1024, 64);
        let out = Rc::new(std::cell::Cell::new(0u64));
        let o = out.clone();
        r.spawn(b"", move |_| o.set(fib(15))).unwrap();
        r.run_until_idle();
        assert_eq!(out.get(), 610);
    }
}
