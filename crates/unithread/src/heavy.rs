//! The `ucontext_t`-equivalent heavy context (Table 1 baseline).
//!
//! Shinjuku's user-level threads switch with glibc's
//! `swapcontext(3)`, whose `ucontext_t` is 968 bytes on x86-64 and whose
//! switch (i) saves/restores the *full* general-purpose register file,
//! (ii) saves/restores the entire FPU/SSE state with
//! `fxsave64`/`fxrstor64`, and (iii) performs an `rt_sigprocmask`
//! system call to maintain the signal mask. [`HeavyContext`] reproduces
//! all three costs without linking libc, so Table 1 ("context size
//! 968 B, 191 cycles") can be measured natively.
//!
//! Layout mirrors glibc's `ucontext_t` field-for-field in size:
//! `uc_flags` + `uc_link` (16) + `uc_stack` (24) + `mcontext` gregs
//! (184) + fp pointer (8) + reserved (64) + `uc_sigmask` (128) +
//! `__fpregs_mem` (512) + `__ssp` (32) = 968 bytes.

use std::arch::global_asm;

/// A full-fat context equivalent to glibc's `ucontext_t` (968 bytes).
#[repr(C, align(8))]
pub struct HeavyContext {
    /// `uc_flags` (unused, layout only).
    pub uc_flags: u64,
    /// `uc_link` (unused, layout only).
    pub uc_link: u64,
    /// `uc_stack` (`ss_sp`, `ss_flags`, `ss_size`).
    pub uc_stack: [u64; 3],
    /// `mcontext_t.gregs`: the full general-purpose register file.
    pub gregs: [u64; 23],
    /// `mcontext_t.fpregs` pointer slot (layout only).
    pub fpregs_ptr: u64,
    /// `mcontext_t.__reserved1`.
    pub reserved: [u64; 8],
    /// `uc_sigmask`: the switch's `rt_sigprocmask` writes here.
    pub uc_sigmask: [u64; 16],
    /// `__fpregs_mem`: the `fxsave64` area lives at the first 16-aligned
    /// offset inside it (offset 432 of the struct).
    pub fpregs_mem: [u8; 512],
    /// `__ssp` shadow-stack words; the tail doubles as `fxsave` slack
    /// because `__fpregs_mem` itself starts 8-misaligned, exactly like
    /// the real struct.
    pub ssp: [u64; 4],
}

const _: () = assert!(
    std::mem::size_of::<HeavyContext>() == 968,
    "Table 1: ucontext_t is 968 B"
);

// Offsets used by the assembly below.
const _: () = {
    assert!(std::mem::offset_of!(HeavyContext, gregs) == 40);
    assert!(std::mem::offset_of!(HeavyContext, uc_sigmask) == 296);
    assert!(std::mem::offset_of!(HeavyContext, fpregs_mem) == 424);
};

impl Default for HeavyContext {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl HeavyContext {
    /// An all-zero context (must be the save side of a switch, or be
    /// initialised with [`HeavyContext::init`], before being resumed).
    pub fn zeroed() -> HeavyContext {
        // SAFETY: HeavyContext is plain-old-data; all-zero is a valid
        // (if meaningless) value for every field.
        unsafe { std::mem::zeroed() }
    }

    /// Initialises this context *in place* to begin executing
    /// `entry(arg)` on the stack topped (exclusively) by `stack_top`.
    ///
    /// In-place because the seeded `fxsave` image lives at a 16-aligned
    /// offset *relative to the struct's runtime address* (the struct
    /// itself is 8-aligned, like glibc's `ucontext_t`); moving the
    /// struct afterwards would shift the image off its slot.
    pub fn init(&mut self, entry: extern "C" fn(u64) -> !, arg: u64, stack_top: *mut u8) {
        *self = HeavyContext::zeroed();
        let top = (stack_top as u64) & !0xF;
        self.gregs[G_RSP] = top - 8;
        self.gregs[G_RIP] = entry as usize as u64;
        self.gregs[G_RDI] = arg;
        // Seed a valid fxrstor image from the current FPU state.
        // SAFETY: the aligned area starts at most at offset 439 and runs
        // 512 bytes, ending before offset 968 (inside the struct).
        unsafe {
            let base = self as *mut HeavyContext as usize;
            let area = ((base + 424 + 15) & !15) as *mut u8;
            std::arch::asm!("fxsave64 [{0}]", in(reg) area, options(nostack));
        }
    }
}

// Greg slot assignments (our own; size-equivalent to glibc's). Slots
// 0–11 (rbx, rbp, r12–r15, rdi, rsi, rdx, rcx, r8, r9) are written by
// the assembly only; Rust touches the three used at initialisation.
const G_RDI: usize = 6;
const G_RSP: usize = 12;
const G_RIP: usize = 13;

// Byte offsets: gregs base 40, 8 bytes each.
global_asm!(
    r#"
    .global heavy_switch_asm
    .p2align 4
// heavy_switch_asm(save: *mut HeavyContext [rdi], resume: *const HeavyContext [rsi])
//
// Mimics glibc swapcontext: full GPR save, fxsave64/fxrstor64 of the
// FPU+SSE state, and an rt_sigprocmask syscall.
heavy_switch_asm:
    // Save the full general-purpose file (as getcontext does).
    mov     [rdi + 40 + 0*8], rbx
    mov     [rdi + 40 + 1*8], rbp
    mov     [rdi + 40 + 2*8], r12
    mov     [rdi + 40 + 3*8], r13
    mov     [rdi + 40 + 4*8], r14
    mov     [rdi + 40 + 5*8], r15
    mov     [rdi + 40 + 6*8], rdi
    mov     [rdi + 40 + 7*8], rsi
    mov     [rdi + 40 + 8*8], rdx
    mov     [rdi + 40 + 9*8], rcx
    mov     [rdi + 40 + 10*8], r8
    mov     [rdi + 40 + 11*8], r9
    mov     rax, [rsp]
    mov     [rdi + 40 + 13*8], rax      // rip
    lea     rax, [rsp + 8]
    mov     [rdi + 40 + 12*8], rax      // rsp
    // Full FPU/SSE state (glibc saves the whole fxsave area). The area
    // is the first 16-aligned address inside __fpregs_mem (the struct is
    // 8-aligned, so the offset is computed at run time).
    lea     rax, [rdi + 424 + 15]
    and     rax, -16
    fxsave64 [rax]

    // rt_sigprocmask(SIG_BLOCK=0, NULL, &save->uc_sigmask, 8) — the
    // kernel round trip swapcontext always pays.
    mov     r12, rdi
    mov     r13, rsi
    lea     rdx, [r12 + 296]
    xor     edi, edi
    xor     esi, esi
    mov     r10d, 8
    mov     eax, 14
    syscall

    // Restore side (base in r13; restore r13 itself last via rsi).
    mov     rsi, r13
    lea     rax, [rsi + 424 + 15]
    and     rax, -16
    fxrstor64 [rax]
    mov     rbx, [rsi + 40 + 0*8]
    mov     rbp, [rsi + 40 + 1*8]
    mov     r12, [rsi + 40 + 2*8]
    mov     r13, [rsi + 40 + 3*8]
    mov     r14, [rsi + 40 + 4*8]
    mov     r15, [rsi + 40 + 5*8]
    mov     rdi, [rsi + 40 + 6*8]
    mov     rdx, [rsi + 40 + 8*8]
    mov     rcx, [rsi + 40 + 9*8]
    mov     r8,  [rsi + 40 + 10*8]
    mov     r9,  [rsi + 40 + 11*8]
    mov     rsp, [rsi + 40 + 12*8]
    mov     rax, [rsi + 40 + 13*8]
    mov     rsi, [rsi + 40 + 7*8]
    jmp     rax
"#
);

extern "C" {
    fn heavy_switch_asm(save: *mut HeavyContext, resume: *const HeavyContext);
}

/// Switches with full `ucontext`-equivalent state transfer.
///
/// # Safety
///
/// Same contract as [`crate::context::switch`]: valid non-aliasing
/// contexts, `resume` captured by a prior switch or initialised by
/// [`HeavyContext::init`] over a live stack.
#[inline]
pub unsafe fn heavy_switch(save: *mut HeavyContext, resume: *const HeavyContext) {
    // SAFETY: forwarded to the caller.
    unsafe { heavy_switch_asm(save, resume) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn size_matches_table_1() {
        assert_eq!(std::mem::size_of::<HeavyContext>(), 968);
    }

    thread_local! {
        static MAIN: Cell<*mut HeavyContext> = const { Cell::new(std::ptr::null_mut()) };
        static THREAD: Cell<*mut HeavyContext> = const { Cell::new(std::ptr::null_mut()) };
        static VALUE: Cell<u64> = const { Cell::new(0) };
    }

    extern "C" fn worker(arg: u64) -> ! {
        let mut acc = arg;
        let mut f = arg as f64;
        loop {
            acc = acc.rotate_left(9) ^ 0x5555;
            f = (f * 1.25 + 1.0).sqrt();
            VALUE.with(|v| v.set(acc ^ f.to_bits()));
            // SAFETY: contexts installed by the test and outlive it.
            unsafe {
                heavy_switch(THREAD.with(|c| c.get()), MAIN.with(|c| c.get()));
            }
        }
    }

    #[test]
    fn heavy_ping_pong() {
        let mut stack = vec![0u8; 64 * 1024];
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut main_ctx = HeavyContext::zeroed();
        let mut th_ctx = HeavyContext::zeroed();
        th_ctx.init(worker, 3, top);
        MAIN.with(|c| c.set(&mut main_ctx));
        THREAD.with(|c| c.set(&mut th_ctx));

        let mut acc = 3u64;
        let mut f = 3f64;
        for _ in 0..64 {
            // SAFETY: contexts and stack live for the whole test.
            unsafe { heavy_switch(&mut main_ctx, &th_ctx) };
            acc = acc.rotate_left(9) ^ 0x5555;
            f = (f * 1.25 + 1.0).sqrt();
            assert_eq!(VALUE.with(|v| v.get()), acc ^ f.to_bits());
        }
    }

    #[test]
    fn sigmask_area_written_by_switch() {
        // The syscall writes the current (empty) mask into uc_sigmask —
        // proving the kernel round trip actually happens.
        let mut stack = vec![0u8; 64 * 1024];
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut main_ctx = HeavyContext::zeroed();
        main_ctx.uc_sigmask[0] = 0xFFFF_FFFF_FFFF_FFFF;
        let mut th_ctx = HeavyContext::zeroed();
        th_ctx.init(worker, 1, top);
        MAIN.with(|c| c.set(&mut main_ctx));
        THREAD.with(|c| c.set(&mut th_ctx));
        unsafe { heavy_switch(&mut main_ctx, &th_ctx) };
        assert_eq!(
            main_ctx.uc_sigmask[0], 0,
            "rt_sigprocmask should have overwritten the mask slot"
        );
    }
}
