//! Reclaimer policy.
//!
//! Adios pins a dedicated reclaimer core that monitors memory use and
//! "proactively evicts pages before entering an out-of-memory state"
//! (§3.3); reclamation starts when free memory falls below a watermark
//! (15 % of local memory by default) and runs until a hysteresis target
//! is rebuilt. Conventional systems (DiLOS, Linux/kswapd in Hermit)
//! instead *wake* a reclaimer thread on pressure, paying a wake-up delay
//! during which faulting threads can stall on an empty free list.
//!
//! This module holds the pure policy arithmetic; the runtime supplies
//! the timing (wake-up delays, per-eviction cost, write-back posts).

/// How the reclaimer is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimerMode {
    /// Adios: pinned thread, begins evicting as soon as free frames drop
    /// below the low watermark.
    #[default]
    Proactive,
    /// DiLOS/kswapd: woken when pressure is detected (at fault time),
    /// paying a wake-up latency before the first eviction.
    WakeUp,
}

/// Watermark configuration, in fractions of cache capacity.
#[derive(Debug, Clone, Copy)]
pub struct Watermarks {
    /// Reclamation starts when `free / capacity` drops below this
    /// (paper default: 15 %).
    pub low: f64,
    /// Reclamation stops once `free / capacity` is rebuilt to this.
    pub high: f64,
}

impl Default for Watermarks {
    fn default() -> Self {
        // The paper reclaims "immediately after reaching a certain
        // threshold" (15 %); the narrow hysteresis keeps each reclaim
        // cycle small so write-back bursts stay bounded.
        Watermarks {
            low: 0.15,
            high: 0.16,
        }
    }
}

impl Watermarks {
    /// Creates watermarks, validating the invariants.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low <= high < 1`.
    pub fn new(low: f64, high: f64) -> Watermarks {
        assert!(low > 0.0 && low <= high && high < 1.0, "bad watermarks");
        Watermarks { low, high }
    }

    /// Free-frame count below which reclamation must start.
    pub fn low_frames(&self, capacity: usize) -> usize {
        ((capacity as f64 * self.low).ceil() as usize).max(1)
    }

    /// Free-frame count at which reclamation stops.
    pub fn high_frames(&self, capacity: usize) -> usize {
        ((capacity as f64 * self.high).ceil() as usize).max(2)
    }

    /// Whether reclamation should start.
    pub fn should_start(&self, free: usize, capacity: usize) -> bool {
        free < self.low_frames(capacity)
    }

    /// Whether reclamation may stop.
    pub fn may_stop(&self, free: usize, capacity: usize) -> bool {
        free >= self.high_frames(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let w = Watermarks::default();
        assert!((w.low - 0.15).abs() < 1e-9);
        // 15 % of a 1000-frame cache.
        assert_eq!(w.low_frames(1000), 150);
    }

    #[test]
    fn start_stop_logic() {
        let w = Watermarks::new(0.1, 0.2);
        assert!(w.should_start(99, 1000));
        assert!(!w.should_start(100, 1000));
        assert!(w.may_stop(200, 1000));
        assert!(!w.may_stop(199, 1000));
    }

    #[test]
    fn tiny_caches_still_have_margins() {
        let w = Watermarks::default();
        assert!(w.low_frames(1) >= 1);
        assert!(w.high_frames(1) >= w.low_frames(1));
    }

    #[test]
    #[should_panic(expected = "bad watermarks")]
    fn inverted_watermarks_panic() {
        Watermarks::new(0.5, 0.2);
    }

    /// Hysteresis: once stopped, reclamation does not immediately
    /// restart (high watermark implies above low watermark), for every
    /// capacity in the practical range.
    #[test]
    fn hysteresis() {
        let w = Watermarks::default();
        for capacity in 2usize..100_000 {
            let stop_at = w.high_frames(capacity);
            assert!(!w.should_start(stop_at, capacity), "capacity {capacity}");
        }
    }
}
