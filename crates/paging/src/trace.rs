//! Page-access traces.
//!
//! A request executes *for real* against a [`PagedArena`](crate::arena);
//! while it runs, a [`TraceRecorder`] captures the alternating sequence
//! of compute time and page touches. The runtime later replays the
//! [`Trace`] against the simulated cache, so residency decides *timing*
//! while the set of touched pages is exact.

/// One page touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Page index within the arena.
    pub page: u64,
    /// Whether the touch dirties the page.
    pub write: bool,
}

/// One replay step: burn `compute_ns`, then (optionally) touch a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// CPU time consumed before the access, in nanoseconds.
    pub compute_ns: u32,
    /// The page touch ending the step, if any.
    pub access: Option<Access>,
}

/// A recorded request execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Request class (workload-defined, e.g. GET vs SCAN) for per-class
    /// latency reporting.
    pub class: u16,
    /// Replay steps in execution order.
    pub steps: Vec<Step>,
    /// Size of the request packet on the wire.
    pub request_bytes: u32,
    /// Size of the reply packet on the wire.
    pub reply_bytes: u32,
}

impl Trace {
    /// Total recorded compute time in nanoseconds.
    pub fn compute_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.compute_ns as u64).sum()
    }

    /// Number of page touches.
    pub fn accesses(&self) -> usize {
        self.steps.iter().filter(|s| s.access.is_some()).count()
    }

    /// Distinct pages touched.
    pub fn distinct_pages(&self) -> usize {
        let mut pages: Vec<u64> = self
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }
}

/// Memory-access cost constants charged while recording.
///
/// They model the compute node's DRAM hierarchy: a pointer-chasing load
/// over a multi-gigabyte working set costs roughly one DRAM round trip;
/// bulk copies stream at memory bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of a dependent (pointer-chasing) word access.
    pub word_access_ns: u32,
    /// Streaming cost per byte for bulk reads/writes (inverse bandwidth).
    pub byte_stream_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            word_access_ns: 80,
            byte_stream_ns: 0.25,
        }
    }
}

/// Records compute time and page touches during a real execution.
#[derive(Debug)]
pub struct TraceRecorder {
    steps: Vec<Step>,
    pending_ns: f64,
    /// Small window of recently recorded pages: repeated touches of the
    /// same hot page collapse into compute cost instead of new steps
    /// (they would be guaranteed hits during replay anyway — the page's
    /// reference bit protects it for the duration of the request).
    recent: [u64; 4],
    recent_next: usize,
    cost: CostModel,
}

impl TraceRecorder {
    /// Creates a recorder with the given cost model.
    pub fn new(cost: CostModel) -> TraceRecorder {
        TraceRecorder {
            steps: Vec::new(),
            pending_ns: 0.0,
            recent: [u64::MAX; 4],
            recent_next: 0,
            cost,
        }
    }

    /// Adds pure compute time.
    #[inline]
    pub fn compute_ns(&mut self, ns: f64) {
        self.pending_ns += ns;
    }

    /// Records a touch of `page`; dedupes against the recent window.
    pub fn touch(&mut self, page: u64, write: bool) {
        if self.recent.contains(&page) {
            // Still charge the (cached) access itself.
            self.pending_ns += 4.0;
            if write {
                // A write to a recently-read page must still appear in the
                // trace once so the replay marks the page dirty.
                if !self
                    .steps
                    .iter()
                    .rev()
                    .take(8)
                    .any(|s| s.access == Some(Access { page, write: true }))
                {
                    self.flush_step(Some(Access { page, write }));
                }
            }
            return;
        }
        self.recent[self.recent_next] = page;
        self.recent_next = (self.recent_next + 1) % self.recent.len();
        self.pending_ns += self.cost.word_access_ns as f64;
        self.flush_step(Some(Access { page, write }));
    }

    /// Records a bulk access of `len` bytes starting at `addr`,
    /// touching every covered page.
    pub fn touch_range(&mut self, addr: u64, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let first = crate::page_of(addr);
        let last = crate::page_of(addr + len - 1);
        self.pending_ns += self.cost.byte_stream_ns * len as f64;
        for page in first..=last {
            self.touch(page, write);
        }
    }

    fn flush_step(&mut self, access: Option<Access>) {
        let compute = self.pending_ns.round() as u32;
        self.pending_ns = 0.0;
        self.steps.push(Step {
            compute_ns: compute,
            access,
        });
    }

    /// Finishes recording, producing the trace.
    pub fn finish(mut self, class: u16, request_bytes: u32, reply_bytes: u32) -> Trace {
        if self.pending_ns > 0.0 {
            self.flush_step(None);
        }
        Trace {
            class,
            steps: self.steps,
            request_bytes,
            reply_bytes,
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(CostModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_alternating_compute_and_access() {
        let mut r = TraceRecorder::default();
        r.compute_ns(100.0);
        r.touch(5, false);
        r.compute_ns(50.0);
        let t = r.finish(0, 64, 128);
        assert_eq!(t.steps.len(), 2);
        assert_eq!(
            t.steps[0].access,
            Some(Access {
                page: 5,
                write: false
            })
        );
        assert_eq!(t.steps[0].compute_ns, 180); // 100 + word access
        assert_eq!(t.steps[1].access, None);
        assert_eq!(t.accesses(), 1);
        assert_eq!(t.reply_bytes, 128);
    }

    #[test]
    fn dedupes_recent_pages() {
        let mut r = TraceRecorder::default();
        r.touch(1, false);
        r.touch(1, false);
        r.touch(1, false);
        let t = r.finish(0, 0, 0);
        assert_eq!(t.accesses(), 1, "repeated touches collapse");
    }

    #[test]
    fn write_after_read_still_recorded() {
        let mut r = TraceRecorder::default();
        r.touch(1, false);
        r.touch(1, true); // must surface so replay dirties the page
        let t = r.finish(0, 0, 0);
        let writes = t
            .steps
            .iter()
            .filter(|s| matches!(s.access, Some(a) if a.write))
            .count();
        assert_eq!(writes, 1);
    }

    #[test]
    fn touch_range_covers_all_pages() {
        let mut r = TraceRecorder::default();
        // 3 pages: [4000, 12000) crosses pages 0, 1, 2.
        r.touch_range(4000, 8000, false);
        let t = r.finish(0, 0, 0);
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        assert_eq!(pages, vec![0, 1, 2]);
    }

    #[test]
    fn touch_range_empty_is_noop() {
        let mut r = TraceRecorder::default();
        r.touch_range(100, 0, true);
        let t = r.finish(0, 0, 0);
        assert_eq!(t.steps.len(), 0);
        assert_eq!(t.compute_ns(), 0);
    }

    #[test]
    fn distinct_pages_counts_unique() {
        let mut r = TraceRecorder::default();
        r.touch(3, false);
        r.touch(9, false);
        r.touch(200, false);
        r.touch(3, false); // outside window by then? window = 4, still in
        let t = r.finish(0, 0, 0);
        assert_eq!(t.distinct_pages(), 3);
    }

    #[test]
    fn compute_totals() {
        let mut r = TraceRecorder::default();
        r.compute_ns(10.0);
        r.compute_ns(15.5);
        r.touch(0, false);
        let t = r.finish(7, 0, 0);
        assert_eq!(t.class, 7);
        assert_eq!(t.compute_ns(), 26 + 80);
    }
}
