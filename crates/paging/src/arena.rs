//! The paged arena applications build their data structures in.
//!
//! The arena is real host memory (a flat byte vector): the KVS hash
//! table, the PlainTable index, Silo's tuples and the IVF-Flat cluster
//! lists all live in it and are read/written for real, which is what the
//! correctness tests exercise. Every access routes through a
//! [`TraceRecorder`] so the page-touch sequence is captured for replay.
//!
//! Addresses are plain `u64` offsets ("remote-memory virtual addresses");
//! the paper's applications get the same effect by `mmap`ing a
//! remote-memory region and using ordinary loads and stores.

use crate::trace::TraceRecorder;
use crate::PAGE_SIZE;

/// A byte arena with page-touch recording.
pub struct PagedArena {
    data: Vec<u8>,
    brk: u64,
}

impl PagedArena {
    /// Creates an arena of `bytes` capacity (rounded up to page size).
    pub fn new(bytes: u64) -> PagedArena {
        let rounded = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        PagedArena {
            data: vec![0u8; rounded as usize],
            brk: 0,
        }
    }

    /// Number of pages in the arena (the remote working set).
    pub fn total_pages(&self) -> u64 {
        self.data.len() as u64 / PAGE_SIZE
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.brk
    }

    /// Allocates `size` bytes aligned to `align`; returns the offset.
    ///
    /// Allocation is a bump pointer: the paper's workloads build their
    /// working set once at load time and never free.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base
            .checked_add(size)
            .expect("arena allocation size overflow");
        assert!(
            end <= self.data.len() as u64,
            "arena exhausted: need {end} bytes, capacity {}",
            self.data.len()
        );
        self.brk = end;
        base
    }

    /// Reads a `u64` at `addr` (dependent access: one page touch).
    pub fn read_u64(&self, addr: u64, rec: &mut TraceRecorder) -> u64 {
        rec.touch(addr / PAGE_SIZE, false);
        self.peek_u64(addr)
    }

    /// Writes a `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64, rec: &mut TraceRecorder) {
        rec.touch(addr / PAGE_SIZE, true);
        self.poke_u64(addr, value);
    }

    /// Reads a `u32` at `addr`.
    pub fn read_u32(&self, addr: u64, rec: &mut TraceRecorder) -> u32 {
        rec.touch(addr / PAGE_SIZE, false);
        let a = addr as usize;
        u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap())
    }

    /// Writes a `u32` at `addr`.
    pub fn write_u32(&mut self, addr: u64, value: u32, rec: &mut TraceRecorder) {
        rec.touch(addr / PAGE_SIZE, true);
        let a = addr as usize;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Bulk-reads `len` bytes at `addr` (streaming access).
    pub fn read_bytes(&self, addr: u64, len: u64, rec: &mut TraceRecorder) -> &[u8] {
        rec.touch_range(addr, len, false);
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Bulk-writes `src` at `addr` (streaming access).
    pub fn write_bytes(&mut self, addr: u64, src: &[u8], rec: &mut TraceRecorder) {
        rec.touch_range(addr, src.len() as u64, true);
        self.data[addr as usize..addr as usize + src.len()].copy_from_slice(src);
    }

    /// Reads a `u64` without recording — for load-time population only
    /// (the paper's load phase is not measured either).
    pub fn peek_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.data[a..a + 8].try_into().unwrap())
    }

    /// Writes a `u64` without recording (load-time population).
    pub fn poke_u64(&mut self, addr: u64, value: u64) {
        let a = addr as usize;
        self.data[a..a + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Bulk-reads without recording (load-time population).
    pub fn peek_bytes(&self, addr: u64, len: u64) -> &[u8] {
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Bulk-writes without recording (load-time population).
    pub fn poke_bytes(&mut self, addr: u64, src: &[u8]) {
        self.data[addr as usize..addr as usize + src.len()].copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CostModel;

    #[test]
    fn alloc_bumps_and_aligns() {
        let mut a = PagedArena::new(PAGE_SIZE * 4);
        let x = a.alloc(10, 8);
        let y = a.alloc(10, 64);
        assert_eq!(x, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= 10);
        assert_eq!(a.total_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn alloc_overflow_panics() {
        let mut a = PagedArena::new(PAGE_SIZE);
        a.alloc(PAGE_SIZE + 1, 8);
    }

    #[test]
    fn u64_round_trip_records_pages() {
        let mut a = PagedArena::new(PAGE_SIZE * 8);
        let addr = 3 * PAGE_SIZE + 16;
        let mut rec = TraceRecorder::new(CostModel::default());
        a.write_u64(addr, 0xDEAD_BEEF, &mut rec);
        assert_eq!(a.read_u64(addr, &mut rec), 0xDEAD_BEEF);
        let t = rec.finish(0, 0, 0);
        // Write recorded; read deduped against the recent window.
        assert!(t.steps.iter().any(|s| matches!(
            s.access,
            Some(acc) if acc.page == 3 && acc.write
        )));
    }

    #[test]
    fn bytes_round_trip_across_pages() {
        let mut a = PagedArena::new(PAGE_SIZE * 4);
        let addr = PAGE_SIZE - 8; // straddles pages 0 and 1
        let payload = [7u8; 64];
        let mut rec = TraceRecorder::new(CostModel::default());
        a.write_bytes(addr, &payload, &mut rec);
        assert_eq!(a.read_bytes(addr, 64, &mut rec), &payload[..]);
        let t = rec.finish(0, 0, 0);
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|x| x.page))
            .collect();
        assert!(pages.contains(&0) && pages.contains(&1));
    }

    #[test]
    fn peek_poke_do_not_record() {
        let mut a = PagedArena::new(PAGE_SIZE);
        let rec = TraceRecorder::new(CostModel::default());
        a.poke_u64(0, 42);
        assert_eq!(a.peek_u64(0), 42);
        let t = rec.finish(0, 0, 0);
        assert_eq!(t.steps.len(), 0);
    }

    #[test]
    fn u32_round_trip() {
        let mut a = PagedArena::new(PAGE_SIZE);
        let mut rec = TraceRecorder::new(CostModel::default());
        a.write_u32(100, 77, &mut rec);
        assert_eq!(a.read_u32(100, &mut rec), 77);
    }
}
