//! Compute-node memory management for the Adios reproduction.
//!
//! This crate models the paging side of a memory-disaggregation system:
//!
//! - [`PageCache`] — the local-DRAM page cache with a unified,
//!   single-lookup page table (DiLOS consolidates all paging metadata
//!   into one table; we keep the same property: one array lookup
//!   resolves residency, frame, dirtiness and in-flight state).
//! - [`cache::EvictionPolicy`] — CLOCK (default) and FIFO victims.
//! - [`reclaim`] — watermark arithmetic for the proactive reclaimer
//!   (Adios pins a reclaimer that starts below 15 % free, §3.3) and the
//!   wake-up-based reclaimer of conventional systems.
//! - [`Trace`]/[`TraceRecorder`] — the page-access trace a request
//!   records while executing for real against a [`PagedArena`]; the
//!   runtime replays the trace against the simulated cache, so *which*
//!   pages a request touches is exact and only *when* is modelled.
//! - [`PagedArena`] — a real byte arena with page-touch recording, the
//!   substrate all four applications build their data structures on.
//! - [`prefetch::SeqDetector`] — sequential readahead detection.
//! - [`observe`] — the memory-access observatory: prefetch-fate
//!   attribution, decayed page-heat/working-set tracking and
//!   deterministic heatmap/fingerprint exports.

pub mod arena;
pub mod cache;
pub mod observe;
pub mod prefetch;
pub mod reclaim;
pub mod trace;

pub use arena::PagedArena;
pub use cache::{EvictionPolicy, PageCache, PageState};
pub use trace::{Access, CostModel, Step, Trace, TraceRecorder};

/// Page size of the compute node (the paper uses 4 KB pages on the
/// compute node and 2 MB huge pages only inside the memory node).
pub const PAGE_SIZE: u64 = 4096;

/// Returns the page containing byte address `addr`.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}
