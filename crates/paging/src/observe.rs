//! Memory-access observatory: prefetch-efficacy attribution, page-heat
//! and working-set tracking, and deterministic exports.
//!
//! The runtime can only act on prefetching and placement policy if it
//! can *measure* them. This module is the measurement substrate:
//!
//! - **Prefetch fates** — every prefetched page is classified exactly
//!   once as a *hit* (demand access after the line arrived), *late*
//!   (a demand access raced the in-flight prefetch and only waited the
//!   residual fetch time; the head start is credited as saved
//!   latency), or *wasted* (evicted, failed, or still unaccessed at
//!   run end). Records still in flight at run end are counted as
//!   `inflight_at_end`, giving the exact conservation identity
//!   `issued == hits + lates + wasted + inflight_at_end` per detector
//!   class and in total.
//! - **Page heat** — a SpaceSaving top-K heavy-hitter sketch with
//!   exponential per-window decay (`w ← w · d^Δwindows`), plus a
//!   bucketed address-range histogram absorbing the weight of pages
//!   displaced from the sketch, so memory stays `O(K + buckets)`
//!   regardless of footprint.
//! - **Working set & heatmap** — per-window distinct-page counts and a
//!   `page-bucket × time-window → touches` matrix, both capped at
//!   [`MemObsConfig::max_windows`] rows with explicit drop accounting
//!   ([`MemObservatory::dropped`]) instead of silent truncation.
//! - **Shard heat shares** — decayed per-shard touch weights exposing
//!   placement skew (`max/mean` ratio) as a time series.
//!
//! Everything here is deterministic: iteration happens over vectors or
//! sorted snapshots, hashing uses the seed-free Fx tables, and floats
//! are serialised at fixed precision — equal-seed runs produce
//! byte-identical [`MemReport`] serialisations.

use desim::fxhash::FxHashMap;
use std::fmt::Write as _;

/// Detector class a prefetch is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchClass {
    /// Sequential readahead (`SeqDetector`).
    Readahead = 0,
    /// Leap majority-trend detection (`LeapDetector`).
    Leap = 1,
    /// The speculative next-page fallback taken when the detector has
    /// no pattern.
    Speculative = 2,
}

/// Display names for the three classes, indexed by discriminant.
pub const CLASS_NAMES: [&str; 3] = ["readahead", "leap", "speculative"];

/// Observatory configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemObsConfig {
    /// Width of a heat/working-set window in virtual nanoseconds.
    pub heat_window_ns: u64,
    /// Heavy-hitter slots in the heat sketch.
    pub top_k: usize,
    /// Per-window decay multiplier applied to sketch weights, the rest
    /// histogram and shard heat (`0 < d <= 1`).
    pub heat_decay: f64,
    /// Address-range buckets of the heatmap and rest histogram.
    pub heatmap_buckets: usize,
    /// Cap on recorded window rows (heatmap + working-set series);
    /// rows beyond the cap are counted in `obs_dropped`.
    pub max_windows: usize,
    /// Cap on simultaneously tracked prefetch records; overflow issues
    /// are conservatively classified wasted and counted dropped.
    pub max_tracked: usize,
    /// Distinct stride deltas kept in the fingerprint; the rest fold
    /// into an explicit `other` bin.
    pub max_strides: usize,
}

impl Default for MemObsConfig {
    fn default() -> MemObsConfig {
        MemObsConfig {
            heat_window_ns: 1_000_000, // 1 ms
            top_k: 64,
            heat_decay: 0.5,
            heatmap_buckets: 64,
            max_windows: 4096,
            max_tracked: 1 << 20,
            max_strides: 64,
        }
    }
}

/// Fate counters for one detector class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FateCounters {
    /// Prefetches issued (including ones that later fail).
    pub issued: u64,
    /// Demand access found the page already arrived.
    pub hits: u64,
    /// Demand access raced the in-flight prefetch.
    pub lates: u64,
    /// Evicted, failed, or unaccessed by run end.
    pub wasted: u64,
    /// Still in flight when the run ended.
    pub inflight_at_end: u64,
    /// Head-start nanoseconds credited to late prefetches.
    pub late_saved_ns: u64,
}

impl FateCounters {
    /// Exact conservation identity for this class.
    pub fn holds(&self) -> bool {
        self.issued == self.hits + self.lates + self.wasted + self.inflight_at_end
    }
}

struct PfRec {
    class: u8,
    issued_ns: u64,
    arrived: bool,
}

struct HeatSlot {
    page: u64,
    weight: f64,
}

/// One closed observation window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRow {
    /// Window index (`start_ns = idx * heat_window_ns`).
    pub idx: u64,
    /// Distinct pages touched in the window.
    pub ws_pages: u64,
    /// Shard heat skew (`max/mean` share) at window close.
    pub skew: f64,
    /// Cumulative strict prefetch hit-rate at window close.
    pub hit_rate: f64,
    /// Touches per address bucket inside the window.
    pub buckets: Vec<u64>,
}

/// Live observatory state; one per enabled run.
pub struct MemObservatory {
    cfg: MemObsConfig,
    total_pages: u64,
    // Prefetch-fate attribution.
    pf: FxHashMap<u64, PfRec>,
    fates: [FateCounters; 3],
    // Heat sketch (SpaceSaving) + displaced-weight histogram.
    slots: Vec<HeatSlot>,
    slot_of: FxHashMap<u64, usize>,
    rest_hist: Vec<f64>,
    // Windows.
    cur_window: u64,
    last_seen: FxHashMap<u64, u64>,
    ws_cur: u64,
    hm_cur: Vec<u64>,
    shard_cur: Vec<u64>,
    shard_heat: Vec<f64>,
    shares: Vec<f64>,
    skew: f64,
    ws_last: u64,
    rows: Vec<WindowRow>,
    // Stride fingerprint.
    strides: FxHashMap<i64, u64>,
    stride_other: u64,
    touches: u64,
    dropped: u64,
}

impl MemObservatory {
    /// Creates an observatory over a `total_pages` footprint spread
    /// across `shards` rails.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero window, no buckets,
    /// no slots, or a decay outside `(0, 1]`).
    pub fn new(cfg: MemObsConfig, total_pages: u64, shards: usize) -> MemObservatory {
        assert!(cfg.heat_window_ns > 0, "zero-width heat window");
        assert!(cfg.heatmap_buckets > 0 && cfg.top_k > 0, "empty sketch");
        assert!(
            cfg.heat_decay > 0.0 && cfg.heat_decay <= 1.0,
            "decay outside (0, 1]"
        );
        MemObservatory {
            cfg,
            total_pages: total_pages.max(1),
            pf: FxHashMap::default(),
            fates: [FateCounters::default(); 3],
            slots: Vec::with_capacity(cfg.top_k),
            slot_of: FxHashMap::default(),
            rest_hist: vec![0.0; cfg.heatmap_buckets],
            cur_window: 0,
            last_seen: FxHashMap::default(),
            ws_cur: 0,
            hm_cur: vec![0; cfg.heatmap_buckets],
            shard_cur: vec![0; shards.max(1)],
            shard_heat: vec![0.0; shards.max(1)],
            shares: vec![0.0; shards.max(1)],
            skew: 0.0,
            ws_last: 0,
            rows: Vec::new(),
            strides: FxHashMap::default(),
            stride_other: 0,
            touches: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn bucket(&self, page: u64) -> usize {
        let b = self.cfg.heatmap_buckets as u64;
        ((page.min(self.total_pages - 1) * b) / self.total_pages) as usize
    }

    /// Closes every window before `w` and advances to it.
    fn roll_to(&mut self, w: u64) {
        debug_assert!(w > self.cur_window);
        let gap = w - self.cur_window;
        // Fold the closing window's shard touches into the decayed
        // heat, then age everything across the (possibly idle) gap.
        let d = self.cfg.heat_decay;
        let total: f64 = {
            for (h, c) in self.shard_heat.iter_mut().zip(&self.shard_cur) {
                *h = *h * d + *c as f64;
            }
            self.shard_heat.iter().sum()
        };
        if total > 0.0 {
            let n = self.shard_heat.len() as f64;
            let mut max = 0.0f64;
            for (s, h) in self.shard_heat.iter().enumerate() {
                let share = h / total;
                self.shares[s] = share;
                max = max.max(share);
            }
            self.skew = max * n;
        }
        if gap > 1 {
            let age = d.powi((gap - 1) as i32);
            for h in &mut self.shard_heat {
                *h *= age;
            }
        }
        let age_all = d.powi(gap as i32);
        for s in &mut self.slots {
            s.weight *= age_all;
        }
        for r in &mut self.rest_hist {
            *r *= age_all;
        }
        self.ws_last = self.ws_cur;
        if self.ws_cur > 0 || self.hm_cur.iter().any(|&c| c > 0) {
            if self.rows.len() < self.cfg.max_windows {
                self.rows.push(WindowRow {
                    idx: self.cur_window,
                    ws_pages: self.ws_cur,
                    skew: self.skew,
                    hit_rate: self.hit_rate(),
                    buckets: std::mem::replace(&mut self.hm_cur, vec![0; self.cfg.heatmap_buckets]),
                });
            } else {
                self.dropped += 1;
                self.hm_cur.iter_mut().for_each(|c| *c = 0);
            }
        }
        self.ws_cur = 0;
        self.shard_cur.iter_mut().for_each(|c| *c = 0);
        self.cur_window = w;
    }

    /// Books one completed demand access. Returns `true` when one or
    /// more windows closed (gauge values are fresh).
    pub fn on_touch(&mut self, page: u64, shard: usize, now_ns: u64, delta: Option<i64>) -> bool {
        let w = now_ns / self.cfg.heat_window_ns;
        let rolled = w > self.cur_window;
        if rolled {
            self.roll_to(w);
        }
        self.touches += 1;
        // Heat sketch: bump a tracked slot, fill a free one, or
        // displace the minimum-weight slot (ties broken by slot index,
        // which is deterministic).
        if let Some(&i) = self.slot_of.get(&page) {
            self.slots[i].weight += 1.0;
        } else if self.slots.len() < self.cfg.top_k {
            self.slot_of.insert(page, self.slots.len());
            self.slots.push(HeatSlot { page, weight: 1.0 });
        } else {
            let mut min_i = 0;
            for (i, s) in self.slots.iter().enumerate() {
                if s.weight < self.slots[min_i].weight {
                    min_i = i;
                }
            }
            let old = &self.slots[min_i];
            let b = self.bucket(old.page);
            self.rest_hist[b] += old.weight;
            self.slot_of.remove(&old.page);
            let w0 = old.weight;
            self.slot_of.insert(page, min_i);
            self.slots[min_i] = HeatSlot {
                page,
                weight: w0 + 1.0,
            };
        }
        let b = self.bucket(page);
        self.hm_cur[b] += 1;
        if let Some(c) = self.shard_cur.get_mut(shard) {
            *c += 1;
        }
        let seen = self.last_seen.insert(page, w);
        if seen != Some(w) && seen.is_none_or(|s| s < w) {
            self.ws_cur += 1;
        }
        if let Some(d) = delta {
            if let Some(c) = self.strides.get_mut(&d) {
                *c += 1;
            } else if self.strides.len() < self.cfg.max_strides {
                self.strides.insert(d, 1);
            } else {
                self.stride_other += 1;
            }
        }
        rolled
    }

    /// Records a prefetch issuance. When the record table is full the
    /// prefetch is conservatively booked `issued + wasted` at once and
    /// counted dropped, keeping the conservation identity exact.
    pub fn on_prefetch_issued(&mut self, page: u64, class: PrefetchClass, now_ns: u64) {
        let f = &mut self.fates[class as usize];
        f.issued += 1;
        if self.pf.len() >= self.cfg.max_tracked {
            f.wasted += 1;
            self.dropped += 1;
            return;
        }
        let prev = self.pf.insert(
            page,
            PfRec {
                class: class as u8,
                issued_ns: now_ns,
                arrived: false,
            },
        );
        debug_assert!(prev.is_none(), "prefetch of a page already tracked");
        if let Some(p) = prev {
            // Defensive: never lose a record — the displaced prefetch
            // was never consumed.
            self.fates[p.class as usize].wasted += 1;
        }
    }

    /// Marks a tracked prefetch's data as arrived (fetch completed).
    pub fn on_prefetch_arrived(&mut self, page: u64) {
        if let Some(r) = self.pf.get_mut(&page) {
            r.arrived = true;
        }
    }

    /// Classifies a tracked prefetch as a hit. Returns whether a
    /// record existed.
    pub fn classify_hit(&mut self, page: u64) -> bool {
        match self.pf.remove(&page) {
            Some(r) => {
                self.fates[r.class as usize].hits += 1;
                true
            }
            None => false,
        }
    }

    /// Classifies a tracked prefetch as late: a demand access at
    /// `now_ns` raced the still-in-flight line. The head start since
    /// issue is credited as saved latency.
    pub fn classify_late(&mut self, page: u64, now_ns: u64) -> bool {
        match self.pf.remove(&page) {
            Some(r) => {
                let f = &mut self.fates[r.class as usize];
                f.lates += 1;
                f.late_saved_ns += now_ns.saturating_sub(r.issued_ns);
                true
            }
            None => false,
        }
    }

    /// Classifies a tracked prefetch as wasted (evicted unaccessed or
    /// failed terminally). Returns whether a record existed.
    pub fn classify_wasted(&mut self, page: u64) -> bool {
        match self.pf.remove(&page) {
            Some(r) => {
                self.fates[r.class as usize].wasted += 1;
                true
            }
            None => false,
        }
    }

    /// Rows (ws/heatmap/series) and records dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Distinct pages touched in the last closed window.
    pub fn ws_last(&self) -> u64 {
        self.ws_last
    }

    /// Shard heat skew (`max/mean` share) as of the last closed window.
    pub fn heat_skew(&self) -> f64 {
        self.skew
    }

    /// Decayed heat share of shard `s` as of the last closed window.
    pub fn shard_share(&self, s: usize) -> f64 {
        self.shares.get(s).copied().unwrap_or(0.0)
    }

    /// Cumulative strict hit-rate over classified prefetches.
    pub fn hit_rate(&self) -> f64 {
        let (mut hits, mut done) = (0u64, 0u64);
        for f in &self.fates {
            hits += f.hits;
            done += f.hits + f.lates + f.wasted;
        }
        if done == 0 {
            0.0
        } else {
            hits as f64 / done as f64
        }
    }

    /// Closes the run at `end_ns`: flushes the open window, sweeps the
    /// remaining records (arrived → wasted, in flight →
    /// `inflight_at_end`) and freezes the report.
    pub fn finish(mut self, end_ns: u64) -> MemReport {
        let w = end_ns / self.cfg.heat_window_ns + 1;
        if w > self.cur_window {
            self.roll_to(w);
        }
        // Sweep in deterministic page order.
        let mut leftover: Vec<(u64, bool, u8)> = self
            .pf
            .iter()
            .map(|(&p, r)| (p, r.arrived, r.class))
            .collect();
        leftover.sort_unstable();
        for (_, arrived, class) in leftover {
            let f = &mut self.fates[class as usize];
            if arrived {
                f.wasted += 1;
            } else {
                f.inflight_at_end += 1;
            }
        }
        let mut heat_top: Vec<(u64, f64)> = self.slots.iter().map(|s| (s.page, s.weight)).collect();
        heat_top.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut strides: Vec<(i64, u64)> = self.strides.iter().map(|(&d, &c)| (d, c)).collect();
        strides.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        MemReport {
            window_ns: self.cfg.heat_window_ns,
            heatmap_buckets: self.cfg.heatmap_buckets,
            total_pages: self.total_pages,
            touches: self.touches,
            distinct_pages: self.last_seen.len() as u64,
            classes: self.fates,
            heat_top,
            rest_hist: self.rest_hist,
            rows: self.rows,
            strides,
            stride_other: self.stride_other,
            shard_shares: self.shares,
            heat_skew: self.skew,
            obs_dropped: self.dropped,
        }
    }
}

/// Frozen end-of-run observatory report, serialised into the
/// `"memory"` run-JSON block and the heatmap/fingerprint CSVs.
#[derive(Clone, Debug, PartialEq)]
pub struct MemReport {
    /// Window width used for every series.
    pub window_ns: u64,
    /// Address buckets of the heatmap and rest histogram.
    pub heatmap_buckets: usize,
    /// Page-space size the buckets divide.
    pub total_pages: u64,
    /// Completed demand accesses booked.
    pub touches: u64,
    /// Distinct pages touched over the whole run.
    pub distinct_pages: u64,
    /// Per-class fate counters, indexed by [`PrefetchClass`].
    pub classes: [FateCounters; 3],
    /// Heavy hitters, hottest first (page, decayed weight).
    pub heat_top: Vec<(u64, f64)>,
    /// Decayed weight displaced from the sketch, per address bucket.
    pub rest_hist: Vec<f64>,
    /// Closed windows in time order.
    pub rows: Vec<WindowRow>,
    /// Stride fingerprint, most frequent first (delta pages, count).
    pub strides: Vec<(i64, u64)>,
    /// Stride observations beyond the tracked deltas.
    pub stride_other: u64,
    /// Final decayed heat share per shard.
    pub shard_shares: Vec<f64>,
    /// Final `max/mean` shard heat skew.
    pub heat_skew: f64,
    /// Rows/records dropped by bounded-memory caps.
    pub obs_dropped: u64,
}

impl MemReport {
    /// Totals over all detector classes.
    pub fn totals(&self) -> FateCounters {
        let mut t = FateCounters::default();
        for c in &self.classes {
            t.issued += c.issued;
            t.hits += c.hits;
            t.lates += c.lates;
            t.wasted += c.wasted;
            t.inflight_at_end += c.inflight_at_end;
            t.late_saved_ns += c.late_saved_ns;
        }
        t
    }

    /// Exact conservation identity, per class and in total.
    pub fn holds(&self) -> bool {
        self.classes.iter().all(FateCounters::holds) && self.totals().holds()
    }

    /// Cumulative strict hit-rate (`hits / classified`).
    pub fn hit_rate(&self) -> f64 {
        let t = self.totals();
        let done = t.hits + t.lates + t.wasted;
        if done == 0 {
            0.0
        } else {
            t.hits as f64 / done as f64
        }
    }

    /// Mean working-set pages over closed windows.
    pub fn ws_mean(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.rows.iter().map(|r| r.ws_pages as f64).sum::<f64>() / self.rows.len() as f64
        }
    }

    /// Peak working-set pages over closed windows.
    pub fn ws_peak(&self) -> u64 {
        self.rows.iter().map(|r| r.ws_pages).max().unwrap_or(0)
    }

    /// Deterministic JSON for the `"memory"` run-JSON block.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let t = self.totals();
        let _ = write!(
            out,
            "{{\"window_ns\":{},\"touches\":{},\"distinct_pages\":{},\"total_pages\":{}",
            self.window_ns, self.touches, self.distinct_pages, self.total_pages
        );
        let _ = write!(
            out,
            ",\"prefetch\":{{\"issued\":{},\"hits\":{},\"lates\":{},\"wasted\":{},\
             \"inflight_at_end\":{},\"late_saved_ns\":{},\"hit_rate\":{:.6},\"conserved\":{}",
            t.issued,
            t.hits,
            t.lates,
            t.wasted,
            t.inflight_at_end,
            t.late_saved_ns,
            self.hit_rate(),
            self.holds()
        );
        out.push_str(",\"by_detector\":{");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"issued\":{},\"hits\":{},\"lates\":{},\"wasted\":{},\
                 \"inflight_at_end\":{},\"late_saved_ns\":{}}}",
                CLASS_NAMES[i],
                c.issued,
                c.hits,
                c.lates,
                c.wasted,
                c.inflight_at_end,
                c.late_saved_ns
            );
        }
        out.push_str("}}");
        let _ = write!(
            out,
            ",\"working_set\":{{\"windows\":{},\"mean_pages\":{:.3},\"peak_pages\":{}}}",
            self.rows.len(),
            self.ws_mean(),
            self.ws_peak()
        );
        out.push_str(",\"heat\":{\"top\":[");
        for (i, (page, w)) in self.heat_top.iter().take(16).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"page\":{page},\"weight\":{w:.3}}}");
        }
        let _ = write!(out, "],\"skew\":{:.6},\"shard_shares\":[", self.heat_skew);
        for (i, s) in self.shard_shares.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s:.6}");
        }
        out.push_str("]}");
        out.push_str(",\"strides\":{\"top\":[");
        for (i, (d, c)) in self.strides.iter().take(16).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"delta\":{d},\"count\":{c}}}");
        }
        let _ = write!(out, "],\"other\":{}}}", self.stride_other);
        let _ = write!(out, ",\"obs_dropped\":{}", self.obs_dropped);
        if self.obs_dropped > 0 {
            let _ = write!(
                out,
                ",\"warning\":\"{} observatory rows/records dropped by bounded-memory caps; \
                 series under-report\"",
                self.obs_dropped
            );
        }
        out.push('}');
        out
    }

    /// Heatmap CSV: one row per non-zero `window × bucket` cell.
    pub fn heatmap_csv(&self) -> String {
        let mut out = String::from("window_start_us,page_bucket,touches\n");
        for r in &self.rows {
            let start_us = r.idx * self.window_ns / 1000;
            for (b, &c) in r.buckets.iter().enumerate() {
                if c > 0 {
                    let _ = writeln!(out, "{start_us},{b},{c}");
                }
            }
        }
        out
    }

    /// Access-shape fingerprint CSV (stride distribution).
    pub fn fingerprint_csv(&self) -> String {
        let mut out = String::from("delta_pages,count\n");
        for (d, c) in &self.strides {
            let _ = writeln!(out, "{d},{c}");
        }
        if self.stride_other > 0 {
            let _ = writeln!(out, "other,{}", self.stride_other);
        }
        out
    }

    /// Perfetto counter events (heat skew, working set, hit-rate) under
    /// the synthetic process `pid`, one sample per closed window.
    pub fn perfetto_counter_events(&self, pid: u64) -> Vec<String> {
        let mut out = Vec::with_capacity(self.rows.len() * 3 + 1);
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"memory\"}}}}"
        ));
        for r in &self.rows {
            let end_ns = (r.idx + 1) * self.window_ns;
            let ts = format!("{:.3}", end_ns as f64 / 1000.0);
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"heat_skew\",\"ts\":{ts},\
                 \"args\":{{\"value\":{:.6}}}}}",
                r.skew
            ));
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"prefetch_hit_rate\",\"ts\":{ts},\
                 \"args\":{{\"value\":{:.6}}}}}",
                r.hit_rate
            ));
            out.push(format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"ws_pages\",\"ts\":{ts},\
                 \"args\":{{\"value\":{}}}}}",
                r.ws_pages
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pages: u64, shards: usize) -> MemObservatory {
        MemObservatory::new(MemObsConfig::default(), pages, shards)
    }

    #[test]
    fn fates_conserve_across_every_classification_path() {
        let mut o = obs(1000, 1);
        o.on_prefetch_issued(1, PrefetchClass::Readahead, 100);
        o.on_prefetch_issued(2, PrefetchClass::Readahead, 100);
        o.on_prefetch_issued(3, PrefetchClass::Leap, 100);
        o.on_prefetch_issued(4, PrefetchClass::Speculative, 100);
        o.on_prefetch_issued(5, PrefetchClass::Leap, 100);
        o.on_prefetch_arrived(1);
        assert!(o.classify_hit(1));
        assert!(o.classify_late(2, 600));
        o.on_prefetch_arrived(3);
        assert!(o.classify_wasted(3)); // evicted unaccessed
        o.on_prefetch_arrived(4); // arrived, never accessed → sweep wasted
                                  // page 5 stays in flight → inflight_at_end
        let r = o.finish(10_000_000);
        let t = r.totals();
        assert_eq!(
            (t.issued, t.hits, t.lates, t.wasted, t.inflight_at_end),
            (5, 1, 1, 2, 1)
        );
        assert!(r.holds());
        assert_eq!(
            r.classes[PrefetchClass::Readahead as usize].late_saved_ns,
            500
        );
        assert_eq!(r.classes[PrefetchClass::Leap as usize].inflight_at_end, 1);
    }

    #[test]
    fn record_cap_overflow_stays_conserved_and_counts_dropped() {
        let cfg = MemObsConfig {
            max_tracked: 2,
            ..MemObsConfig::default()
        };
        let mut o = MemObservatory::new(cfg, 100, 1);
        for p in 0..5u64 {
            o.on_prefetch_issued(p, PrefetchClass::Readahead, 0);
        }
        let r = o.finish(1);
        assert!(r.holds());
        assert_eq!(r.totals().issued, 5);
        assert_eq!(r.obs_dropped, 3);
        assert!(r.to_json().contains("\"warning\""));
    }

    #[test]
    fn heat_sketch_is_bounded_and_finds_the_heavy_hitter() {
        let cfg = MemObsConfig {
            top_k: 4,
            ..MemObsConfig::default()
        };
        let mut o = MemObservatory::new(cfg, 10_000, 1);
        for i in 0..2_000u64 {
            o.on_touch(7, 0, i, None); // hot page
            o.on_touch(i % 1_000, 0, i, None); // churn
        }
        let r = o.finish(2_000);
        assert_eq!(r.heat_top.len(), 4);
        assert_eq!(r.heat_top[0].0, 7, "hot page must top the sketch");
        assert!(
            r.rest_hist.iter().sum::<f64>() > 0.0,
            "displaced weight lands in the rest"
        );
    }

    #[test]
    fn windows_roll_decay_and_cap() {
        let cfg = MemObsConfig {
            heat_window_ns: 100,
            max_windows: 3,
            ..MemObsConfig::default()
        };
        let mut o = MemObservatory::new(cfg, 64, 2);
        for w in 0..6u64 {
            for i in 0..4 {
                let rolled = o.on_touch(i, (i % 2) as usize, w * 100 + i, None);
                assert_eq!(rolled, w > 0 && i == 0);
            }
        }
        let r = o.finish(600);
        assert_eq!(r.rows.len(), 3, "row cap");
        assert_eq!(r.obs_dropped, 3, "each dropped row is counted");
        assert_eq!(r.rows[0].ws_pages, 4);
        // Two shards touched evenly → no skew.
        assert!((r.heat_skew - 1.0).abs() < 1e-9, "skew {}", r.heat_skew);
        assert!((r.shard_shares[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn skewed_touches_show_dominant_shard() {
        let mut o = obs(1024, 4);
        for i in 0..1_000u64 {
            o.on_touch(i % 16, 0, i * 1_000, None); // all heat on shard 0
        }
        o.on_touch(999, 3, 2_000_000, None);
        let r = o.finish(3_000_000);
        assert!(r.shard_shares[0] > 0.9, "shares {:?}", r.shard_shares);
        assert!(r.heat_skew > 3.5, "skew {}", r.heat_skew);
    }

    #[test]
    fn stride_fingerprint_tracks_deltas_and_overflows_to_other() {
        let cfg = MemObsConfig {
            max_strides: 2,
            ..MemObsConfig::default()
        };
        let mut o = MemObservatory::new(cfg, 1 << 20, 1);
        for i in 0..10u64 {
            o.on_touch(i, 0, i, Some(1));
        }
        o.on_touch(100, 0, 20, Some(-3));
        o.on_touch(200, 0, 21, Some(17)); // over cap → other
        let r = o.finish(100);
        assert_eq!(r.strides[0], (1, 10));
        assert_eq!(r.strides[1], (-3, 1));
        assert_eq!(r.stride_other, 1);
        let csv = r.fingerprint_csv();
        assert!(csv.contains("1,10") && csv.ends_with("other,1\n"));
    }

    #[test]
    fn exports_are_deterministic_and_wellformed() {
        let run = || {
            let mut o = obs(4096, 2);
            for i in 0..500u64 {
                o.on_touch((i * 7) % 512, (i % 2) as usize, i * 2_500, Some(7));
            }
            o.on_prefetch_issued(9, PrefetchClass::Leap, 10);
            o.on_prefetch_arrived(9);
            o.classify_hit(9);
            o.finish(1_250_000)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.heatmap_csv(), b.heatmap_csv());
        assert_eq!(
            a.perfetto_counter_events(3_000_000),
            b.perfetto_counter_events(3_000_000)
        );
        assert!(a.heatmap_csv().lines().count() > 1, "non-empty heatmap");
        assert!(a.to_json().contains("\"conserved\":true"));
        for ev in a.perfetto_counter_events(3_000_000).iter().skip(1) {
            assert!(ev.contains("\"ph\":\"C\""), "{ev}");
        }
    }

    #[test]
    fn ws_counts_distinct_pages_per_window() {
        let cfg = MemObsConfig {
            heat_window_ns: 1_000,
            ..MemObsConfig::default()
        };
        let mut o = MemObservatory::new(cfg, 64, 1);
        for _ in 0..10 {
            o.on_touch(5, 0, 10, None);
        }
        o.on_touch(6, 0, 20, None);
        o.on_touch(5, 0, 1_500, None); // same page, next window → counted again
        let r = o.finish(2_000);
        assert_eq!(r.rows[0].ws_pages, 2);
        assert_eq!(r.rows[1].ws_pages, 1);
        assert_eq!(r.distinct_pages, 2);
        assert_eq!(r.ws_peak(), 2);
    }
}
