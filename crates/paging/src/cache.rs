//! The local-DRAM page cache with a unified page table.
//!
//! DiLOS' key paging optimisation — kept by Adios — is a *unified page
//! table*: all paging-related metadata is resolved with a single lookup.
//! [`PageCache`] mirrors that: `state[page]` is one flat array whose
//! entry encodes residency, in-flight status and the owning frame.
//!
//! Fetches are two-phase because RDMA READs are one-sided: the fault
//! handler must *reserve a frame first* (the NIC DMA-writes the page
//! into it), so allocation pressure is felt at fault time, not at
//! completion time. This is exactly why the paper's proactive reclaimer
//! matters: if no frame is free when a fault occurs, the handler pauses.

use desim::Rng;

/// Residency state of a page, resolved with a single lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Only the remote copy exists.
    NotResident,
    /// A fetch is in flight; a frame is already reserved.
    InFlight,
    /// Mapped in local DRAM.
    Resident,
}

/// Victim selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Second-chance CLOCK (default; approximates LRU like OSv/Linux).
    #[default]
    Clock,
    /// Strict FIFO over frames.
    Fifo,
    /// Exact LRU via an intrusive recency list (more bookkeeping per
    /// touch than CLOCK; the `ablation_eviction` study quantifies the
    /// trade-off).
    Lru,
}

const NO_FRAME: u32 = u32::MAX;
const NO_PAGE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: u64,
    referenced: bool,
    dirty: bool,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Accesses that found the page resident.
    pub hits: u64,
    /// Accesses that found the page absent (faults).
    pub misses: u64,
    /// Accesses that found a fetch already in flight (coalesced faults).
    pub coalesced: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Evictions that required a write-back.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Counter deltas since an `earlier` snapshot of the same cache —
    /// how the runtime scopes cache rates to the measurement window.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            evictions: self.evictions - earlier.evictions,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
        }
    }
}

/// The local page cache of the compute node.
///
/// # Examples
///
/// ```
/// use paging::{EvictionPolicy, PageCache, PageState};
///
/// let mut cache = PageCache::new(2, 100, EvictionPolicy::Clock);
/// assert!(cache.begin_fetch(7));      // fault: frame reserved
/// assert_eq!(cache.lookup(7), PageState::InFlight);
/// cache.complete_fetch(7);            // one-sided READ landed
/// cache.touch(7, false);              // now a hit
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct PageCache {
    /// Per-page state; indexes `frames` when resident or in flight.
    state: Vec<u8>,
    frame_of: Vec<u32>,
    frames: Vec<Frame>,
    free: Vec<u32>,
    clock_hand: usize,
    policy: EvictionPolicy,
    stats: CacheStats,
    /// Intrusive LRU list over frames (only maintained under
    /// `EvictionPolicy::Lru`): `lru_prev[f]`/`lru_next[f]` link resident
    /// frames from least- to most-recently used.
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    lru_head: u32,
    lru_tail: u32,
}

const S_NOT: u8 = 0;
const S_INFLIGHT: u8 = 1;
const S_RESIDENT: u8 = 2;

impl PageCache {
    /// Creates a cache of `capacity` frames over `total_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `total_pages`.
    pub fn new(capacity: usize, total_pages: u64, policy: EvictionPolicy) -> PageCache {
        assert!(capacity > 0, "cache needs at least one frame");
        assert!(
            capacity as u64 <= total_pages,
            "cache larger than working set: {capacity} frames > {total_pages} pages"
        );
        PageCache {
            state: vec![S_NOT; total_pages as usize],
            frame_of: vec![NO_FRAME; total_pages as usize],
            frames: vec![
                Frame {
                    page: NO_PAGE,
                    referenced: false,
                    dirty: false,
                };
                capacity
            ],
            free: (0..capacity as u32).rev().collect(),
            clock_hand: 0,
            policy,
            stats: CacheStats::default(),
            lru_prev: vec![NO_FRAME; capacity],
            lru_next: vec![NO_FRAME; capacity],
            lru_head: NO_FRAME,
            lru_tail: NO_FRAME,
        }
    }

    /// Unlinks `f` from the LRU list (no-op if not linked).
    fn lru_unlink(&mut self, f: u32) {
        let (p, n) = (self.lru_prev[f as usize], self.lru_next[f as usize]);
        if p != NO_FRAME {
            self.lru_next[p as usize] = n;
        } else if self.lru_head == f {
            self.lru_head = n;
        }
        if n != NO_FRAME {
            self.lru_prev[n as usize] = p;
        } else if self.lru_tail == f {
            self.lru_tail = p;
        }
        self.lru_prev[f as usize] = NO_FRAME;
        self.lru_next[f as usize] = NO_FRAME;
    }

    /// Pushes `f` at the MRU (tail) end.
    fn lru_push_mru(&mut self, f: u32) {
        self.lru_prev[f as usize] = self.lru_tail;
        self.lru_next[f as usize] = NO_FRAME;
        if self.lru_tail != NO_FRAME {
            self.lru_next[self.lru_tail as usize] = f;
        }
        self.lru_tail = f;
        if self.lru_head == NO_FRAME {
            self.lru_head = f;
        }
    }

    /// Total frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Frames on the free list.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Resident + in-flight pages.
    pub fn used_frames(&self) -> usize {
        self.capacity() - self.free_frames()
    }

    /// Pages in the working set.
    pub fn total_pages(&self) -> u64 {
        self.state.len() as u64
    }

    /// Returns the page's state (the unified single lookup).
    #[inline]
    pub fn lookup(&self, page: u64) -> PageState {
        match self.state[page as usize] {
            S_NOT => PageState::NotResident,
            S_INFLIGHT => PageState::InFlight,
            _ => PageState::Resident,
        }
    }

    /// Records an access to a resident page: sets the reference bit (and
    /// the dirty bit for writes) and counts a hit.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn touch(&mut self, page: u64, write: bool) {
        assert_eq!(
            self.state[page as usize], S_RESIDENT,
            "touch of non-resident page {page}"
        );
        let frame = self.frame_of[page as usize];
        let f = &mut self.frames[frame as usize];
        f.referenced = true;
        f.dirty |= write;
        self.stats.hits += 1;
        if self.policy == EvictionPolicy::Lru {
            self.lru_unlink(frame);
            self.lru_push_mru(frame);
        }
    }

    /// Counts a miss (fault) on `page` and reserves a frame for the
    /// incoming one-sided READ. Returns `false` if no frame is free —
    /// the fault handler must pause for the reclaimer.
    ///
    /// # Panics
    ///
    /// Panics if the page is already resident or in flight.
    pub fn begin_fetch(&mut self, page: u64) -> bool {
        assert_eq!(
            self.state[page as usize], S_NOT,
            "begin_fetch on page {page} already present"
        );
        let Some(frame) = self.free.pop() else {
            return false;
        };
        self.stats.misses += 1;
        self.state[page as usize] = S_INFLIGHT;
        self.frame_of[page as usize] = frame;
        self.frames[frame as usize] = Frame {
            page,
            referenced: true,
            dirty: false,
        };
        if self.policy == EvictionPolicy::Lru {
            self.lru_push_mru(frame);
        }
        true
    }

    /// Counts a fault that found the fetch already in flight (a second
    /// unithread faulting on the same page; it waits on the existing
    /// fetch instead of issuing a duplicate READ).
    pub fn note_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Completes the in-flight fetch of `page`: the page becomes
    /// resident in its reserved frame.
    ///
    /// # Panics
    ///
    /// Panics if no fetch is in flight for `page`.
    pub fn complete_fetch(&mut self, page: u64) {
        assert_eq!(
            self.state[page as usize], S_INFLIGHT,
            "complete_fetch without begin_fetch for page {page}"
        );
        self.state[page as usize] = S_RESIDENT;
    }

    /// Evicts one resident page and returns `(page, was_dirty)`, or
    /// `None` if nothing is evictable (all frames free or in flight).
    pub fn evict_one(&mut self) -> Option<(u64, bool)> {
        let n = self.frames.len();
        if self.used_frames() == 0 {
            return None;
        }
        if self.policy == EvictionPolicy::Lru {
            // Walk from the LRU end, skipping in-flight frames.
            let mut f = self.lru_head;
            while f != NO_FRAME {
                let page = self.frames[f as usize].page;
                if page != NO_PAGE && self.state[page as usize] != S_INFLIGHT {
                    let dirty = self.frames[f as usize].dirty;
                    self.lru_unlink(f);
                    self.frames[f as usize] = Frame {
                        page: NO_PAGE,
                        referenced: false,
                        dirty: false,
                    };
                    self.state[page as usize] = S_NOT;
                    self.frame_of[page as usize] = NO_FRAME;
                    self.free.push(f);
                    self.stats.evictions += 1;
                    if dirty {
                        self.stats.dirty_evictions += 1;
                    }
                    return Some((page, dirty));
                }
                f = self.lru_next[f as usize];
            }
            return None;
        }
        // Up to two sweeps: the first may only clear reference bits.
        for _ in 0..2 * n {
            let i = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            let f = &mut self.frames[i];
            if f.page == NO_PAGE || self.state[f.page as usize] == S_INFLIGHT {
                continue;
            }
            if self.policy == EvictionPolicy::Clock && f.referenced {
                f.referenced = false;
                continue;
            }
            let page = f.page;
            let dirty = f.dirty;
            f.page = NO_PAGE;
            f.referenced = false;
            f.dirty = false;
            self.state[page as usize] = S_NOT;
            self.frame_of[page as usize] = NO_FRAME;
            self.free.push(i as u32);
            self.stats.evictions += 1;
            if dirty {
                self.stats.dirty_evictions += 1;
            }
            return Some((page, dirty));
        }
        None
    }

    /// Pre-populates the cache with `n` distinct random pages (steady
    /// state for a uniform workload), leaving the rest of the frames
    /// free. Used to warm experiments so measurements start in steady
    /// state instead of paying a cold-start fetch storm.
    pub fn warm(&mut self, n: usize, rng: &mut Rng) {
        let n = n.min(self.capacity());
        let total = self.total_pages();
        let mut placed = 0;
        while placed < n {
            let page = rng.gen_range(total);
            if self.lookup(page) != PageState::NotResident {
                continue;
            }
            assert!(self.begin_fetch(page), "warm ran out of frames");
            self.complete_fetch(page);
            placed += 1;
        }
        // Warming is not a measured fetch.
        self.stats = CacheStats::default();
    }

    /// Pre-populates the cache with the specific `pages` (used by
    /// workloads whose steady-state cache is not uniform, e.g. after a
    /// sequential load phase).
    pub fn warm_with(&mut self, pages: impl IntoIterator<Item = u64>) {
        for page in pages {
            if self.free_frames() == 0 {
                break;
            }
            if self.lookup(page) != PageState::NotResident {
                continue;
            }
            assert!(self.begin_fetch(page));
            self.complete_fetch(page);
        }
        self.stats = CacheStats::default();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;

    fn cache(cap: usize, pages: u64) -> PageCache {
        PageCache::new(cap, pages, EvictionPolicy::Clock)
    }

    #[test]
    fn fetch_lifecycle() {
        let mut c = cache(2, 10);
        assert_eq!(c.lookup(3), PageState::NotResident);
        assert!(c.begin_fetch(3));
        assert_eq!(c.lookup(3), PageState::InFlight);
        assert_eq!(c.free_frames(), 1);
        c.complete_fetch(3);
        assert_eq!(c.lookup(3), PageState::Resident);
        c.touch(3, false);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn begin_fetch_fails_when_full() {
        let mut c = cache(1, 10);
        assert!(c.begin_fetch(0));
        assert!(!c.begin_fetch(1), "no frame free");
        c.complete_fetch(0);
        // Still full: frame 0 holds page 0.
        assert!(!c.begin_fetch(1));
        let (page, dirty) = c.evict_one().unwrap();
        assert_eq!((page, dirty), (0, false));
        assert!(c.begin_fetch(1));
    }

    #[test]
    fn dirty_bit_survives_to_eviction() {
        let mut c = cache(1, 10);
        c.begin_fetch(5);
        c.complete_fetch(5);
        c.touch(5, true);
        // CLOCK gives the referenced frame a second chance, then evicts.
        let (page, dirty) = c.evict_one().unwrap();
        assert_eq!((page, dirty), (5, true));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clock_prefers_unreferenced() {
        let mut c = cache(2, 10);
        for p in [0u64, 1] {
            c.begin_fetch(p);
            c.complete_fetch(p);
        }
        // Re-reference page 0 only; both were referenced at fetch, so one
        // full sweep clears bits, then page 1 (unreferenced) goes first
        // when page 0 is touched again between sweeps.
        c.evict_one(); // clears both reference bits, then evicts one
        let s = c.stats();
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn fifo_ignores_reference_bits() {
        let mut c = PageCache::new(2, 10, EvictionPolicy::Fifo);
        c.begin_fetch(7);
        c.complete_fetch(7);
        c.begin_fetch(8);
        c.complete_fetch(8);
        c.touch(7, false);
        let (page, _) = c.evict_one().unwrap();
        assert_eq!(page, 7, "FIFO evicts oldest regardless of references");
    }

    #[test]
    fn inflight_pages_are_not_evictable() {
        let mut c = cache(1, 10);
        c.begin_fetch(2);
        assert_eq!(c.evict_one(), None, "only an in-flight frame exists");
        c.complete_fetch(2);
        assert!(c.evict_one().is_some());
    }

    #[test]
    #[should_panic(expected = "touch of non-resident page")]
    fn touch_missing_panics() {
        let mut c = cache(1, 10);
        c.touch(0, false);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_fetch_panics() {
        let mut c = cache(2, 10);
        c.begin_fetch(1);
        c.begin_fetch(1);
    }

    #[test]
    fn warm_fills_requested_frames() {
        let mut rng = Rng::new(1);
        let mut c = cache(100, 1000);
        c.warm(80, &mut rng);
        assert_eq!(c.free_frames(), 20);
        assert_eq!(c.stats().misses, 0, "warming is not measured");
        let resident = (0..1000)
            .filter(|&p| c.lookup(p) == PageState::Resident)
            .count();
        assert_eq!(resident, 80);
    }

    #[test]
    fn warm_with_specific_pages() {
        let mut c = cache(4, 100);
        c.warm_with([10, 11, 10, 12]);
        assert_eq!(c.used_frames(), 3);
        assert_eq!(c.lookup(10), PageState::Resident);
        assert_eq!(c.lookup(13), PageState::NotResident);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PageCache::new(3, 100, EvictionPolicy::Lru);
        for p in [1u64, 2, 3] {
            assert!(c.begin_fetch(p));
            c.complete_fetch(p);
        }
        // Touch 1 and 3: page 2 becomes the LRU victim.
        c.touch(1, false);
        c.touch(3, false);
        assert_eq!(c.evict_one(), Some((2, false)));
        // Next victim: 1 (touched before 3).
        assert_eq!(c.evict_one(), Some((1, false)));
        assert_eq!(c.evict_one(), Some((3, false)));
        assert_eq!(c.evict_one(), None);
    }

    #[test]
    fn lru_skips_inflight_frames() {
        let mut c = PageCache::new(2, 100, EvictionPolicy::Lru);
        assert!(c.begin_fetch(5)); // in flight, oldest
        assert!(c.begin_fetch(6));
        c.complete_fetch(6);
        assert_eq!(c.evict_one(), Some((6, false)), "in-flight 5 is pinned");
        c.complete_fetch(5);
        assert_eq!(c.evict_one(), Some((5, false)));
    }

    #[test]
    fn lru_matches_reference_model() {
        use std::collections::VecDeque;
        let mut c = PageCache::new(4, 64, EvictionPolicy::Lru);
        let mut reference: VecDeque<u64> = VecDeque::new(); // LRU at front
        let mut rng = Rng::new(31);
        for _ in 0..2_000 {
            let page = rng.gen_range(64);
            match c.lookup(page) {
                PageState::Resident => {
                    c.touch(page, false);
                    reference.retain(|&p| p != page);
                    reference.push_back(page);
                }
                PageState::InFlight => unreachable!("completed immediately"),
                PageState::NotResident => {
                    if !c.begin_fetch(page) {
                        let victim = c.evict_one().map(|(p, _)| p);
                        assert_eq!(victim, reference.pop_front(), "LRU order diverged");
                        assert!(c.begin_fetch(page));
                    }
                    c.complete_fetch(page);
                    reference.push_back(page);
                }
            }
        }
    }

    /// Frame conservation: free + used == capacity under arbitrary
    /// operation sequences, and no page is ever double-mapped.
    #[test]
    fn frame_conservation() {
        let mut rng = Rng::new(0xCACE);
        for round in 0..48 {
            let policy = [
                EvictionPolicy::Clock,
                EvictionPolicy::Fifo,
                EvictionPolicy::Lru,
            ][round % 3];
            let mut c = PageCache::new(8, 50, policy);
            let ops = 1 + rng.gen_range(299) as usize;
            for _ in 0..ops {
                let page = rng.gen_range(50);
                let write = rng.gen_bool(0.5);
                match c.lookup(page) {
                    PageState::Resident => c.touch(page, write),
                    PageState::InFlight => c.complete_fetch(page),
                    PageState::NotResident => {
                        if !c.begin_fetch(page) {
                            // A cache full of in-flight fetches has no
                            // evictable victim; otherwise eviction must
                            // make room.
                            if c.evict_one().is_some() {
                                assert!(c.begin_fetch(page));
                            }
                        }
                    }
                }
                assert_eq!(c.free_frames() + c.used_frames(), c.capacity());
                // No double mapping: each frame's page is unique.
                let resident = (0..50)
                    .filter(|&p| c.lookup(p) != PageState::NotResident)
                    .count();
                assert!(resident <= c.capacity());
            }
        }
    }

    /// Evicting until empty returns every resident page exactly once.
    #[test]
    fn eviction_drains() {
        let mut rng = Rng::new(0xD2A1);
        for _ in 0..48 {
            let mut pages = std::collections::HashSet::new();
            let n = 1 + rng.gen_range(7) as usize;
            while pages.len() < n {
                pages.insert(rng.gen_range(100));
            }
            let mut c = cache(8, 100);
            for &p in &pages {
                assert!(c.begin_fetch(p));
                c.complete_fetch(p);
            }
            let mut evicted = Vec::new();
            while let Some((p, _)) = c.evict_one() {
                evicted.push(p);
            }
            evicted.sort_unstable();
            let mut expect: Vec<u64> = pages.into_iter().collect();
            expect.sort_unstable();
            assert_eq!(evicted, expect);
            assert_eq!(c.free_frames(), c.capacity());
        }
    }
}
