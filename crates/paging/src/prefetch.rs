//! Prefetching.
//!
//! Every system the paper evaluates overlaps a prefetching algorithm
//! with the page fetch (§2.3: "executing a prefetching algorithm is one
//! of the most common tasks chosen for overlapping"). Two mechanisms are
//! modelled:
//!
//! - [`SeqDetector`] — per-request sequential readahead: after two
//!   consecutive faults on adjacent pages, the prefetcher fetches a
//!   window ahead. This is what makes RocksDB SCAN and the IVF cluster
//!   walks cheap after the first few pages.
//! - A *speculative degree* (configured in the runtime): the fraction of
//!   faults on which the always-on readahead fetches one extra adjacent
//!   page even without a detected stream, modelling the OSv/DiLOS
//!   VMA readahead on random workloads (mostly wasted — it is why the
//!   measured RDMA byte rate per fault exceeds one page in Figures 2e
//!   and 7e).

/// Sequential-stream detector with exponential window growth.
#[derive(Debug, Clone)]
pub struct SeqDetector {
    last_page: u64,
    streak: u32,
    window: u32,
    max_window: u32,
}

impl Default for SeqDetector {
    fn default() -> Self {
        SeqDetector::new(8)
    }
}

impl SeqDetector {
    /// Creates a detector whose readahead window grows up to
    /// `max_window` pages.
    pub fn new(max_window: u32) -> SeqDetector {
        SeqDetector {
            last_page: u64::MAX,
            streak: 0,
            window: 1,
            max_window: max_window.max(1),
        }
    }

    /// Observes a faulting page; returns how many pages ahead to
    /// prefetch (0 = no stream detected).
    pub fn on_fault(&mut self, page: u64) -> u32 {
        if page == self.last_page.wrapping_add(1) {
            self.streak += 1;
        } else {
            self.streak = 0;
            self.window = 1;
        }
        self.last_page = page;
        if self.streak >= 2 {
            self.window = (self.window * 2).min(self.max_window);
            self.window
        } else {
            0
        }
    }

    /// Current streak length (consecutive adjacent faults).
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

/// Leap-style majority-trend prefetcher (Maruf & Chowdhury, ATC '20 —
/// cited by the paper as the prefetching state of the art).
///
/// Keeps a window of recent fault *deltas*; if a majority of the window
/// agrees on one delta (the "trend"), prefetch along that stride —
/// catching strided access patterns plain next-page readahead misses.
#[derive(Debug, Clone)]
pub struct LeapDetector {
    last_page: u64,
    deltas: Vec<i64>,
    next_slot: usize,
    window: u32,
    depth: u32,
    max_depth: u32,
}

impl LeapDetector {
    /// Creates a detector with a `window`-delta history and prefetch
    /// depth growing up to `max_depth` strides.
    pub fn new(window: u32, max_depth: u32) -> LeapDetector {
        LeapDetector {
            last_page: u64::MAX,
            deltas: Vec::with_capacity(window.max(2) as usize),
            next_slot: 0,
            window: window.max(2),
            depth: 1,
            max_depth: max_depth.max(1),
        }
    }

    /// Observes a faulting page; returns `(stride, count)`: prefetch
    /// pages `page + stride * i` for `i in 1..=count` (count 0 = no
    /// majority trend).
    pub fn on_fault(&mut self, page: u64) -> (i64, u32) {
        if self.last_page != u64::MAX {
            let delta = page.wrapping_sub(self.last_page) as i64;
            if self.deltas.len() < self.window as usize {
                self.deltas.push(delta);
            } else {
                self.deltas[self.next_slot] = delta;
                self.next_slot = (self.next_slot + 1) % self.window as usize;
            }
        }
        self.last_page = page;
        if self.deltas.len() < 2 {
            return (0, 0);
        }
        // Boyer–Moore majority vote over the delta window (what Leap
        // actually computes).
        let mut candidate = 0i64;
        let mut count = 0i32;
        for &d in &self.deltas {
            if count == 0 {
                candidate = d;
                count = 1;
            } else if d == candidate {
                count += 1;
            } else {
                count -= 1;
            }
        }
        let votes = self.deltas.iter().filter(|&&d| d == candidate).count();
        if candidate != 0 && votes * 2 > self.deltas.len() {
            self.depth = (self.depth * 2).min(self.max_depth);
            (candidate, self.depth)
        } else {
            self.depth = 1;
            (0, 0)
        }
    }
}

#[cfg(test)]
mod leap_tests {
    use super::*;

    #[test]
    fn detects_unit_stride() {
        let mut d = LeapDetector::new(4, 8);
        assert_eq!(d.on_fault(10).1, 0);
        let (_, n) = d.on_fault(11);
        let _ = n; // one delta: below majority threshold of 2
        let (s, n) = d.on_fault(12);
        assert_eq!(s, 1);
        assert!(n >= 1);
    }

    #[test]
    fn detects_large_stride_readahead_misses() {
        let mut d = LeapDetector::new(4, 8);
        let mut found = (0, 0);
        for i in 0..6u64 {
            found = d.on_fault(100 + i * 37);
        }
        assert_eq!(found.0, 37, "majority trend is the 37-page stride");
        assert!(found.1 >= 2);
    }

    #[test]
    fn random_faults_produce_no_trend() {
        let mut d = LeapDetector::new(8, 8);
        let mut fired = 0;
        for page in [5u64, 900, 17, 30_000, 44, 2, 777, 123, 9_999] {
            if d.on_fault(page).1 > 0 {
                fired += 1;
            }
        }
        assert_eq!(fired, 0, "no majority delta in random faults");
    }

    #[test]
    fn trend_break_resets_depth() {
        let mut d = LeapDetector::new(4, 16);
        for i in 0..8u64 {
            d.on_fault(i);
        }
        // Break the stream; depth resets once the majority flips away.
        for page in [1_000u64, 5_000, 20_000, 90_000, 123_456] {
            d.on_fault(page);
        }
        let (_, n) = d.on_fault(500_000);
        assert_eq!(n, 0);
    }

    #[test]
    fn negative_stride_detected() {
        let mut d = LeapDetector::new(4, 8);
        let mut found = (0, 0);
        for i in 0..6u64 {
            found = d.on_fault(10_000 - i * 3);
        }
        assert_eq!(found.0, -3, "descending scans have negative trends");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_faults_never_prefetch() {
        let mut d = SeqDetector::new(8);
        for page in [5u64, 900, 17, 3, 44] {
            assert_eq!(d.on_fault(page), 0);
        }
    }

    #[test]
    fn sequential_stream_grows_window() {
        let mut d = SeqDetector::new(8);
        assert_eq!(d.on_fault(10), 0);
        assert_eq!(d.on_fault(11), 0); // streak 1
        assert_eq!(d.on_fault(12), 2); // streak 2: window doubles to 2
        assert_eq!(d.on_fault(13), 4);
        assert_eq!(d.on_fault(14), 8);
        assert_eq!(d.on_fault(15), 8, "capped at max_window");
    }

    #[test]
    fn break_resets_window() {
        let mut d = SeqDetector::new(8);
        for p in 10..14u64 {
            d.on_fault(p);
        }
        assert!(d.streak() >= 2);
        assert_eq!(d.on_fault(500), 0);
        assert_eq!(d.streak(), 0);
        assert_eq!(d.on_fault(501), 0);
        assert_eq!(d.on_fault(502), 2, "window restarted small");
    }

    #[test]
    fn window_never_exceeds_cap() {
        let mut d = SeqDetector::new(4);
        let mut max_seen = 0;
        for p in 0..100u64 {
            max_seen = max_seen.max(d.on_fault(p));
        }
        assert_eq!(max_seen, 4);
    }
}
