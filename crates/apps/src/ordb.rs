//! RocksDB-like ordered store (§5.2, Figure 11).
//!
//! The paper runs RocksDB v8.3.2 with the PlainTable format in `mmap`
//! mode, "which makes RocksDB read data from remote memory through load
//! instructions and paging". PlainTable is a flat, fully in-memory
//! format: records in key order plus a lightweight index. This module
//! reproduces that shape:
//!
//! - a **sorted record log** of fixed-size `(key u64, value)` records;
//! - a **sparse index** with one `(first_key, rank)` entry per
//!   `GROUP`-record block, binary-searched on lookup (its upper levels
//!   are touched by every request and therefore stay cached, exactly
//!   like PlainTable's in-memory index under CLOCK);
//! - `GET` = sparse-index search + in-block binary search over direct
//!   offsets;
//! - `SCAN(n)` = `GET`-style positioning + a forward sweep over `n`
//!   records — sequential page touches that the readahead prefetcher
//!   detects (this is the long bimodal-tail request of Figure 11).

use desim::Rng;
use paging::trace::{CostModel, Trace};
use paging::{PagedArena, TraceRecorder};
use runtime::Workload;

use crate::hashidx::HashIndex;

/// Records per sparse-index block.
const GROUP: u64 = 16;

/// An ordered store over arena memory.
///
/// # Examples
///
/// ```
/// use apps::OrderedDb;
/// use paging::TraceRecorder;
///
/// let db = OrderedDb::build(1_000, 32);
/// let mut rec = TraceRecorder::default();
/// let start = OrderedDb::key_of_rank(10);
/// let rows = db.scan(start, 5, &mut rec);
/// assert_eq!(rows.len(), 5);
/// assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "key order");
/// ```
pub struct OrderedDb {
    arena: PagedArena,
    /// PlainTable's point-lookup hash index: key → rank.
    hash_index: HashIndex,
    index_base: u64,
    index_entries: u64,
    data_base: u64,
    num_keys: u64,
    record_bytes: u64,
    value_len: u32,
}

impl OrderedDb {
    /// Builds a store with `num_keys` sorted keys and `value_len`-byte
    /// values.
    pub fn build(num_keys: u64, value_len: u32) -> OrderedDb {
        let record_bytes = 8 + value_len as u64;
        let index_entries = num_keys.div_ceil(GROUP);
        let capacity = num_keys * record_bytes
            + index_entries * 16
            + (num_keys as f64 / 0.7 * 16.0) as u64 * 2
            + (8 << 20);
        let mut arena = PagedArena::new(capacity);
        let hash_index = HashIndex::build(&mut arena, num_keys);
        let index_base = arena.alloc(index_entries * 16, paging::PAGE_SIZE);
        let data_base = arena.alloc(num_keys * record_bytes, paging::PAGE_SIZE);
        let mut db = OrderedDb {
            arena,
            hash_index,
            index_base,
            index_entries,
            data_base,
            num_keys,
            record_bytes,
            value_len,
        };
        for rank in 0..num_keys {
            let key = Self::key_of_rank(rank);
            let addr = db.record_addr(rank);
            db.arena.poke_u64(addr, key);
            let value = Self::value_for(key, value_len);
            db.arena.poke_bytes(addr + 8, &value);
            db.hash_index.insert_untraced(&mut db.arena, key, rank);
            if rank % GROUP == 0 {
                let e = db.index_base + (rank / GROUP) * 16;
                db.arena.poke_u64(e, key);
                db.arena.poke_u64(e + 8, rank);
            }
        }
        db
    }

    /// The deterministic sorted key at `rank` (strided with jitter so
    /// keys are non-contiguous yet ordered, like hashed user keys).
    pub fn key_of_rank(rank: u64) -> u64 {
        rank * 1000 + (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54)
    }

    /// The deterministic value stored under `key`.
    pub fn value_for(key: u64, value_len: u32) -> Vec<u8> {
        (0..value_len)
            .map(|i| (key as u8) ^ (i as u8).wrapping_mul(31))
            .collect()
    }

    fn record_addr(&self, rank: u64) -> u64 {
        self.data_base + rank * self.record_bytes
    }

    /// Number of keys loaded.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Total pages of the working set.
    pub fn total_pages(&self) -> u64 {
        self.arena.total_pages()
    }

    /// Finds the rank of the first record with key ≥ `key` (recording
    /// all index and record touches).
    fn lower_bound(&self, key: u64, rec: &mut TraceRecorder) -> u64 {
        // Binary search the sparse index.
        let (mut lo, mut hi) = (0u64, self.index_entries);
        while lo < hi {
            let mid = (lo + hi) / 2;
            rec.compute_ns(4.0);
            let k = self.arena.read_u64(self.index_base + mid * 16, rec);
            if k <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let block = lo.saturating_sub(1);
        let start = block * GROUP;
        let end = (start + GROUP).min(self.num_keys);
        // Binary search within the block over direct offsets.
        let (mut lo, mut hi) = (start, end);
        while lo < hi {
            let mid = (lo + hi) / 2;
            rec.compute_ns(4.0);
            let k = self.arena.read_u64(self.record_addr(mid), rec);
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Point lookup through PlainTable's hash index (GETs never walk
    /// the sorted index; that is the SCAN positioning path).
    pub fn get(&self, key: u64, rec: &mut TraceRecorder) -> Option<Vec<u8>> {
        rec.compute_ns(40.0); // key hash + bucket arithmetic
        let rank = self.hash_index.get(&self.arena, key, rec)?;
        let addr = self.record_addr(rank);
        let k = self.arena.read_u64(addr, rec);
        if k != key {
            return None;
        }
        let v = self.arena.read_bytes(addr + 8, self.value_len as u64, rec);
        Some(v.to_vec())
    }

    /// Iterates `n` records starting at the first key ≥ `start_key`,
    /// returning `(key, value-checksum)` pairs (the paper's SCAN(100)
    /// reads the values referenced by a series of keys).
    pub fn scan(&self, start_key: u64, n: usize, rec: &mut TraceRecorder) -> Vec<(u64, u8)> {
        let mut rank = self.lower_bound(start_key, rec);
        let mut out = Vec::with_capacity(n);
        while out.len() < n && rank < self.num_keys {
            let addr = self.record_addr(rank);
            let k = self.arena.read_u64(addr, rec);
            let v = self.arena.read_bytes(addr + 8, self.value_len as u64, rec);
            // Iterator + value materialisation cost per record.
            rec.compute_ns(30.0);
            let checksum = v.iter().fold(0u8, |a, &b| a.wrapping_add(b));
            out.push((k, checksum));
            rank += 1;
        }
        out
    }
}

/// The paper's RocksDB workload: 99 % GET / 1 % SCAN(100), 1024 B
/// values (Figure 11's bimodal, high-dispersion service times).
pub struct RocksDbWorkload {
    db: OrderedDb,
    scan_fraction: f64,
    scan_len: usize,
}

impl RocksDbWorkload {
    /// Creates the 99/1 GET/SCAN(100) mix over a fresh store.
    pub fn new(num_keys: u64, value_len: u32) -> RocksDbWorkload {
        RocksDbWorkload {
            db: OrderedDb::build(num_keys, value_len),
            scan_fraction: 0.01,
            scan_len: 100,
        }
    }

    /// Overrides the mix (used by ablations).
    pub fn with_mix(mut self, scan_fraction: f64, scan_len: usize) -> RocksDbWorkload {
        self.scan_fraction = scan_fraction;
        self.scan_len = scan_len;
        self
    }

    /// Access to the underlying store.
    pub fn db(&self) -> &OrderedDb {
        &self.db
    }
}

/// Class index of GET requests.
pub const CLASS_GET: u16 = 0;
/// Class index of SCAN requests.
pub const CLASS_SCAN: u16 = 1;

impl Workload for RocksDbWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["GET", "SCAN"]
    }

    fn total_pages(&self) -> u64 {
        self.db.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        let mut rec = TraceRecorder::new(CostModel::default());
        rec.compute_ns(120.0); // request parse
        let rank = rng.gen_range(self.db.num_keys());
        let key = OrderedDb::key_of_rank(rank);
        if rng.gen_bool(self.scan_fraction) {
            let rows = self.db.scan(key, self.scan_len, &mut rec);
            debug_assert!(!rows.is_empty());
            rec.compute_ns(80.0); // reply with the series summary
            rec.finish(CLASS_SCAN, 64, 16 + 9 * rows.len() as u32)
        } else {
            let v = self.db.get(key, &mut rec);
            debug_assert!(v.is_some());
            rec.compute_ns(60.0);
            rec.finish(CLASS_GET, 64, 16 + v.map(|v| v.len() as u32).unwrap_or(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> TraceRecorder {
        TraceRecorder::new(CostModel::default())
    }

    #[test]
    fn get_every_key() {
        let db = OrderedDb::build(3_000, 64);
        for rank in [0u64, 1, 1500, 2998, 2999] {
            let key = OrderedDb::key_of_rank(rank);
            let mut rec = recorder();
            let v = db.get(key, &mut rec).expect("present");
            assert_eq!(v, OrderedDb::value_for(key, 64));
        }
    }

    #[test]
    fn get_missing_keys() {
        let db = OrderedDb::build(1_000, 64);
        let mut rec = recorder();
        assert_eq!(db.get(OrderedDb::key_of_rank(0) + 1, &mut rec), None);
        assert_eq!(db.get(u64::MAX, &mut rec), None);
    }

    #[test]
    fn scan_matches_btreemap_reference() {
        let n = 2_000u64;
        let db = OrderedDb::build(n, 32);
        let reference: std::collections::BTreeMap<u64, u8> = (0..n)
            .map(|r| {
                let k = OrderedDb::key_of_rank(r);
                let v = OrderedDb::value_for(k, 32);
                (k, v.iter().fold(0u8, |a, &b| a.wrapping_add(b)))
            })
            .collect();
        let mut rng = Rng::new(9);
        for _ in 0..50 {
            let start = rng.gen_range(n * 1000);
            let mut rec = recorder();
            let got = db.scan(start, 10, &mut rec);
            let want: Vec<(u64, u8)> = reference
                .range(start..)
                .take(10)
                .map(|(&k, &v)| (k, v))
                .collect();
            assert_eq!(got, want, "scan from {start}");
        }
    }

    #[test]
    fn scan_trace_is_sequential() {
        let db = OrderedDb::build(100_000, 1024);
        let mut rec = recorder();
        db.scan(OrderedDb::key_of_rank(50_000), 100, &mut rec);
        let t = rec.finish(CLASS_SCAN, 0, 0);
        // 100 records × 1032 B ≈ 25 pages, walked in order.
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        let data_pages = &pages[pages.len().saturating_sub(20)..];
        assert!(
            data_pages.windows(2).all(|w| w[1] == w[0] + 1),
            "data sweep must be sequential: {data_pages:?}"
        );
        assert!(t.accesses() > 20);
    }

    #[test]
    fn scan_is_much_heavier_than_get() {
        // §5.2: SCAN(100) service is 25–100× a GET's.
        let db = OrderedDb::build(100_000, 1024);
        let mut rec_g = recorder();
        db.get(OrderedDb::key_of_rank(123), &mut rec_g);
        let get = rec_g.finish(0, 0, 0);
        let mut rec_s = recorder();
        db.scan(OrderedDb::key_of_rank(123), 100, &mut rec_s);
        let scan = rec_s.finish(1, 0, 0);
        assert!(scan.compute_ns() > get.compute_ns() * 10);
        assert!(scan.accesses() > get.accesses() * 3);
    }

    #[test]
    fn workload_mix_ratio() {
        let mut w = RocksDbWorkload::new(10_000, 128);
        let mut rng = Rng::new(5);
        let mut scans = 0;
        for _ in 0..5_000 {
            let t = w.next_request(&mut rng);
            if t.class == CLASS_SCAN {
                scans += 1;
            }
        }
        // 1 % ± noise.
        assert!((20..=90).contains(&scans), "scans = {scans}");
    }
}
