//! Faiss-like IVF-Flat vector search (§5.2, Figure 13; Table 2).
//!
//! The paper runs Faiss v1.8.0 with `IndexIVFFlat` — "the fastest
//! indexing method but consumes a significant amount of memory" — over
//! the BIGANN dataset (128-dimensional SIFT byte vectors), with Adios'
//! MD scheduler replacing OpenMP for request-level parallelism.
//!
//! This module implements IVF-Flat for real:
//!
//! - a **coarse quantizer**: k-means centroids (Lloyd iterations over a
//!   training sample), stored in the arena and scanned by every query —
//!   the hot region that stays cached;
//! - **inverted lists**: per-centroid contiguous `[ids | vectors]`
//!   regions; probing a list is a sequential sweep, the access pattern
//!   that makes readahead effective;
//! - **search**: rank centroids by distance to the query, scan the
//!   `nprobe` nearest lists with exact L2 distances, keep a top-k heap.
//!
//! The dataset is BIGANN-shaped: byte vectors clustered around random
//! centers with Gaussian noise (see `DESIGN.md` §2 on dataset
//! substitution).

use std::collections::BinaryHeap;

use desim::Rng;
use paging::trace::{CostModel, Trace};
use paging::{PagedArena, TraceRecorder};
use runtime::Workload;

/// SIFT/BIGANN dimensionality.
pub const DIM: usize = 128;

/// Distance cost per scanned vector (SIMD u8 L2 over 128 dims).
const SCAN_NS_PER_VEC: f64 = 20.0;

/// Distance cost per centroid in the coarse quantizer (f32 L2).
const COARSE_NS_PER_CENTROID: f64 = 40.0;

/// An IVF-Flat index over arena memory.
pub struct IvfFlat {
    arena: PagedArena,
    nlist: usize,
    centroid_base: u64,
    /// Per-list `(ids_base, vecs_base, len)`.
    lists: Vec<(u64, u64, u64)>,
    num_vectors: u64,
}

fn l2_u8(a: &[u8], b: &[u8]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .sum()
}

fn l2_f32_u8(c: &[f32], v: &[u8]) -> f64 {
    c.iter()
        .zip(v)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

impl IvfFlat {
    /// Generates a BIGANN-shaped dataset of `num_vectors` byte vectors,
    /// trains `nlist` centroids with k-means and builds the index.
    pub fn build(num_vectors: u64, nlist: usize, seed: u64) -> IvfFlat {
        let mut rng = Rng::new(seed ^ 0xB16A);
        // Ground-truth cluster centers.
        let true_centers: Vec<Vec<u8>> = (0..nlist)
            .map(|_| (0..DIM).map(|_| rng.gen_range(256) as u8).collect())
            .collect();
        // Dataset: center + Gaussian noise.
        let vectors: Vec<Vec<u8>> = (0..num_vectors)
            .map(|_| {
                let c = &true_centers[rng.gen_range(nlist as u64) as usize];
                (0..DIM)
                    .map(|j| (c[j] as f64 + rng.normal(0.0, 8.0)).clamp(0.0, 255.0) as u8)
                    .collect()
            })
            .collect();

        // K-means (Lloyd) on a training sample, seeded from random
        // dataset points, as Faiss trains its coarse quantizer.
        let sample: Vec<&Vec<u8>> = (0..(num_vectors.min(20_000)))
            .map(|_| &vectors[rng.gen_range(num_vectors) as usize])
            .collect();
        let mut centroids: Vec<Vec<f32>> = (0..nlist)
            .map(|_| {
                vectors[rng.gen_range(num_vectors) as usize]
                    .iter()
                    .map(|&b| b as f32)
                    .collect()
            })
            .collect();
        for _iter in 0..4 {
            let mut sums = vec![vec![0f64; DIM]; nlist];
            let mut counts = vec![0u64; nlist];
            for v in &sample {
                let best = Self::nearest_centroid(&centroids, v);
                counts[best] += 1;
                for j in 0..DIM {
                    sums[best][j] += v[j] as f64;
                }
            }
            for (i, c) in centroids.iter_mut().enumerate() {
                if counts[i] > 0 {
                    for j in 0..DIM {
                        c[j] = (sums[i][j] / counts[i] as f64) as f32;
                    }
                }
            }
        }

        // Assign every vector to its list.
        let mut membership: Vec<Vec<u64>> = vec![Vec::new(); nlist];
        for (id, v) in vectors.iter().enumerate() {
            membership[Self::nearest_centroid(&centroids, v)].push(id as u64);
        }

        // Lay out the index in the arena.
        let capacity = (nlist * DIM * 4) as u64
            + num_vectors * (DIM as u64 + 8)
            + (nlist as u64 + 4) * paging::PAGE_SIZE * 2;
        let mut arena = PagedArena::new(capacity);
        let centroid_base = arena.alloc((nlist * DIM * 4) as u64, paging::PAGE_SIZE);
        for (i, c) in centroids.iter().enumerate() {
            for (j, &x) in c.iter().enumerate() {
                let off = centroid_base + (i * DIM + j) as u64 * 4;
                arena.poke_bytes(off, &x.to_le_bytes());
            }
        }
        let mut lists = Vec::with_capacity(nlist);
        for members in &membership {
            let len = members.len() as u64;
            let ids_base = arena.alloc((len * 8).max(8), 8);
            let vecs_base = arena.alloc((len * DIM as u64).max(8), paging::PAGE_SIZE);
            for (slot, &id) in members.iter().enumerate() {
                arena.poke_u64(ids_base + slot as u64 * 8, id);
                arena.poke_bytes(vecs_base + (slot * DIM) as u64, &vectors[id as usize]);
            }
            lists.push((ids_base, vecs_base, len));
        }
        IvfFlat {
            arena,
            nlist,
            centroid_base,
            lists,
            num_vectors,
        }
    }

    fn nearest_centroid(centroids: &[Vec<f32>], v: &[u8]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = l2_f32_u8(c, v);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Number of indexed vectors.
    pub fn num_vectors(&self) -> u64 {
        self.num_vectors
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Total pages of the working set.
    pub fn total_pages(&self) -> u64 {
        self.arena.total_pages()
    }

    /// Reads back an indexed vector by scanning its lists (test helper).
    pub fn vector(&self, id: u64) -> Option<Vec<u8>> {
        for &(ids_base, vecs_base, len) in &self.lists {
            for slot in 0..len {
                if self.arena.peek_u64(ids_base + slot * 8) == id {
                    return Some(
                        self.arena
                            .peek_bytes(vecs_base + slot * DIM as u64, DIM as u64)
                            .to_vec(),
                    );
                }
            }
        }
        None
    }

    /// kNN search: returns the `k` nearest `(id, distance)` pairs,
    /// probing the `nprobe` closest lists and recording every page
    /// touch.
    pub fn search(
        &self,
        query: &[u8],
        k: usize,
        nprobe: usize,
        rec: &mut TraceRecorder,
    ) -> Vec<(u64, u64)> {
        assert_eq!(query.len(), DIM, "query dimensionality");
        // Coarse quantizer: stream the centroid table and rank.
        let raw = self
            .arena
            .read_bytes(self.centroid_base, (self.nlist * DIM * 4) as u64, rec);
        rec.compute_ns(COARSE_NS_PER_CENTROID * self.nlist as f64);
        let mut ranked: Vec<(f64, usize)> = (0..self.nlist)
            .map(|i| {
                let mut d = 0.0f64;
                for (j, &q) in query.iter().enumerate() {
                    let off = (i * DIM + j) * 4;
                    let c = f32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
                    let diff = c as f64 - q as f64;
                    d += diff * diff;
                }
                (d, i)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Scan the nprobe nearest lists.
        let mut heap: BinaryHeap<(u64, u64)> = BinaryHeap::new(); // max-heap on distance
        for &(_, list) in ranked.iter().take(nprobe.min(self.nlist)) {
            let (ids_base, vecs_base, len) = self.lists[list];
            if len == 0 {
                continue;
            }
            let ids = self.arena.read_bytes(ids_base, len * 8, rec).to_vec();
            let vecs = self.arena.read_bytes(vecs_base, len * DIM as u64, rec);
            rec.compute_ns(SCAN_NS_PER_VEC * len as f64);
            for slot in 0..len as usize {
                let v = &vecs[slot * DIM..(slot + 1) * DIM];
                let d = l2_u8(query, v);
                let id = u64::from_le_bytes(ids[slot * 8..slot * 8 + 8].try_into().unwrap());
                if heap.len() < k {
                    heap.push((d, id));
                } else if let Some(&(worst, _)) = heap.peek() {
                    if d < worst {
                        heap.pop();
                        heap.push((d, id));
                    }
                }
            }
        }
        let mut out: Vec<(u64, u64)> = heap.into_iter().map(|(d, id)| (id, d)).collect();
        out.sort_by_key(|&(_, d)| d);
        out
    }

    /// Exact brute-force kNN over all lists (untraced; test oracle).
    pub fn brute_force(&self, query: &[u8], k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = Vec::new();
        for &(ids_base, vecs_base, len) in &self.lists {
            for slot in 0..len {
                let id = self.arena.peek_u64(ids_base + slot * 8);
                let v = self
                    .arena
                    .peek_bytes(vecs_base + slot * DIM as u64, DIM as u64);
                all.push((id, l2_u8(query, v)));
            }
        }
        all.sort_by_key(|&(_, d)| d);
        all.truncate(k);
        all
    }
}

/// The paper's Faiss workload: kNN queries over a BIGANN-style index.
pub struct FaissWorkload {
    index: IvfFlat,
    nprobe: usize,
    k: usize,
}

impl FaissWorkload {
    /// Builds the index and workload (`nprobe` controls the paper's
    /// accuracy/latency trade-off).
    pub fn new(num_vectors: u64, nlist: usize, nprobe: usize, seed: u64) -> FaissWorkload {
        FaissWorkload {
            index: IvfFlat::build(num_vectors, nlist, seed),
            nprobe,
            k: 10,
        }
    }

    /// Access to the index.
    pub fn index(&self) -> &IvfFlat {
        &self.index
    }

    /// Overrides the probe count (accuracy/latency trade-off).
    pub fn with_nprobe(mut self, nprobe: usize) -> FaissWorkload {
        self.nprobe = nprobe;
        self
    }

    /// Measures recall@k against exact brute force over `queries`
    /// perturbed dataset vectors (real computation, no simulation).
    pub fn measure_recall(&self, queries: usize, rng: &mut Rng) -> f64 {
        let mut hits = 0usize;
        for _ in 0..queries {
            let id = rng.gen_range(self.index.num_vectors());
            let base = self.index.vector(id).expect("indexed vector");
            let query: Vec<u8> = base
                .iter()
                .map(|&b| (b as f64 + rng.normal(0.0, 2.0)).clamp(0.0, 255.0) as u8)
                .collect();
            let mut rec = TraceRecorder::new(CostModel::default());
            let approx = self.index.search(&query, self.k, self.nprobe, &mut rec);
            let exact = self.index.brute_force(&query, self.k);
            let ids: std::collections::HashSet<u64> = approx.iter().map(|&(i, _)| i).collect();
            hits += exact.iter().filter(|&&(i, _)| ids.contains(&i)).count();
        }
        hits as f64 / (queries * self.k) as f64
    }
}

impl Workload for FaissWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["SEARCH"]
    }

    fn total_pages(&self) -> u64 {
        self.index.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        // Query: a perturbed dataset vector (BIGANN query vectors are
        // drawn from the same distribution as the base set).
        let id = rng.gen_range(self.index.num_vectors());
        let base = self.index.vector(id).expect("indexed vector");
        let query: Vec<u8> = base
            .iter()
            .map(|&b| (b as f64 + rng.normal(0.0, 2.0)).clamp(0.0, 255.0) as u8)
            .collect();
        let mut rec = TraceRecorder::new(CostModel::default());
        rec.compute_ns(300.0); // request parse + query decode
        let hits = self.index.search(&query, self.k, self.nprobe, &mut rec);
        debug_assert!(!hits.is_empty());
        rec.compute_ns(200.0); // reply with ids + distances
        rec.finish(0, 64 + DIM as u32, 16 + 16 * hits.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> IvfFlat {
        IvfFlat::build(2_000, 16, 7)
    }

    #[test]
    fn lists_partition_the_dataset() {
        let idx = small_index();
        let total: u64 = idx.lists.iter().map(|&(_, _, len)| len).sum();
        assert_eq!(total, 2_000);
    }

    #[test]
    fn exact_vector_is_its_own_nearest_neighbour() {
        let idx = small_index();
        let mut found = 0;
        for id in [0u64, 17, 500, 1999] {
            let v = idx.vector(id).unwrap();
            let mut rec = TraceRecorder::new(CostModel::default());
            let hits = idx.search(&v, 1, 4, &mut rec);
            if hits
                .first()
                .map(|&(i, d)| d == 0 && i == id)
                .unwrap_or(false)
            {
                found += 1;
            }
        }
        assert!(found >= 3, "recall@1 for exact queries: {found}/4");
    }

    #[test]
    fn search_matches_brute_force_with_full_probe() {
        let idx = small_index();
        let mut rng = Rng::new(3);
        for _ in 0..5 {
            let id = rng.gen_range(2_000);
            let q = idx.vector(id).unwrap();
            let mut rec = TraceRecorder::new(CostModel::default());
            let approx = idx.search(&q, 5, 16, &mut rec); // probe everything
            let exact = idx.brute_force(&q, 5);
            let approx_ids: std::collections::HashSet<u64> =
                approx.iter().map(|&(i, _)| i).collect();
            let hits = exact
                .iter()
                .filter(|&&(i, _)| approx_ids.contains(&i))
                .count();
            assert_eq!(hits, 5, "full probe must equal brute force");
        }
    }

    #[test]
    fn recall_reasonable_with_partial_probe() {
        let idx = IvfFlat::build(5_000, 32, 11);
        let mut rng = Rng::new(4);
        let mut recall_hits = 0;
        let trials = 20;
        for _ in 0..trials {
            let id = rng.gen_range(5_000);
            let q = idx.vector(id).unwrap();
            let mut rec = TraceRecorder::new(CostModel::default());
            let approx = idx.search(&q, 10, 8, &mut rec);
            let exact = idx.brute_force(&q, 10);
            let approx_ids: std::collections::HashSet<u64> =
                approx.iter().map(|&(i, _)| i).collect();
            recall_hits += exact
                .iter()
                .filter(|&&(i, _)| approx_ids.contains(&i))
                .count();
        }
        let recall = recall_hits as f64 / (trials * 10) as f64;
        assert!(recall >= 0.7, "recall@10 = {recall}");
    }

    #[test]
    fn search_trace_is_scan_heavy_and_sequential() {
        let idx = IvfFlat::build(20_000, 16, 5);
        let q = idx.vector(42).unwrap();
        let mut rec = TraceRecorder::new(CostModel::default());
        idx.search(&q, 10, 4, &mut rec);
        let t = rec.finish(0, 0, 0);
        // 4 lists × ~1250 vectors × 128 B ≈ 160 pages.
        assert!(t.accesses() > 60, "accesses = {}", t.accesses());
        assert!(
            t.compute_ns() > 50_000,
            "distance compute should dominate: {} ns",
            t.compute_ns()
        );
        // Within a list, the vector sweep is page-sequential.
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        let seq_pairs = pages.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            seq_pairs as f64 / pages.len() as f64 > 0.8,
            "sequential fraction too low"
        );
    }

    #[test]
    fn workload_traces_are_valid() {
        let mut w = FaissWorkload::new(3_000, 16, 4, 9);
        let mut rng = Rng::new(10);
        for _ in 0..5 {
            let t = w.next_request(&mut rng);
            assert_eq!(t.class, 0);
            assert!(t.accesses() > 10);
            assert!(t.reply_bytes > 16);
        }
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn wrong_dimension_panics() {
        let idx = small_index();
        let mut rec = TraceRecorder::new(CostModel::default());
        idx.search(&[0u8; 64], 1, 1, &mut rec);
    }
}
