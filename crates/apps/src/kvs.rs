//! Memcached-like key-value store (§5.2, Figure 10).
//!
//! The paper ports Memcached v1.6.21 onto Adios, replacing its
//! dispatcher/worker with Adios' and `mmap`ing its slabs into remote
//! memory. Here the equivalent store is a hash index over fixed-layout
//! items in a [`PagedArena`]:
//!
//! ```text
//! item: [ key_hash u64 | key_len u32 | val_len u32 | key bytes | value bytes ]
//! ```
//!
//! Keys are 50 bytes and values 128 B or 1024 B as in the paper's two
//! workloads. A GET probes the index, verifies the key bytes and
//! streams the value — two to three page touches over a multi-GB
//! working set, which is exactly the paper's Memcached fault profile.

use desim::Rng;
use paging::trace::{CostModel, Trace};
use paging::{PagedArena, TraceRecorder};
use runtime::Workload;

use crate::hashidx::HashIndex;

/// Key size used by the paper's Memcached workloads.
pub const KEY_BYTES: usize = 50;

const ITEM_HEADER: u64 = 16;

/// A Memcached-like store in arena memory.
///
/// # Examples
///
/// ```
/// use apps::Kvs;
/// use paging::TraceRecorder;
///
/// let kvs = Kvs::build(1_000, 128);
/// let mut rec = TraceRecorder::default();
/// let value = kvs.get(42, &mut rec).unwrap();
/// assert_eq!(value, Kvs::value_for(42, 128));
/// let trace = rec.finish(0, 64, 144);
/// assert!(trace.accesses() >= 2); // index probe + item pages
/// ```
pub struct Kvs {
    arena: PagedArena,
    index: HashIndex,
    num_keys: u64,
    value_len: u32,
}

fn key_bytes(key_id: u64) -> [u8; KEY_BYTES] {
    let mut k = [b'k'; KEY_BYTES];
    k[..20].copy_from_slice(format!("{key_id:020}").as_bytes());
    k
}

fn key_hash(key: &[u8]) -> u64 {
    // FNV-1a: what memcached-style stores actually compute per GET.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h | 1 // avoid the index sentinel
}

impl Kvs {
    /// Builds and populates a store with `num_keys` keys of
    /// `value_len`-byte values (values are a deterministic fill).
    pub fn build(num_keys: u64, value_len: u32) -> Kvs {
        let item_bytes = ITEM_HEADER + KEY_BYTES as u64 + value_len as u64;
        let index_bytes = (num_keys as f64 / 0.7 * 16.0) as u64 * 2;
        let capacity = num_keys * (item_bytes + 8) + index_bytes + (8 << 20);
        let mut arena = PagedArena::new(capacity);
        let index = HashIndex::build(&mut arena, num_keys);
        let mut kvs = Kvs {
            arena,
            index,
            num_keys,
            value_len,
        };
        for id in 0..num_keys {
            kvs.load_item(id);
        }
        kvs
    }

    fn load_item(&mut self, key_id: u64) {
        let key = key_bytes(key_id);
        let h = key_hash(&key);
        let len = ITEM_HEADER + KEY_BYTES as u64 + self.value_len as u64;
        let addr = self.arena.alloc(len, 8);
        self.arena.poke_u64(addr, h);
        let meta = ((KEY_BYTES as u64) << 32) | self.value_len as u64;
        self.arena.poke_u64(addr + 8, meta);
        self.arena.poke_bytes(addr + ITEM_HEADER, &key);
        let value = Self::value_for(key_id, self.value_len);
        self.arena
            .poke_bytes(addr + ITEM_HEADER + KEY_BYTES as u64, &value);
        self.index.insert_untraced(&mut self.arena, h, addr);
    }

    /// The deterministic value stored for `key_id`.
    pub fn value_for(key_id: u64, value_len: u32) -> Vec<u8> {
        (0..value_len)
            .map(|i| (key_id as u8).wrapping_add(i as u8))
            .collect()
    }

    /// Number of keys loaded.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Total pages of the working set.
    pub fn total_pages(&self) -> u64 {
        self.arena.total_pages()
    }

    /// SET by key id: overwrites the stored value in place (values are
    /// fixed-size, as in memcached slab classes), recording every page
    /// touch as a write.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not exactly the store's value size or the
    /// key was never loaded.
    pub fn set(&mut self, key_id: u64, value: &[u8], rec: &mut TraceRecorder) {
        assert_eq!(value.len(), self.value_len as usize, "slab value size");
        let key = key_bytes(key_id);
        rec.compute_ns(350.0);
        let h = key_hash(&key);
        let addr = self
            .index
            .get(&self.arena, h, rec)
            .expect("SET of unloaded key");
        // Verify + LRU bump like GET, then stream the new value in.
        let _ = self.arena.read_u64(addr, rec);
        rec.compute_ns(120.0);
        let key_len = KEY_BYTES as u64;
        self.arena
            .write_bytes(addr + ITEM_HEADER + key_len, value, rec);
    }

    /// GET by key id: returns the value, recording every page touch.
    ///
    /// Like real Memcached, a GET is not read-only: it bumps the item's
    /// LRU recency metadata, dirtying the item's header page. Under
    /// memory disaggregation those dirty pages must be written back on
    /// eviction — which is what saturates the RNIC's message rate and
    /// caps Memcached's throughput in the paper (§5.2: "the NIC could
    /// not match the host's processing power").
    pub fn get(&self, key_id: u64, rec: &mut TraceRecorder) -> Option<Vec<u8>> {
        let key = key_bytes(key_id);
        // Hashing 50 key bytes + memcached protocol/locking overhead.
        rec.compute_ns(350.0);
        let h = key_hash(&key);
        let addr = self.index.get(&self.arena, h, rec)?;
        let stored_hash = self.arena.read_u64(addr, rec);
        if stored_hash != h {
            return None;
        }
        let meta = self.arena.peek_u64(addr + 8);
        let key_len = meta >> 32;
        let val_len = meta & 0xFFFF_FFFF;
        let stored_key = self.arena.read_bytes(addr + ITEM_HEADER, key_len, rec);
        if stored_key != key {
            return None;
        }
        // Key comparison + LRU bump (a *write* to the item header).
        rec.compute_ns(120.0);
        rec.touch(addr / paging::PAGE_SIZE, true);
        let value = self
            .arena
            .read_bytes(addr + ITEM_HEADER + key_len, val_len, rec);
        Some(value.to_vec())
    }
}

/// Class index of GET requests.
pub const CLASS_GET: u16 = 0;
/// Class index of SET requests.
pub const CLASS_SET: u16 = 1;

/// The paper's Memcached workload (Figure 10): uniform-random keys,
/// one value size per experiment; GET-only by default, with an optional
/// SET fraction for write-mix studies.
pub struct MemcachedWorkload {
    kvs: Kvs,
    request_bytes: u32,
    set_fraction: f64,
    value_len: u32,
    /// Normalized Zipf CDF over key ranks (rank = key id, so hot keys
    /// cluster at low arena addresses); `None` keeps the paper's
    /// uniform key pick.
    zipf_cdf: Option<Vec<f64>>,
}

impl MemcachedWorkload {
    /// Creates the GET-only workload over a freshly built store.
    pub fn new(num_keys: u64, value_len: u32) -> MemcachedWorkload {
        MemcachedWorkload {
            kvs: Kvs::build(num_keys, value_len),
            request_bytes: 24 + KEY_BYTES as u32,
            set_fraction: 0.0,
            value_len,
            zipf_cdf: None,
        }
    }

    /// Adds a SET fraction to the mix.
    ///
    /// # Panics
    ///
    /// Panics if `set_fraction` is outside `[0, 1]`.
    pub fn with_sets(mut self, set_fraction: f64) -> MemcachedWorkload {
        assert!((0.0..=1.0).contains(&set_fraction));
        self.set_fraction = set_fraction;
        self
    }

    /// Switches the key pick from uniform to Zipf(`theta`): key `k` is
    /// drawn with probability ∝ 1/(k+1)^θ via inverse-CDF binary search
    /// over a table built once here (no extra RNG draws per request, so
    /// the request *shape* stays identical to the uniform workload).
    /// Rank equals key id, so hot keys sit on a handful of arena pages —
    /// the skew shows up directly as page-heat and (under range
    /// sharding) shard-heat imbalance. θ ≈ 0.99 is the YCSB default.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not finite and positive.
    pub fn with_zipf(mut self, theta: f64) -> MemcachedWorkload {
        assert!(theta.is_finite() && theta > 0.0, "zipf theta");
        let n = self.kvs.num_keys;
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        self.zipf_cdf = Some(cdf);
        self
    }

    /// Access to the underlying store (for correctness tests).
    pub fn kvs(&self) -> &Kvs {
        &self.kvs
    }
}

impl Workload for MemcachedWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["GET", "SET"]
    }

    fn total_pages(&self) -> u64 {
        self.kvs.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        let key_id = match &self.zipf_cdf {
            Some(cdf) => {
                let u = rng.gen_f64();
                (cdf.partition_point(|&c| c < u) as u64).min(self.kvs.num_keys - 1)
            }
            None => rng.gen_range(self.kvs.num_keys),
        };
        let mut rec = TraceRecorder::new(CostModel::default());
        // Request parse (memcached protocol header + key).
        rec.compute_ns(120.0);
        if self.set_fraction > 0.0 && rng.gen_bool(self.set_fraction) {
            let value = Kvs::value_for(rng.next_u64(), self.value_len);
            self.kvs.set(key_id, &value, &mut rec);
            rec.compute_ns(60.0);
            rec.finish(CLASS_SET, self.request_bytes + self.value_len, 16)
        } else {
            let value = self.kvs.get(key_id, &mut rec);
            debug_assert!(value.is_some(), "loaded key must be found");
            let reply = 16 + value.map(|v| v.len() as u32).unwrap_or(0);
            // Reply serialization.
            rec.compute_ns(60.0);
            rec.finish(CLASS_GET, self.request_bytes, reply)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_stored_values() {
        let kvs = Kvs::build(2_000, 128);
        for id in [0u64, 1, 999, 1999] {
            let mut rec = TraceRecorder::new(CostModel::default());
            let v = kvs.get(id, &mut rec).expect("present");
            assert_eq!(v, Kvs::value_for(id, 128));
        }
    }

    #[test]
    fn matches_reference_hashmap() {
        let kvs = Kvs::build(500, 64);
        let reference: std::collections::HashMap<u64, Vec<u8>> =
            (0..500).map(|id| (id, Kvs::value_for(id, 64))).collect();
        for id in 0..500u64 {
            let mut rec = TraceRecorder::new(CostModel::default());
            assert_eq!(kvs.get(id, &mut rec).as_ref(), reference.get(&id));
        }
    }

    #[test]
    fn missing_key_returns_none() {
        let kvs = Kvs::build(100, 128);
        let mut rec = TraceRecorder::new(CostModel::default());
        assert_eq!(kvs.get(100_000, &mut rec), None);
    }

    #[test]
    fn get_trace_touches_index_and_item() {
        let kvs = Kvs::build(50_000, 1024);
        let mut rec = TraceRecorder::new(CostModel::default());
        kvs.get(123, &mut rec).unwrap();
        let t = rec.finish(0, 0, 0);
        // Index probe page + item pages (header/key/value may straddle).
        assert!(t.accesses() >= 2, "trace: {:?}", t.steps);
        assert!(t.accesses() <= 6);
        assert!(t.compute_ns() > 0);
    }

    #[test]
    fn set_overwrites_value() {
        let mut kvs = Kvs::build(100, 64);
        let mut rec = TraceRecorder::new(CostModel::default());
        let new_value = vec![0xEE; 64];
        kvs.set(42, &new_value, &mut rec);
        let t = rec.finish(0, 0, 0);
        assert!(
            t.steps
                .iter()
                .any(|s| matches!(s.access, Some(a) if a.write)),
            "SET must dirty item pages"
        );
        let mut rec2 = TraceRecorder::new(CostModel::default());
        assert_eq!(kvs.get(42, &mut rec2).unwrap(), new_value);
        // Other keys untouched.
        let mut rec3 = TraceRecorder::new(CostModel::default());
        assert_eq!(kvs.get(41, &mut rec3).unwrap(), Kvs::value_for(41, 64));
    }

    #[test]
    #[should_panic(expected = "slab value size")]
    fn set_wrong_size_panics() {
        let mut kvs = Kvs::build(10, 64);
        let mut rec = TraceRecorder::new(CostModel::default());
        kvs.set(1, &[0u8; 32], &mut rec);
    }

    #[test]
    fn mixed_workload_produces_both_classes() {
        let mut w = MemcachedWorkload::new(5_000, 128).with_sets(0.3);
        let mut rng = Rng::new(8);
        let mut sets = 0;
        for _ in 0..2_000 {
            let t = w.next_request(&mut rng);
            if t.class == CLASS_SET {
                sets += 1;
                assert!(t.request_bytes > 128, "SET carries the value");
            }
        }
        assert!((450..=750).contains(&sets), "sets = {sets}");
    }

    #[test]
    fn workload_produces_valid_traces() {
        let mut w = MemcachedWorkload::new(10_000, 128);
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let t = w.next_request(&mut rng);
            assert_eq!(t.class, 0);
            assert!(t.reply_bytes >= 16 + 128);
            assert!(t.accesses() >= 2);
        }
    }

    #[test]
    fn zipf_concentrates_on_hot_keys() {
        let mut w = MemcachedWorkload::new(10_000, 128).with_zipf(0.99);
        let mut rng = Rng::new(11);
        let mut hot = 0u64;
        const DRAWS: u64 = 4_000;
        for _ in 0..DRAWS {
            let t = w.next_request(&mut rng);
            assert_eq!(t.class, CLASS_GET);
            // Recover the drawn key from the first value byte pattern is
            // fragile; instead re-draw the same distribution directly.
            let _ = t;
        }
        // Draw from the CDF directly: top 1% of ranks should carry far
        // more than 1% of the mass under θ=0.99 (≈35% for n=10k).
        let cdf = w.zipf_cdf.as_ref().unwrap();
        let mut rng2 = Rng::new(12);
        for _ in 0..DRAWS {
            let u = rng2.gen_f64();
            let k = cdf.partition_point(|&c| c < u) as u64;
            if k < 100 {
                hot += 1;
            }
        }
        let share = hot as f64 / DRAWS as f64;
        assert!(share > 0.2, "top-1% share {share} under Zipf(0.99)");
        // And the uniform workload stays near 1%.
        let mut hot_u = 0u64;
        let mut rng3 = Rng::new(13);
        for _ in 0..DRAWS {
            if rng3.gen_range(10_000) < 100 {
                hot_u += 1;
            }
        }
        assert!((hot_u as f64 / DRAWS as f64) < 0.05);
    }

    #[test]
    fn value_sizes_match_paper_workloads() {
        for vs in [128u32, 1024] {
            let kvs = Kvs::build(100, vs);
            let mut rec = TraceRecorder::new(CostModel::default());
            assert_eq!(kvs.get(5, &mut rec).unwrap().len(), vs as usize);
        }
    }
}
