//! TPC-C on the Silo engine (§5.2, Figure 12; Table 2).
//!
//! The paper drives Silo with "the TPC-C benchmark with a scaling
//! factor of 200 (about 20 GB total working set)… five request types in
//! the following distribution: New-Order (44.5 %), Payment (43.1 %),
//! Order-Status (4.1 %), Delivery (4.2 %), and Stock-Level (4.1 %)".
//!
//! This module implements the five transactions over [`Engine`] with
//! spec-level input generation: NURand key selection, 60 % of Payments
//! and Order-Status by customer *last name* through an in-arena
//! secondary index (middle-row rule), 15 % of Payments against a
//! remote warehouse's customer, and 1 % of New-Order lines supplied by
//! a remote warehouse. One simplification remains (documented in
//! `DESIGN.md`): the new-order queue is represented by per-district
//! `(no_oldest, next_o_id)` counters instead of a separate NEW-ORDER
//! table. Row paddings reproduce realistic row footprints so the page
//! working set matches the paper's profile.
//!
//! Concurrency: transactions are generated in worker-sized batches
//! that execute against a common snapshot and commit in sequence, so
//! contended rows (warehouse/district YTD, district `next_o_id`) cause
//! real OCC validation failures, aborts and re-executions.

use std::cell::Cell;
use std::collections::VecDeque;

use desim::Rng;
use paging::trace::{CostModel, Trace};
use paging::TraceRecorder;
use runtime::Workload;

use super::{Abort, Engine, TableId, TableSpec, Txn};

/// Table ids (fixed layout).
pub const WAREHOUSE: TableId = TableId(0);
/// District table.
pub const DISTRICT: TableId = TableId(1);
/// Customer table.
pub const CUSTOMER: TableId = TableId(2);
/// Item catalogue (shared across warehouses).
pub const ITEM: TableId = TableId(3);
/// Stock table.
pub const STOCK: TableId = TableId(4);
/// Orders table.
pub const ORDERS: TableId = TableId(5);
/// Order-line table.
pub const ORDER_LINE: TableId = TableId(6);
/// History append table.
pub const HISTORY: TableId = TableId(7);
/// Customer last-name secondary index (bucket rows per district).
pub const CUSTOMER_NAME: TableId = TableId(8);

// Field indices.
const W_YTD: usize = 0;
const W_TAX: usize = 1;
const D_YTD: usize = 0;
const D_TAX: usize = 1;
const D_NEXT_O: usize = 2;
const D_NO_OLDEST: usize = 3;
const C_BAL: usize = 0;
const C_YTD_PAY: usize = 1;
const C_PAY_CNT: usize = 2;
const C_DLV_CNT: usize = 3;
const C_LAST_O: usize = 4;
const C_DISC: usize = 5;
#[cfg_attr(not(test), allow(dead_code))]
const C_NAME: usize = 6;
const I_PRICE: usize = 0;
const S_QTY: usize = 0;
const S_YTD: usize = 1;
const S_CNT: usize = 2;
const O_C: usize = 0;
const O_CARRIER: usize = 2;
const O_OLCNT: usize = 3;
const OL_I: usize = 0;
const OL_AMT: usize = 2;
const OL_DLV: usize = 3;
/// Name-bucket row: [count, customer ids…].
const NB_COUNT: usize = 0;
/// Max customers recorded per name bucket.
const NB_CAP: usize = 15;

/// Per-district order-id key space.
const O_SPACE: u64 = 1 << 30;

#[inline]
fn i2u(v: i64) -> u64 {
    v as u64
}

#[inline]
fn u2i(v: u64) -> i64 {
    v as i64
}

/// Scale of the TPC-C deployment.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    /// Warehouses (paper: scale factor 200).
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_w: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_d: u64,
    /// Items in the catalogue (spec: 100 000).
    pub items: u64,
    /// Pre-loaded orders per district (spec: 3000).
    pub preload_orders: u64,
    /// Row headroom for runtime order inserts (global).
    pub extra_orders: u64,
}

impl TpccScale {
    /// A spec-shaped deployment scaled to `warehouses` (districts,
    /// customers, items at spec values).
    pub fn paper_like(warehouses: u64) -> TpccScale {
        TpccScale {
            warehouses,
            districts_per_w: 10,
            customers_per_d: 3000,
            items: 100_000,
            preload_orders: 3000,
            // Headroom for runtime New-Order inserts across a full
            // multi-point sweep (~180 K at the Full scale's grid).
            extra_orders: 450_000,
        }
    }

    /// A tiny deployment for unit tests.
    pub fn tiny() -> TpccScale {
        TpccScale {
            warehouses: 1,
            districts_per_w: 2,
            customers_per_d: 100,
            items: 500,
            preload_orders: 50,
            extra_orders: 20_000,
        }
    }

    fn districts_total(&self) -> u64 {
        self.warehouses * self.districts_per_w
    }

    /// Distinct customer last names per district (spec: 1000, clamped
    /// so every name is populated at tiny scales).
    pub fn name_count(&self) -> u64 {
        self.customers_per_d.min(1000)
    }
}

/// The TPC-C database: Silo engine + schema knowledge.
pub struct SiloDb {
    engine: Engine,
    scale: TpccScale,
    history_seq: Cell<u64>,
}

/// How a transaction picks its customer (spec: 60 % by last name via
/// the secondary index, 40 % by id).
#[derive(Debug, Clone, Copy)]
pub enum CustomerSel {
    /// Direct customer id.
    ById(u64),
    /// Last-name lookup: all matches, middle row (spec clause 2.5.2.2).
    ByName(u64),
}

/// Drawn parameters of one transaction (reused verbatim on retry, as
/// the spec requires).
#[derive(Debug, Clone)]
pub enum TxnParams {
    /// New-Order: 44.5 %.
    NewOrder {
        /// Home warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer.
        c: u64,
        /// `(item, quantity, supplying warehouse)` per line — 1 % of
        /// lines are supplied remotely when more than one warehouse
        /// exists.
        lines: Vec<(u64, u64, u64)>,
        /// 1 % of new-orders carry an invalid item and roll back.
        rollback: bool,
    },
    /// Payment: 43.1 %.
    Payment {
        /// Warehouse receiving the payment.
        w: u64,
        /// District.
        d: u64,
        /// The paying customer's warehouse (15 % remote when W > 1).
        c_w: u64,
        /// The paying customer's district.
        c_d: u64,
        /// Customer selection.
        c: CustomerSel,
        /// Amount in cents.
        amount: u64,
    },
    /// Order-Status: 4.1 %.
    OrderStatus {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Customer selection.
        c: CustomerSel,
    },
    /// Delivery: 4.2 %.
    Delivery {
        /// Warehouse.
        w: u64,
        /// Carrier id.
        carrier: u64,
    },
    /// Stock-Level: 4.1 %.
    StockLevel {
        /// Warehouse.
        w: u64,
        /// District.
        d: u64,
        /// Quantity threshold.
        threshold: u64,
    },
}

impl TxnParams {
    /// Request class index (order matches [`TpccWorkload::classes`]).
    pub fn class(&self) -> u16 {
        match self {
            TxnParams::NewOrder { .. } => 0,
            TxnParams::Payment { .. } => 1,
            TxnParams::OrderStatus { .. } => 2,
            TxnParams::Delivery { .. } => 3,
            TxnParams::StockLevel { .. } => 4,
        }
    }
}

/// TPC-C NURand.
fn nurand(rng: &mut Rng, a: u64, n: u64) -> u64 {
    const C: u64 = 123;
    ((rng.gen_range(a + 1) | rng.gen_range(n)) + C) % n
}

impl SiloDb {
    /// Builds and populates the database.
    pub fn build(scale: TpccScale, seed: u64) -> SiloDb {
        let dt = scale.districts_total();
        let customers = dt * scale.customers_per_d;
        let stock = scale.warehouses * scale.items;
        let preloaded_orders = dt * scale.preload_orders;
        let max_orders = preloaded_orders + scale.extra_orders;
        let max_lines = max_orders * 15;
        let specs = [
            // warehouse: [ytd, tax], 96 B rows.
            TableSpec {
                max_rows: scale.warehouses,
                fields: 2,
                pad: 72,
            },
            // district: [ytd, tax, next_o, no_oldest], 96 B.
            TableSpec {
                max_rows: dt,
                fields: 4,
                pad: 56,
            },
            // customer: 640 B rows (spec-sized footprint).
            TableSpec {
                max_rows: customers,
                fields: 7,
                pad: 576,
            },
            // item: [price], 88 B.
            TableSpec {
                max_rows: scale.items,
                fields: 1,
                pad: 72,
            },
            // stock: [qty, ytd, cnt], 328 B.
            TableSpec {
                max_rows: stock,
                fields: 3,
                pad: 296,
            },
            // orders: [c, entry, carrier, ol_cnt], 48 B.
            TableSpec {
                max_rows: max_orders,
                fields: 4,
                pad: 8,
            },
            // order_line: [i, qty, amount, dlv], 64 B.
            TableSpec {
                max_rows: max_lines,
                fields: 4,
                pad: 24,
            },
            // history: [w, d, amount, ts], 48 B.
            TableSpec {
                max_rows: customers + scale.extra_orders,
                fields: 4,
                pad: 8,
            },
            // customer-name buckets: [count, ids…], one row per
            // (district, last name).
            TableSpec {
                max_rows: dt * scale.name_count(),
                fields: 1 + NB_CAP,
                pad: 0,
            },
        ];
        let mut engine = Engine::build(&specs, 0);
        let mut rng = Rng::new(seed ^ 0x79CC);

        // Items.
        for i in 0..scale.items {
            let price = 100 + rng.gen_range(9_900);
            engine.load_row(ITEM, i, &[price]);
        }
        // Warehouses and districts: W_YTD = Σ D_YTD from the start
        // (TPC-C consistency condition 1).
        let d_ytd = 3_000_000u64; // $30,000.00 in cents (spec initial D_YTD)
        for w in 0..scale.warehouses {
            engine.load_row(
                WAREHOUSE,
                w,
                &[d_ytd * scale.districts_per_w, rng.gen_range(2000)],
            );
            for d in 0..scale.districts_per_w {
                let did = w * scale.districts_per_w + d;
                let next_o = scale.preload_orders;
                let no_oldest = scale.preload_orders * 7 / 10;
                engine.load_row(
                    DISTRICT,
                    did,
                    &[d_ytd, rng.gen_range(2000), next_o, no_oldest],
                );
            }
        }
        // Customers, plus the last-name secondary index (spec: names
        // are drawn from a fixed syllable table; `c % name_count` keeps
        // every name populated at every scale).
        let names = scale.name_count();
        for did in 0..dt {
            for name in 0..names {
                engine.load_row(CUSTOMER_NAME, did * names + name, &[0; 1 + NB_CAP]);
            }
            for c in 0..scale.customers_per_d {
                let key = did * scale.customers_per_d + c;
                let name = c % names;
                engine.load_row(
                    CUSTOMER,
                    key,
                    &[i2u(-10_00), 10_00, 1, 0, 0, rng.gen_range(5000), name],
                );
                let bkey = did * names + name;
                let count = engine.peek_field(CUSTOMER_NAME, bkey, NB_COUNT).unwrap();
                if (count as usize) < NB_CAP {
                    engine.poke_field(CUSTOMER_NAME, bkey, 1 + count as usize, c);
                    engine.poke_field(CUSTOMER_NAME, bkey, NB_COUNT, count + 1);
                }
            }
        }
        // Stock.
        for w in 0..scale.warehouses {
            for i in 0..scale.items {
                engine.load_row(STOCK, w * scale.items + i, &[10 + rng.gen_range(91), 0, 0]);
            }
        }
        // Pre-loaded orders + order lines; orders below `no_oldest` are
        // delivered (carrier set, delivery dates stamped).
        for did in 0..dt {
            let no_oldest = scale.preload_orders * 7 / 10;
            for o in 0..scale.preload_orders {
                let c = rng.gen_range(scale.customers_per_d);
                let ol_cnt = 5 + rng.gen_range(11);
                let delivered = o < no_oldest;
                let carrier = if delivered { 1 + rng.gen_range(10) } else { 0 };
                engine.load_row(ORDERS, did * O_SPACE + o, &[c, o, carrier, ol_cnt]);
                for ol in 0..ol_cnt {
                    let i = rng.gen_range(scale.items);
                    let qty = 5;
                    let amount = if delivered {
                        rng.gen_range(9_999) + 1
                    } else {
                        0
                    };
                    let dlv = if delivered { o } else { 0 };
                    engine.load_row(
                        ORDER_LINE,
                        (did * O_SPACE + o) * 16 + ol,
                        &[i, qty, amount, dlv],
                    );
                }
                // Track the customer's most recent order (load phase).
                let ckey = did * scale.customers_per_d + c;
                engine.poke_field(CUSTOMER, ckey, C_LAST_O, o);
            }
        }

        SiloDb {
            engine,
            scale,
            history_seq: Cell::new(0),
        }
    }

    /// The engine (tests and invariant checks).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (commit phase).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Deployment scale.
    pub fn scale(&self) -> TpccScale {
        self.scale
    }

    /// Draws one transaction's parameters with the paper's mix.
    pub fn draw(&self, rng: &mut Rng) -> TxnParams {
        let w = rng.gen_range(self.scale.warehouses);
        let roll = rng.gen_range(1000);
        if roll < 445 {
            let d = rng.gen_range(self.scale.districts_per_w);
            let c = nurand(rng, 1023, self.scale.customers_per_d);
            let ol_cnt = 5 + rng.gen_range(11);
            let lines = (0..ol_cnt)
                .map(|_| {
                    let item = nurand(rng, 8191, self.scale.items);
                    let qty = 1 + rng.gen_range(10);
                    // Spec 2.4.1.5: 1 % of lines are supplied remotely.
                    let supply_w = if self.scale.warehouses > 1 && rng.gen_bool(0.01) {
                        self.other_warehouse(w, rng)
                    } else {
                        w
                    };
                    (item, qty, supply_w)
                })
                .collect();
            TxnParams::NewOrder {
                w,
                d,
                c,
                lines,
                rollback: rng.gen_bool(0.01),
            }
        } else if roll < 876 {
            // Spec 2.5.1.2: 85 % home customer, 15 % remote warehouse.
            let (c_w, c_d) = if self.scale.warehouses > 1 && rng.gen_bool(0.15) {
                (
                    self.other_warehouse(w, rng),
                    rng.gen_range(self.scale.districts_per_w),
                )
            } else {
                (w, rng.gen_range(self.scale.districts_per_w))
            };
            TxnParams::Payment {
                w,
                d: rng.gen_range(self.scale.districts_per_w),
                c_w,
                c_d,
                c: self.draw_customer(rng),
                amount: 100 + rng.gen_range(500_000), // $1.00–$5,000.00 in cents
            }
        } else if roll < 917 {
            TxnParams::OrderStatus {
                w,
                d: rng.gen_range(self.scale.districts_per_w),
                c: self.draw_customer(rng),
            }
        } else if roll < 959 {
            TxnParams::Delivery {
                w,
                carrier: 1 + rng.gen_range(10),
            }
        } else {
            TxnParams::StockLevel {
                w,
                d: rng.gen_range(self.scale.districts_per_w),
                threshold: 10 + rng.gen_range(11),
            }
        }
    }

    fn did(&self, w: u64, d: u64) -> u64 {
        w * self.scale.districts_per_w + d
    }

    fn other_warehouse(&self, w: u64, rng: &mut Rng) -> u64 {
        let o = rng.gen_range(self.scale.warehouses - 1);
        if o >= w {
            o + 1
        } else {
            o
        }
    }

    /// Spec 2.5.1.2 / 2.6.1.2: 60 % by last name, 40 % by id.
    fn draw_customer(&self, rng: &mut Rng) -> CustomerSel {
        if rng.gen_bool(0.6) {
            CustomerSel::ByName(nurand(rng, 255, self.scale.name_count()))
        } else {
            CustomerSel::ById(nurand(rng, 1023, self.scale.customers_per_d))
        }
    }

    /// Resolves a customer selection to a customer id within `did`,
    /// recording the secondary-index touches; last-name lookups return
    /// the middle matching row (spec 2.5.2.2).
    fn resolve_customer(
        &self,
        did: u64,
        sel: CustomerSel,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) -> u64 {
        match sel {
            CustomerSel::ById(c) => c,
            CustomerSel::ByName(name) => {
                let bkey = did * self.scale.name_count() + name;
                let row = self
                    .engine
                    .read(CUSTOMER_NAME, bkey, txn, rec)
                    .expect("name bucket loaded");
                let count = self.engine.field(row, NB_COUNT, rec).max(1);
                // Sorting by first name then taking ceil(n/2) — the
                // bucket is insertion-ordered, which is id order here.
                let middle = (count as usize).div_ceil(2) - 1;
                rec.compute_ns(30.0 * count as f64); // sort-by-first-name
                self.engine.field(row, 1 + middle.min(NB_CAP - 1), rec)
            }
        }
    }

    fn ckey(&self, did: u64, c: u64) -> u64 {
        did * self.scale.customers_per_d + c
    }

    /// Executes a transaction against the current snapshot, buffering
    /// its effects in `txn`. Returns `false` for a user-initiated
    /// rollback (1 % of new-orders).
    pub fn execute(&self, p: &TxnParams, txn: &mut Txn, rec: &mut TraceRecorder) -> bool {
        match p {
            TxnParams::NewOrder {
                w,
                d,
                c,
                lines,
                rollback,
            } => self.exec_new_order(*w, *d, *c, lines, *rollback, txn, rec),
            TxnParams::Payment {
                w,
                d,
                c_w,
                c_d,
                c,
                amount,
            } => {
                self.exec_payment(*w, *d, *c_w, *c_d, *c, *amount, txn, rec);
                true
            }
            TxnParams::OrderStatus { w, d, c } => {
                self.exec_order_status(*w, *d, *c, txn, rec);
                true
            }
            TxnParams::Delivery { w, carrier } => {
                self.exec_delivery(*w, *carrier, txn, rec);
                true
            }
            TxnParams::StockLevel { w, d, threshold } => {
                self.exec_stock_level(*w, *d, *threshold, txn, rec);
                true
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_new_order(
        &self,
        w: u64,
        d: u64,
        c: u64,
        lines: &[(u64, u64, u64)],
        rollback: bool,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) -> bool {
        let e = &self.engine;
        let wrow = e.read(WAREHOUSE, w, txn, rec).expect("warehouse");
        let w_tax = e.field(wrow, W_TAX, rec);
        let did = self.did(w, d);
        let drow = e.read(DISTRICT, did, txn, rec).expect("district");
        let d_tax = e.field(drow, D_TAX, rec);
        let o_id = e.field(drow, D_NEXT_O, rec);
        e.write_field(txn, drow, D_NEXT_O, o_id + 1);
        let ckey = self.ckey(did, c);
        let crow = e.read(CUSTOMER, ckey, txn, rec).expect("customer");
        let disc = e.field(crow, C_DISC, rec);
        e.write_field(txn, crow, C_LAST_O, o_id);

        let mut total = 0u64;
        for (li, &(item, qty, supply_w)) in lines.iter().enumerate() {
            if rollback && li == lines.len() - 1 {
                // Unused item number: the spec's intentional rollback.
                rec.compute_ns(50.0);
                return false;
            }
            let irow = e.read(ITEM, item, txn, rec).expect("item");
            let price = e.field(irow, I_PRICE, rec);
            let skey = supply_w * self.scale.items + item;
            let srow = e.read(STOCK, skey, txn, rec).expect("stock");
            let s_qty = e.field(srow, S_QTY, rec);
            let new_qty = if s_qty > qty + 10 {
                s_qty - qty
            } else {
                s_qty + 91 - qty
            };
            e.write_field(txn, srow, S_QTY, new_qty);
            e.write_field(txn, srow, S_YTD, e.field(srow, S_YTD, rec) + qty);
            e.write_field(txn, srow, S_CNT, e.field(srow, S_CNT, rec) + 1);
            let amount = qty * price;
            total += amount;
            e.insert(
                txn,
                ORDER_LINE,
                (did * O_SPACE + o_id) * 16 + li as u64,
                vec![item, qty, amount, 0],
            );
            // Per-line application logic.
            rec.compute_ns(40.0);
        }
        let _ = (w_tax, d_tax, disc, total);
        e.insert(
            txn,
            ORDERS,
            did * O_SPACE + o_id,
            vec![c, o_id, 0, lines.len() as u64],
        );
        rec.compute_ns(120.0);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_payment(
        &self,
        w: u64,
        d: u64,
        c_w: u64,
        c_d: u64,
        c: CustomerSel,
        amount: u64,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) {
        let e = &self.engine;
        let wrow = e.read(WAREHOUSE, w, txn, rec).expect("warehouse");
        e.write_field(txn, wrow, W_YTD, e.field(wrow, W_YTD, rec) + amount);
        let did = self.did(w, d);
        let drow = e.read(DISTRICT, did, txn, rec).expect("district");
        e.write_field(txn, drow, D_YTD, e.field(drow, D_YTD, rec) + amount);
        // The paying customer may live in a remote warehouse (15 %).
        let c_did = self.did(c_w, c_d);
        let c = self.resolve_customer(c_did, c, txn, rec);
        let ckey = self.ckey(c_did, c);
        let crow = e.read(CUSTOMER, ckey, txn, rec).expect("customer");
        let bal = u2i(e.field(crow, C_BAL, rec));
        e.write_field(txn, crow, C_BAL, i2u(bal - amount as i64));
        e.write_field(txn, crow, C_YTD_PAY, e.field(crow, C_YTD_PAY, rec) + amount);
        e.write_field(txn, crow, C_PAY_CNT, e.field(crow, C_PAY_CNT, rec) + 1);
        let seq = self.history_seq.get();
        self.history_seq.set(seq + 1);
        e.insert(txn, HISTORY, seq, vec![w, d, amount, seq]);
        rec.compute_ns(100.0);
    }

    fn exec_order_status(
        &self,
        w: u64,
        d: u64,
        c: CustomerSel,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) {
        let e = &self.engine;
        let did = self.did(w, d);
        let c = self.resolve_customer(did, c, txn, rec);
        let ckey = self.ckey(did, c);
        let crow = e.read(CUSTOMER, ckey, txn, rec).expect("customer");
        let _bal = e.field(crow, C_BAL, rec);
        let last_o = e.field(crow, C_LAST_O, rec);
        if let Some(orow) = e.read(ORDERS, did * O_SPACE + last_o, txn, rec) {
            let ol_cnt = e.field(orow, O_OLCNT, rec);
            let _carrier = e.field(orow, O_CARRIER, rec);
            for ol in 0..ol_cnt {
                if let Some(lrow) = e.read(ORDER_LINE, (did * O_SPACE + last_o) * 16 + ol, txn, rec)
                {
                    let _ = e.field(lrow, OL_AMT, rec);
                }
            }
        }
        rec.compute_ns(80.0);
    }

    fn exec_delivery(&self, w: u64, carrier: u64, txn: &mut Txn, rec: &mut TraceRecorder) {
        let e = &self.engine;
        for d in 0..self.scale.districts_per_w {
            let did = self.did(w, d);
            let drow = e.read(DISTRICT, did, txn, rec).expect("district");
            let oldest = e.field(drow, D_NO_OLDEST, rec);
            let next_o = e.field(drow, D_NEXT_O, rec);
            if oldest >= next_o {
                continue; // no undelivered order in this district
            }
            e.write_field(txn, drow, D_NO_OLDEST, oldest + 1);
            let okey = did * O_SPACE + oldest;
            let Some(orow) = e.read(ORDERS, okey, txn, rec) else {
                continue;
            };
            let c = e.field(orow, O_C, rec);
            let ol_cnt = e.field(orow, O_OLCNT, rec);
            e.write_field(txn, orow, O_CARRIER, carrier);
            let mut sum = 0u64;
            for ol in 0..ol_cnt {
                if let Some(lrow) = e.read(ORDER_LINE, okey * 16 + ol, txn, rec) {
                    sum += e.field(lrow, OL_AMT, rec);
                    e.write_field(txn, lrow, OL_DLV, 1);
                }
            }
            let ckey = self.ckey(did, c);
            let crow = e.read(CUSTOMER, ckey, txn, rec).expect("customer");
            let bal = u2i(e.field(crow, C_BAL, rec));
            e.write_field(txn, crow, C_BAL, i2u(bal + sum as i64));
            e.write_field(txn, crow, C_DLV_CNT, e.field(crow, C_DLV_CNT, rec) + 1);
            rec.compute_ns(120.0);
        }
    }

    fn exec_stock_level(
        &self,
        w: u64,
        d: u64,
        threshold: u64,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) {
        let e = &self.engine;
        let did = self.did(w, d);
        let drow = e.read(DISTRICT, did, txn, rec).expect("district");
        let next_o = e.field(drow, D_NEXT_O, rec);
        let from = next_o.saturating_sub(20);
        let mut low = 0u64;
        for o in from..next_o {
            let okey = did * O_SPACE + o;
            let Some(orow) = e.read(ORDERS, okey, txn, rec) else {
                continue;
            };
            let ol_cnt = e.field(orow, O_OLCNT, rec);
            for ol in 0..ol_cnt {
                let Some(lrow) = e.read(ORDER_LINE, okey * 16 + ol, txn, rec) else {
                    continue;
                };
                let item = e.field(lrow, OL_I, rec);
                let srow = e
                    .read(STOCK, w * self.scale.items + item, txn, rec)
                    .expect("stock");
                if e.field(srow, S_QTY, rec) < threshold {
                    low += 1;
                }
                rec.compute_ns(15.0);
            }
        }
        let _ = low;
        rec.compute_ns(150.0);
    }
}

/// Per-class commit statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpccStats {
    /// Committed transactions per class.
    pub commits: [u64; 5],
    /// OCC retries (validation failures that re-executed).
    pub retries: u64,
    /// Transactions given up after the retry budget.
    pub failed: u64,
    /// User-initiated rollbacks (1 % of new-orders).
    pub user_aborts: u64,
}

/// The TPC-C workload adapter (implements [`Workload`]).
pub struct TpccWorkload {
    db: SiloDb,
    buffered: VecDeque<Trace>,
    batch: usize,
    stats: TpccStats,
}

impl TpccWorkload {
    /// Builds the database and the workload; `batch` mirrors the worker
    /// count (concurrent transactions in flight).
    pub fn new(scale: TpccScale, seed: u64) -> TpccWorkload {
        TpccWorkload {
            db: SiloDb::build(scale, seed),
            buffered: VecDeque::new(),
            batch: 8,
            stats: TpccStats::default(),
        }
    }

    /// The database (invariant checks).
    pub fn db(&self) -> &SiloDb {
        &self.db
    }

    /// Commit statistics.
    pub fn stats(&self) -> TpccStats {
        self.stats
    }

    fn generate_batch(&mut self, rng: &mut Rng) {
        let params: Vec<TxnParams> = (0..self.batch).map(|_| self.db.draw(rng)).collect();
        // Phase 1: execute all against the same snapshot.
        let mut staged = Vec::with_capacity(params.len());
        for p in &params {
            let mut rec = TraceRecorder::new(CostModel::default());
            rec.compute_ns(150.0); // request parse
            let mut txn = self.db.engine.begin();
            let ok = self.db.execute(p, &mut txn, &mut rec);
            staged.push((p.clone(), txn, rec, ok));
        }
        // Phase 2: commit in order; conflicting transactions abort and
        // re-execute against the updated state.
        for (p, txn, mut rec, ok) in staged {
            let class = p.class();
            if !ok {
                self.stats.user_aborts += 1;
                rec.compute_ns(80.0);
                self.buffered.push_back(rec.finish(class, 128, 32));
                continue;
            }
            let mut attempt = txn;
            let mut tries = 0;
            loop {
                match self.db.engine.commit(attempt, &mut rec) {
                    Ok(_) => {
                        self.stats.commits[class as usize] += 1;
                        break;
                    }
                    Err(Abort::ReadValidation) => {
                        tries += 1;
                        self.stats.retries += 1;
                        if tries > 5 {
                            self.stats.failed += 1;
                            break;
                        }
                        rec.compute_ns(120.0); // abort handling
                        let mut t = self.db.engine.begin();
                        let ok = self.db.execute(&p, &mut t, &mut rec);
                        if !ok {
                            self.stats.user_aborts += 1;
                            break;
                        }
                        attempt = t;
                    }
                }
            }
            rec.compute_ns(80.0); // reply serialization
            self.buffered.push_back(rec.finish(class, 128, 64));
        }
    }
}

impl Workload for TpccWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &[
            "NewOrder",
            "Payment",
            "OrderStatus",
            "Delivery",
            "StockLevel",
        ]
    }

    fn total_pages(&self) -> u64 {
        self.db.engine.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        if self.buffered.is_empty() {
            self.generate_batch(rng);
        }
        self.buffered.pop_front().expect("batch generated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_requests(w: &mut TpccWorkload, n: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        for _ in 0..n {
            let t = w.next_request(&mut rng);
            assert!(!t.steps.is_empty(), "every txn touches pages");
        }
    }

    #[test]
    fn warehouse_ytd_equals_sum_of_district_ytd() {
        // TPC-C consistency condition 1, maintained by Payment.
        let mut w = TpccWorkload::new(TpccScale::tiny(), 3);
        run_requests(&mut w, 600, 5);
        let db = w.db();
        let scale = db.scale();
        for wh in 0..scale.warehouses {
            let w_ytd = db.engine().peek_field(WAREHOUSE, wh, W_YTD).unwrap();
            let d_sum: u64 = (0..scale.districts_per_w)
                .map(|d| {
                    db.engine()
                        .peek_field(DISTRICT, wh * scale.districts_per_w + d, D_YTD)
                        .unwrap()
                })
                .sum();
            assert_eq!(w_ytd, d_sum, "warehouse {wh}");
        }
    }

    #[test]
    fn next_o_id_matches_committed_new_orders() {
        // TPC-C consistency condition 2 analogue.
        let mut w = TpccWorkload::new(TpccScale::tiny(), 4);
        run_requests(&mut w, 800, 6);
        let db = w.db();
        let scale = db.scale();
        let mut inserted = 0;
        for did in 0..scale.districts_total() {
            let next_o = db.engine().peek_field(DISTRICT, did, D_NEXT_O).unwrap();
            inserted += next_o - scale.preload_orders;
            // Every order id below next_o exists.
            for o in [0, next_o - 1] {
                assert!(
                    db.engine()
                        .peek_field(ORDERS, did * O_SPACE + o, O_OLCNT)
                        .is_some(),
                    "order {o} of district {did} missing"
                );
            }
        }
        assert_eq!(
            inserted,
            w.stats().commits[0],
            "district counters vs committed NewOrders"
        );
    }

    #[test]
    fn order_lines_match_ol_cnt() {
        let mut w = TpccWorkload::new(TpccScale::tiny(), 8);
        run_requests(&mut w, 400, 9);
        let db = w.db();
        let scale = db.scale();
        for did in 0..scale.districts_total() {
            let next_o = db.engine().peek_field(DISTRICT, did, D_NEXT_O).unwrap();
            // Check the most recent runtime-inserted order.
            if next_o > scale.preload_orders {
                let o = next_o - 1;
                let okey = did * O_SPACE + o;
                let ol_cnt = db.engine().peek_field(ORDERS, okey, O_OLCNT).unwrap();
                for ol in 0..ol_cnt {
                    assert!(
                        db.engine()
                            .peek_field(ORDER_LINE, okey * 16 + ol, OL_I)
                            .is_some(),
                        "order line {ol} of order {o} missing"
                    );
                }
                assert!(
                    db.engine()
                        .peek_field(ORDER_LINE, okey * 16 + ol_cnt, OL_I)
                        .is_none(),
                    "no extra lines"
                );
            }
        }
    }

    #[test]
    fn delivery_advances_oldest_pointer() {
        let mut w = TpccWorkload::new(TpccScale::tiny(), 10);
        run_requests(&mut w, 1000, 11);
        let db = w.db();
        let scale = db.scale();
        for did in 0..scale.districts_total() {
            let oldest = db.engine().peek_field(DISTRICT, did, D_NO_OLDEST).unwrap();
            let next_o = db.engine().peek_field(DISTRICT, did, D_NEXT_O).unwrap();
            assert!(oldest <= next_o, "district {did}: {oldest} > {next_o}");
            assert!(oldest >= scale.preload_orders * 7 / 10);
        }
    }

    #[test]
    fn contention_causes_occ_retries() {
        // One warehouse, payment-heavy mix, batch of 8: warehouse-row
        // conflicts are guaranteed.
        let mut w = TpccWorkload::new(TpccScale::tiny(), 12);
        run_requests(&mut w, 500, 13);
        assert!(w.stats().retries > 0, "expected OCC retries");
        assert_eq!(w.stats().failed, 0, "retry budget should suffice");
    }

    #[test]
    fn mix_matches_paper_distribution() {
        let db = SiloDb::build(TpccScale::tiny(), 14);
        let mut rng = Rng::new(15);
        let mut counts = [0u32; 5];
        for _ in 0..20_000 {
            counts[db.draw(&mut rng).class() as usize] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / 20_000.0;
        assert!((frac(0) - 0.445).abs() < 0.02, "NewOrder {}", frac(0));
        assert!((frac(1) - 0.431).abs() < 0.02, "Payment {}", frac(1));
        assert!((frac(2) - 0.041).abs() < 0.01);
        assert!((frac(3) - 0.042).abs() < 0.01);
        assert!((frac(4) - 0.041).abs() < 0.01);
    }

    #[test]
    fn traces_have_five_classes() {
        let mut w = TpccWorkload::new(TpccScale::tiny(), 16);
        let mut rng = Rng::new(17);
        let mut seen = [false; 5];
        for _ in 0..300 {
            let t = w.next_request(&mut rng);
            seen[t.class as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 4, "{seen:?}");
    }

    #[test]
    fn name_index_middle_row_rule() {
        let db = SiloDb::build(TpccScale::tiny(), 21);
        let names = db.scale().name_count();
        let mut rng = Rng::new(22);
        for did in 0..db.scale().districts_total() {
            for name in 0..names.min(20) {
                let mut txn = db.engine().begin();
                let mut rec = TraceRecorder::new(CostModel::default());
                let c = db.resolve_customer(did, CustomerSel::ByName(name), &mut txn, &mut rec);
                // The resolved customer must actually carry that name.
                let ckey = did * db.scale().customers_per_d + c;
                assert_eq!(
                    db.engine().peek_field(CUSTOMER, ckey, C_NAME),
                    Some(name),
                    "district {did} name {name} resolved to customer {c}"
                );
                // And the lookup touched the secondary index pages.
                let t = rec.finish(0, 0, 0);
                assert!(t.accesses() >= 1);
            }
        }
        let _ = rng.next_u64();
    }

    #[test]
    fn by_name_selection_draws_sixty_percent() {
        let db = SiloDb::build(TpccScale::tiny(), 23);
        let mut rng = Rng::new(24);
        let mut by_name = 0;
        let mut total = 0;
        for _ in 0..20_000 {
            match db.draw(&mut rng) {
                TxnParams::Payment { c, .. } | TxnParams::OrderStatus { c, .. } => {
                    total += 1;
                    if matches!(c, CustomerSel::ByName(_)) {
                        by_name += 1;
                    }
                }
                _ => {}
            }
        }
        let frac = by_name as f64 / total as f64;
        assert!((frac - 0.6).abs() < 0.03, "by-name fraction {frac}");
    }

    #[test]
    fn remote_lines_and_payments_appear_with_multiple_warehouses() {
        let scale = TpccScale {
            warehouses: 3,
            ..TpccScale::tiny()
        };
        let db = SiloDb::build(scale, 25);
        let mut rng = Rng::new(26);
        let mut remote_lines = 0u64;
        let mut remote_pay = 0u64;
        let mut lines_total = 0u64;
        let mut pay_total = 0u64;
        for _ in 0..30_000 {
            match db.draw(&mut rng) {
                TxnParams::NewOrder { w, lines, .. } => {
                    lines_total += lines.len() as u64;
                    remote_lines += lines.iter().filter(|&&(_, _, sw)| sw != w).count() as u64;
                }
                TxnParams::Payment { w, c_w, .. } => {
                    pay_total += 1;
                    if c_w != w {
                        remote_pay += 1;
                    }
                }
                _ => {}
            }
        }
        let line_frac = remote_lines as f64 / lines_total as f64;
        let pay_frac = remote_pay as f64 / pay_total as f64;
        assert!((line_frac - 0.01).abs() < 0.005, "remote lines {line_frac}");
        assert!((pay_frac - 0.15).abs() < 0.02, "remote payments {pay_frac}");
    }

    #[test]
    fn remote_payment_credits_the_receiving_warehouse() {
        // Consistency condition 1 must hold even with cross-warehouse
        // payments: the receiving warehouse's W_YTD/D_YTD move together
        // regardless of where the customer lives.
        let scale = TpccScale {
            warehouses: 2,
            ..TpccScale::tiny()
        };
        let mut w = TpccWorkload::new(scale, 27);
        run_requests(&mut w, 800, 28);
        let db = w.db();
        for wh in 0..2 {
            let w_ytd = db.engine().peek_field(WAREHOUSE, wh, W_YTD).unwrap();
            let d_sum: u64 = (0..db.scale().districts_per_w)
                .map(|d| {
                    db.engine()
                        .peek_field(DISTRICT, wh * db.scale().districts_per_w + d, D_YTD)
                        .unwrap()
                })
                .sum();
            assert_eq!(w_ytd, d_sum, "warehouse {wh}");
        }
    }

    #[test]
    fn user_rollbacks_happen() {
        let mut w = TpccWorkload::new(TpccScale::tiny(), 18);
        run_requests(&mut w, 3000, 19);
        assert!(w.stats().user_aborts > 0, "1 % of new-orders roll back");
    }
}
