//! Silo-style OCC engine (§5.2, Figure 12).
//!
//! The paper ports the Caladan-variant Silo — an in-memory OLTP engine
//! with optimistic concurrency control (SOSP '13) — onto its unithreads
//! and runs TPC-C. This module implements the Silo commit protocol over
//! arena-resident tables:
//!
//! - every row carries a **TID word**; transactions read optimistically
//!   and remember the TID of each row they saw;
//! - writes and inserts are **buffered** in the transaction until
//!   commit;
//! - commit **validates** the read set (every TID unchanged), then
//!   installs the write set with a fresh TID.
//!
//! Concurrency is emulated the way the simulator executes requests: the
//! TPC-C workload runs transactions in worker-sized batches that all
//! *execute* against the same snapshot and then *commit* in sequence —
//! so conflicting transactions really do fail validation, abort and
//! re-execute, with the retry's page touches appended to the request's
//! trace (see [`tpcc`]).

pub mod tpcc;

pub use tpcc::{SiloDb, TpccScale, TpccWorkload};

use paging::{PagedArena, TraceRecorder};

use crate::hashidx::HashIndex;

/// Identifies a table in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableId(pub usize);

/// A located row (address of its TID word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRef {
    addr: u64,
}

/// Why a transaction failed to commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// A row read by the transaction changed before commit.
    ReadValidation,
}

/// One table: an in-arena primary index plus a fixed-size-row region.
pub(crate) struct Table {
    index: HashIndex,
    row_bytes: u64,
    fields: usize,
    region_base: u64,
    cursor: u64,
    capacity_rows: u64,
}

/// Specification used to size a table at build time.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Maximum rows (preloaded + runtime inserts).
    pub max_rows: u64,
    /// `u64` fields per row (after the TID word).
    pub fields: usize,
    /// Padding bytes to reach a realistic row footprint.
    pub pad: u64,
}

impl TableSpec {
    fn row_bytes(&self) -> u64 {
        (8 + self.fields as u64 * 8 + self.pad).next_multiple_of(8)
    }
}

/// The storage engine: arena, tables and the global TID counter.
pub struct Engine {
    pub(crate) arena: PagedArena,
    tables: Vec<Table>,
    next_tid: u64,
    commits: u64,
    aborts: u64,
}

/// An in-flight transaction: read set, buffered writes and inserts.
#[derive(Default)]
pub struct Txn {
    reads: Vec<(u64, u64)>,
    writes: Vec<(u64, usize, u64)>,
    inserts: Vec<(TableId, u64, Vec<u64>)>,
}

impl Engine {
    /// Builds an engine with the given table specs (plus `extra_bytes`
    /// of arena slack for auxiliary regions).
    pub fn build(specs: &[TableSpec], extra_bytes: u64) -> Engine {
        let mut capacity = extra_bytes + (4 << 20);
        for s in specs {
            capacity += s.max_rows * s.row_bytes();
            capacity += (s.max_rows as f64 / 0.7 * 16.0) as u64 * 2 + paging::PAGE_SIZE;
        }
        let mut arena = PagedArena::new(capacity);
        let tables = specs
            .iter()
            .map(|s| {
                let index = HashIndex::build(&mut arena, s.max_rows);
                let region_base = arena.alloc(s.max_rows * s.row_bytes(), paging::PAGE_SIZE);
                Table {
                    index,
                    row_bytes: s.row_bytes(),
                    fields: s.fields,
                    region_base,
                    cursor: 0,
                    capacity_rows: s.max_rows,
                }
            })
            .collect();
        Engine {
            arena,
            tables,
            next_tid: 1,
            commits: 0,
            aborts: 0,
        }
    }

    /// Starts a transaction.
    pub fn begin(&self) -> Txn {
        Txn::default()
    }

    /// Loads a row at build time (untracked, unversioned beyond TID 0).
    ///
    /// # Panics
    ///
    /// Panics if the table region or field list overflows its spec.
    pub fn load_row(&mut self, t: TableId, key: u64, fields: &[u64]) {
        let addr = self.alloc_row(t, fields.len());
        self.arena.poke_u64(addr, 0); // TID 0
        for (i, &f) in fields.iter().enumerate() {
            self.arena.poke_u64(addr + 8 + i as u64 * 8, f);
        }
        let table = &self.tables[t.0];
        table.index.insert_untraced(&mut self.arena, key, addr);
    }

    fn alloc_row(&mut self, t: TableId, fields: usize) -> u64 {
        let table = &mut self.tables[t.0];
        assert!(fields <= table.fields, "row has too many fields");
        assert!(
            table.cursor < table.capacity_rows,
            "table {} out of row capacity",
            t.0
        );
        let addr = table.region_base + table.cursor * table.row_bytes;
        table.cursor += 1;
        addr
    }

    /// Optimistic read: locates the row, records its TID in the read
    /// set, and records the page touches.
    pub fn read(
        &self,
        t: TableId,
        key: u64,
        txn: &mut Txn,
        rec: &mut TraceRecorder,
    ) -> Option<RowRef> {
        let addr = self.tables[t.0].index.get(&self.arena, key, rec)?;
        let tid = self.arena.read_u64(addr, rec);
        txn.reads.push((addr, tid));
        Some(RowRef { addr })
    }

    /// Reads field `i` of a located row.
    pub fn field(&self, row: RowRef, i: usize, rec: &mut TraceRecorder) -> u64 {
        self.arena.read_u64(row.addr + 8 + i as u64 * 8, rec)
    }

    /// Reads a field without recording (consistency checks in tests).
    pub fn peek_field(&self, t: TableId, key: u64, i: usize) -> Option<u64> {
        let addr = self.tables[t.0].index.get_untraced(&self.arena, key)?;
        Some(self.arena.peek_u64(addr + 8 + i as u64 * 8))
    }

    /// Writes a field without recording or versioning (load phase).
    ///
    /// # Panics
    ///
    /// Panics if the row does not exist.
    pub fn poke_field(&mut self, t: TableId, key: u64, i: usize, value: u64) {
        let addr = self.tables[t.0]
            .index
            .get_untraced(&self.arena, key)
            .expect("poke_field of a missing row");
        self.arena.poke_u64(addr + 8 + i as u64 * 8, value);
    }

    /// Buffers a field write.
    pub fn write_field(&self, txn: &mut Txn, row: RowRef, i: usize, value: u64) {
        txn.writes.push((row.addr, i, value));
    }

    /// Buffers an insert.
    pub fn insert(&self, txn: &mut Txn, t: TableId, key: u64, fields: Vec<u64>) {
        txn.inserts.push((t, key, fields));
    }

    /// Silo commit: validate the read set, then install writes and
    /// inserts under a fresh TID (all touches recorded).
    pub fn commit(&mut self, txn: Txn, rec: &mut TraceRecorder) -> Result<u64, Abort> {
        // Validation phase: every read row must still carry the TID we
        // saw (Silo re-reads the TID words).
        for &(addr, tid) in &txn.reads {
            rec.compute_ns(4.0);
            if self.arena.read_u64(addr, rec) != tid {
                self.aborts += 1;
                return Err(Abort::ReadValidation);
            }
        }
        let tid = self.next_tid;
        self.next_tid += 1;
        // Install phase.
        for &(addr, i, value) in &txn.writes {
            self.arena.write_u64(addr + 8 + i as u64 * 8, value, rec);
            self.arena.write_u64(addr, tid, rec);
        }
        for (t, key, fields) in txn.inserts {
            let addr = self.alloc_row(t, fields.len());
            self.arena.write_u64(addr, tid, rec);
            for (i, &f) in fields.iter().enumerate() {
                self.arena.write_u64(addr + 8 + i as u64 * 8, f, rec);
            }
            let table = &self.tables[t.0];
            let index = table.index;
            index.insert(&mut self.arena, key, addr, rec);
        }
        self.commits += 1;
        Ok(tid)
    }

    /// Committed transactions so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Aborted commit attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Total pages of the arena (working set).
    pub fn total_pages(&self) -> u64 {
        self.arena.total_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paging::trace::CostModel;

    const T: TableId = TableId(0);

    fn engine() -> Engine {
        Engine::build(
            &[TableSpec {
                max_rows: 1000,
                fields: 3,
                pad: 16,
            }],
            0,
        )
    }

    fn rec() -> TraceRecorder {
        TraceRecorder::new(CostModel::default())
    }

    #[test]
    fn read_write_commit() {
        let mut e = engine();
        e.load_row(T, 1, &[10, 20, 30]);
        let mut txn = e.begin();
        let mut r = rec();
        let row = e.read(T, 1, &mut txn, &mut r).unwrap();
        assert_eq!(e.field(row, 1, &mut r), 20);
        e.write_field(&mut txn, row, 1, 21);
        e.commit(txn, &mut r).unwrap();
        assert_eq!(e.peek_field(T, 1, 1), Some(21));
        assert_eq!(e.commits(), 1);
    }

    #[test]
    fn conflicting_txn_aborts() {
        let mut e = engine();
        e.load_row(T, 7, &[100, 0, 0]);
        let mut r = rec();

        // Both transactions read the same snapshot.
        let mut t1 = e.begin();
        let row1 = e.read(T, 7, &mut t1, &mut r).unwrap();
        let v = e.field(row1, 0, &mut r);
        e.write_field(&mut t1, row1, 0, v + 1);

        let mut t2 = e.begin();
        let row2 = e.read(T, 7, &mut t2, &mut r).unwrap();
        let v2 = e.field(row2, 0, &mut r);
        e.write_field(&mut t2, row2, 0, v2 + 1);

        // t1 commits; t2 must fail read validation.
        e.commit(t1, &mut r).unwrap();
        assert_eq!(e.commit(t2, &mut r), Err(Abort::ReadValidation));
        assert_eq!(e.peek_field(T, 7, 0), Some(101), "lost update prevented");
        assert_eq!(e.aborts(), 1);
    }

    #[test]
    fn read_only_txn_validates_cheaply() {
        let mut e = engine();
        e.load_row(T, 2, &[5, 0, 0]);
        let mut r = rec();
        let mut t1 = e.begin();
        e.read(T, 2, &mut t1, &mut r).unwrap();
        assert!(e.commit(t1, &mut r).is_ok());
    }

    #[test]
    fn disjoint_txns_both_commit() {
        let mut e = engine();
        e.load_row(T, 1, &[1, 0, 0]);
        e.load_row(T, 2, &[2, 0, 0]);
        let mut r = rec();
        let mut t1 = e.begin();
        let r1 = e.read(T, 1, &mut t1, &mut r).unwrap();
        e.write_field(&mut t1, r1, 0, 11);
        let mut t2 = e.begin();
        let r2 = e.read(T, 2, &mut t2, &mut r).unwrap();
        e.write_field(&mut t2, r2, 0, 22);
        assert!(e.commit(t1, &mut r).is_ok());
        assert!(e.commit(t2, &mut r).is_ok());
        assert_eq!(e.peek_field(T, 1, 0), Some(11));
        assert_eq!(e.peek_field(T, 2, 0), Some(22));
    }

    #[test]
    fn inserts_visible_after_commit() {
        let mut e = engine();
        let mut r = rec();
        let mut t1 = e.begin();
        e.insert(&mut t1, T, 99, vec![7, 8, 9]);
        e.commit(t1, &mut r).unwrap();
        assert_eq!(e.peek_field(T, 99, 2), Some(9));
        // Readable by a later transaction.
        let mut t2 = e.begin();
        assert!(e.read(T, 99, &mut t2, &mut r).is_some());
    }

    #[test]
    fn tids_are_monotonic() {
        let mut e = engine();
        e.load_row(T, 1, &[0, 0, 0]);
        let mut r = rec();
        let mut last = 0;
        for _ in 0..5 {
            let mut t1 = e.begin();
            let row = e.read(T, 1, &mut t1, &mut r).unwrap();
            e.write_field(&mut t1, row, 0, 1);
            let tid = e.commit(t1, &mut r).unwrap();
            assert!(tid > last);
            last = tid;
        }
    }

    /// Serializability oracle: random read-modify-write transactions
    /// executed through OCC in batches must leave the same final state
    /// as replaying the *committed* transactions serially in commit
    /// order against a plain map.
    #[test]
    fn occ_matches_serial_oracle() {
        use desim::Rng;
        use paging::trace::CostModel;

        let mut e = Engine::build(
            &[TableSpec {
                max_rows: 64,
                fields: 1,
                pad: 0,
            }],
            0,
        );
        for k in 0..16u64 {
            e.load_row(T, k, &[k * 100]);
        }
        let mut oracle: std::collections::HashMap<u64, u64> =
            (0..16).map(|k| (k, k * 100)).collect();

        let mut rng = Rng::new(77);
        for _batch in 0..50 {
            // Build a batch of 4 txns against the same snapshot: each
            // reads two rows and writes src+dst (a transfer-like RMW).
            let mut staged = Vec::new();
            for _ in 0..4 {
                let src = rng.gen_range(16);
                // Distinct rows: a same-row transfer reads once and
                // buffers two conflicting writes, which is a different
                // program than the oracle's sequential -=1/+=1.
                let dst = (src + 1 + rng.gen_range(15)) % 16;
                let mut txn = e.begin();
                let mut r = TraceRecorder::new(CostModel::default());
                let rs = e.read(T, src, &mut txn, &mut r).unwrap();
                let rd = e.read(T, dst, &mut txn, &mut r).unwrap();
                let vs = e.field(rs, 0, &mut r);
                let vd = e.field(rd, 0, &mut r);
                e.write_field(&mut txn, rs, 0, vs.wrapping_sub(1));
                e.write_field(&mut txn, rd, 0, vd.wrapping_add(1));
                staged.push((txn, src, dst));
            }
            for (txn, src, dst) in staged {
                let mut r = TraceRecorder::new(CostModel::default());
                if e.commit(txn, &mut r).is_ok() {
                    // Apply the same semantic operation serially. Note:
                    // the oracle re-reads current values — valid because
                    // OCC only commits if the txn's reads were still
                    // current, making its effect equal to a serial RMW.
                    *oracle.get_mut(&src).unwrap() = oracle[&src].wrapping_sub(1);
                    *oracle.get_mut(&dst).unwrap() = oracle[&dst].wrapping_add(1);
                }
            }
        }
        for k in 0..16u64 {
            assert_eq!(
                e.peek_field(T, k, 0),
                Some(oracle[&k]),
                "row {k} diverged from the serial oracle"
            );
        }
        assert!(e.aborts() > 0, "contended batches must produce aborts");
    }

    #[test]
    fn write_skew_on_same_row_is_prevented() {
        // Classic OCC check: increment through read-modify-write from
        // two txns on the same snapshot never loses an update.
        let mut e = engine();
        e.load_row(T, 3, &[0, 0, 0]);
        let mut committed = 0;
        for round in 0..10 {
            let mut r = rec();
            let mut pair = Vec::new();
            for _ in 0..2 {
                let mut t = e.begin();
                let row = e.read(T, 3, &mut t, &mut r).unwrap();
                let v = e.field(row, 0, &mut r);
                e.write_field(&mut t, row, 0, v + 1);
                pair.push(t);
            }
            for t in pair {
                if e.commit(t, &mut r).is_ok() {
                    committed += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(e.peek_field(T, 3, 0), Some(committed));
    }
}
