//! An open-addressing hash index stored inside a [`PagedArena`].
//!
//! Maps `u64` keys to `u64` payloads (record addresses). Used as the
//! lookup structure of the KVS and as the per-table primary index of
//! the Silo engine — in a memory-disaggregated setting the index lives
//! in (pageable) remote memory too, so its probes must appear in the
//! access trace.
//!
//! Layout: a power-of-two slot array of 16-byte `(key, value)` pairs,
//! linear probing, `EMPTY_KEY` sentinel. Load factor is kept ≤ 0.7 by
//! construction (capacity is fixed at build time; the workloads insert
//! a known maximum number of keys).

use paging::{PagedArena, TraceRecorder};

/// Sentinel for an empty slot. Keys must not use this value.
pub const EMPTY_KEY: u64 = u64::MAX;

/// A fixed-capacity open-addressing hash index in arena memory.
#[derive(Debug, Clone, Copy)]
pub struct HashIndex {
    base: u64,
    mask: u64,
    slots: u64,
}

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: good avalanche for sequential keys.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HashIndex {
    /// Allocates an index able to hold `max_keys` at ≤ 0.7 load.
    ///
    /// # Panics
    ///
    /// Panics if the arena cannot hold the slot array.
    pub fn build(arena: &mut PagedArena, max_keys: u64) -> HashIndex {
        let want = ((max_keys as f64 / 0.7).ceil() as u64).max(16);
        let slots = want.next_power_of_two();
        let base = arena.alloc(slots * 16, paging::PAGE_SIZE);
        // Fill with the empty sentinel.
        for i in 0..slots {
            arena.poke_u64(base + i * 16, EMPTY_KEY);
        }
        HashIndex {
            base,
            mask: slots - 1,
            slots,
        }
    }

    /// Slot count (for sizing arithmetic).
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Inserts without trace recording (load phase).
    ///
    /// # Panics
    ///
    /// Panics if the table is full or `key == EMPTY_KEY`.
    pub fn insert_untraced(&self, arena: &mut PagedArena, key: u64, value: u64) {
        assert_ne!(key, EMPTY_KEY, "key collides with the empty sentinel");
        let mut i = mix(key) & self.mask;
        for _ in 0..=self.mask {
            let slot = self.base + i * 16;
            let k = arena.peek_u64(slot);
            if k == EMPTY_KEY || k == key {
                arena.poke_u64(slot, key);
                arena.poke_u64(slot + 8, value);
                return;
            }
            i = (i + 1) & self.mask;
        }
        panic!("hash index full");
    }

    /// Looks a key up, recording the probed pages.
    pub fn get(&self, arena: &PagedArena, key: u64, rec: &mut TraceRecorder) -> Option<u64> {
        let mut i = mix(key) & self.mask;
        for _ in 0..=self.mask {
            let slot = self.base + i * 16;
            let k = arena.read_u64(slot, rec);
            if k == key {
                // Same 16-byte pair: the value read is covered by the
                // slot's page touch.
                return Some(arena.peek_u64(slot + 8));
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Looks a key up without recording (load phase / invariants
    /// checking).
    pub fn get_untraced(&self, arena: &PagedArena, key: u64) -> Option<u64> {
        let mut i = mix(key) & self.mask;
        for _ in 0..=self.mask {
            let slot = self.base + i * 16;
            let k = arena.peek_u64(slot);
            if k == key {
                return Some(arena.peek_u64(slot + 8));
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Inserts with trace recording (runtime inserts, e.g. TPC-C
    /// new-order rows).
    ///
    /// # Panics
    ///
    /// Panics if the table is full or `key == EMPTY_KEY`.
    pub fn insert(&self, arena: &mut PagedArena, key: u64, value: u64, rec: &mut TraceRecorder) {
        assert_ne!(key, EMPTY_KEY, "key collides with the empty sentinel");
        let mut i = mix(key) & self.mask;
        for _ in 0..=self.mask {
            let slot = self.base + i * 16;
            let k = arena.read_u64(slot, rec);
            if k == EMPTY_KEY || k == key {
                arena.write_u64(slot, key, rec);
                arena.poke_u64(slot + 8, value);
                // The value write shares the slot's page; record it as a
                // write touch for dirtiness.
                rec.touch(slot / paging::PAGE_SIZE, true);
                return;
            }
            i = (i + 1) & self.mask;
        }
        panic!("hash index full");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paging::trace::CostModel;

    fn arena() -> PagedArena {
        PagedArena::new(8 << 20)
    }

    fn rec() -> TraceRecorder {
        TraceRecorder::new(CostModel::default())
    }

    #[test]
    fn insert_then_get() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 1000);
        for k in 0..1000u64 {
            idx.insert_untraced(&mut a, k, k * 7);
        }
        for k in 0..1000u64 {
            let mut r = rec();
            assert_eq!(idx.get(&a, k, &mut r), Some(k * 7));
        }
        let mut r = rec();
        assert_eq!(idx.get(&a, 5000, &mut r), None);
    }

    #[test]
    fn overwrite_updates_value() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 10);
        idx.insert_untraced(&mut a, 3, 30);
        idx.insert_untraced(&mut a, 3, 31);
        let mut r = rec();
        assert_eq!(idx.get(&a, 3, &mut r), Some(31));
    }

    #[test]
    fn traced_insert_records_write() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 10);
        let mut r = rec();
        idx.insert(&mut a, 9, 99, &mut r);
        let t = r.finish(0, 0, 0);
        assert!(t
            .steps
            .iter()
            .any(|s| matches!(s.access, Some(acc) if acc.write)));
        let mut r2 = rec();
        assert_eq!(idx.get(&a, 9, &mut r2), Some(99));
    }

    #[test]
    fn get_records_probe_pages() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 100_000);
        idx.insert_untraced(&mut a, 42, 1);
        let mut r = rec();
        idx.get(&a, 42, &mut r);
        let t = r.finish(0, 0, 0);
        assert!(t.accesses() >= 1, "probe must touch the slot page");
    }

    #[test]
    fn dense_fill_up_to_capacity() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 5000);
        for k in 0..5000u64 {
            idx.insert_untraced(&mut a, k.wrapping_mul(0x9E37_79B9) + 1, k);
        }
        // All retrievable.
        let mut hits = 0;
        for k in 0..5000u64 {
            let mut r = rec();
            if idx.get(&a, k.wrapping_mul(0x9E37_79B9) + 1, &mut r) == Some(k) {
                hits += 1;
            }
        }
        assert_eq!(hits, 5000);
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn sentinel_key_rejected() {
        let mut a = arena();
        let idx = HashIndex::build(&mut a, 10);
        idx.insert_untraced(&mut a, EMPTY_KEY, 0);
    }
}
