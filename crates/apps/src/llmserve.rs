//! LLM KV-cache serving over disaggregated memory (the tenant plane's
//! fifth app).
//!
//! Prefill/decode-disaggregated LLM inference (Splitwise-style) is the
//! workload that stresses a remote-memory tier hardest: **prefill**
//! streams a prompt's KV-cache blocks into memory — long *sequential*
//! page writes — while **decode** generates one token at a time,
//! re-reading the session's recent KV pages and appending a little new
//! state. The two phases collide on the page cache: prefill floods it
//! with dirty sequential pages (writeback pressure, readahead-friendly
//! faults), decode wants the session's working window resident
//! (latency-critical, mostly reads).
//!
//! The model here is deliberately page-granular: one 4 KB page holds a
//! few tokens' worth of KV state across all layers, so a
//! few-hundred-token prompt is a few dozen pages of prefill and each
//! decode step walks the last `decode_window` pages of its session
//! (sliding-window attention over the recent context) before appending
//! to the tail page. All state lives in a [`PagedArena`] session table,
//! and every value written is checksummable — decode *verifies* the KV
//! bytes it reads, so the app is a real data structure, not a synthetic
//! touch pattern.

use desim::Rng;
use paging::trace::{CostModel, Trace};
use paging::{PagedArena, TraceRecorder, PAGE_SIZE};
use runtime::Workload;

/// Per-page KV fill value: deterministic in (session, page, epoch) so
/// decode can verify what prefill wrote.
fn kv_word(session: u64, page: u64, epoch: u64) -> u64 {
    (session
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(page)
        .wrapping_mul(0x2545_F491_4F6C_DD1D))
        ^ epoch
}

/// One serving session: a contiguous KV-cache region plus its fill
/// state.
#[derive(Debug, Clone)]
struct Session {
    /// Arena address of the session's KV region (page-aligned).
    kv_base: u64,
    /// Pages of KV state currently valid.
    filled: u32,
    /// Decode steps taken since the last appended page.
    tokens_in_page: u32,
    /// Bumped on every prefill, so stale KV values are detectable.
    epoch: u64,
}

/// The KV-cache store: a session table over arena memory.
pub struct LlmServe {
    arena: PagedArena,
    sessions: Vec<Session>,
    max_context_pages: u32,
    /// Decode steps that fit in one KV page before a new page is
    /// appended (a handful of tokens per 4 KB across all layers).
    tokens_per_page: u32,
}

impl LlmServe {
    /// Builds a store with `num_sessions` sessions of up to
    /// `max_context_pages` KV pages each. Sessions start empty; the
    /// first request against a session is necessarily a prefill.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn build(num_sessions: u32, max_context_pages: u32) -> LlmServe {
        assert!(num_sessions > 0 && max_context_pages > 0);
        let capacity = num_sessions as u64 * max_context_pages as u64 * PAGE_SIZE + (1 << 20);
        let mut arena = PagedArena::new(capacity);
        let sessions = (0..num_sessions)
            .map(|_| Session {
                kv_base: arena.alloc(max_context_pages as u64 * PAGE_SIZE, PAGE_SIZE),
                filled: 0,
                tokens_in_page: 0,
                epoch: 0,
            })
            .collect();
        LlmServe {
            arena,
            sessions,
            max_context_pages,
            tokens_per_page: 4,
        }
    }

    /// Number of sessions in the table.
    pub fn num_sessions(&self) -> u32 {
        self.sessions.len() as u32
    }

    /// Total pages of the working set.
    pub fn total_pages(&self) -> u64 {
        self.arena.total_pages()
    }

    /// KV pages currently valid for `session`.
    pub fn context_pages(&self, session: u32) -> u32 {
        self.sessions[session as usize].filled
    }

    /// Prefill: replace the session's context with a `prompt_pages`-page
    /// prompt — one long sequential run of KV page writes, the access
    /// shape that makes readahead prefetchers shine and floods the
    /// cache with dirty pages.
    ///
    /// # Panics
    ///
    /// Panics if the prompt exceeds the session's context capacity.
    pub fn prefill(&mut self, session: u32, prompt_pages: u32, rec: &mut TraceRecorder) {
        assert!(
            (1..=self.max_context_pages).contains(&prompt_pages),
            "prompt must fit the context window"
        );
        let s = &mut self.sessions[session as usize];
        s.epoch += 1;
        s.filled = prompt_pages;
        s.tokens_in_page = 0;
        let (base, epoch) = (s.kv_base, s.epoch);
        for p in 0..prompt_pages as u64 {
            // Chunked attention + MLP over the page's tokens, then the
            // KV block lands in (remote) memory.
            rec.compute_ns(500.0);
            self.arena
                .write_u64(base + p * PAGE_SIZE, kv_word(session as u64, p, epoch), rec);
        }
    }

    /// Decode one token: walk the last `window` KV pages of the session
    /// (verifying their fill words), then append this token's KV state
    /// to the tail page — growing the context by a page every
    /// `tokens_per_page` steps. Returns the number of KV pages read.
    ///
    /// # Panics
    ///
    /// Panics if the session has no context (prefill first) or a KV
    /// word fails verification (arena corruption).
    pub fn decode(&mut self, session: u32, window: u32, rec: &mut TraceRecorder) -> u32 {
        let s = &self.sessions[session as usize];
        assert!(s.filled > 0, "decode needs a prefilled session");
        let (base, filled, epoch) = (s.kv_base, s.filled as u64, s.epoch);
        let start = filled.saturating_sub(window as u64);
        // Sampled attention over the recent context window.
        for p in start..filled {
            let got = self.arena.read_u64(base + p * PAGE_SIZE, rec);
            assert_eq!(
                got,
                kv_word(session as u64, p, epoch),
                "KV page {p} of session {session} corrupted"
            );
            rec.compute_ns(90.0);
        }
        // Output projection + sampling for the generated token.
        rec.compute_ns(400.0);
        let s = &mut self.sessions[session as usize];
        s.tokens_in_page += 1;
        if s.tokens_in_page >= self.tokens_per_page && s.filled < self.max_context_pages {
            // The tail page is full: append a fresh KV page.
            s.tokens_in_page = 0;
            s.filled += 1;
            let p = s.filled as u64 - 1;
            self.arena
                .write_u64(base + p * PAGE_SIZE, kv_word(session as u64, p, epoch), rec);
        } else {
            // Append into the current tail page (dirties it).
            let p = s.filled as u64 - 1;
            let got = self.arena.read_u64(base + p * PAGE_SIZE, rec);
            self.arena.write_u64(base + p * PAGE_SIZE, got, rec);
        }
        (filled - start) as u32
    }
}

/// Class index of prefill requests.
pub const CLASS_PREFILL: u16 = 0;
/// Class index of decode requests.
pub const CLASS_DECODE: u16 = 1;

/// The serving workload: a stream of prefill and decode requests over a
/// session table, with a configurable prefill:decode mix and prompt
/// lengths.
///
/// Sessions whose context is empty (fresh) or full (at capacity) take a
/// prefill; otherwise the mix fraction decides. Decode dominates a
/// steady-state serving loop — the default 6 % prefill share matches a
/// few hundred generated tokens per prompt.
pub struct LlmServeWorkload {
    llm: LlmServe,
    prefill_fraction: f64,
    min_prompt_pages: u32,
    max_prompt_pages: u32,
    decode_window: u32,
}

impl LlmServeWorkload {
    /// Creates the workload: `num_sessions` sessions of up to
    /// `max_context_pages`, prompts drawn uniformly from
    /// `[max_context_pages / 4, max_context_pages / 2]`.
    pub fn new(num_sessions: u32, max_context_pages: u32) -> LlmServeWorkload {
        LlmServeWorkload {
            llm: LlmServe::build(num_sessions, max_context_pages),
            prefill_fraction: 0.06,
            min_prompt_pages: (max_context_pages / 4).max(1),
            max_prompt_pages: (max_context_pages / 2).max(1),
            decode_window: 8,
        }
    }

    /// Builder: the steady-state prefill share of the request mix.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn with_mix(mut self, prefill_fraction: f64) -> LlmServeWorkload {
        assert!((0.0..=1.0).contains(&prefill_fraction));
        self.prefill_fraction = prefill_fraction;
        self
    }

    /// Builder: prompt-length range in KV pages.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the context window.
    pub fn with_prompt_pages(mut self, min: u32, max: u32) -> LlmServeWorkload {
        assert!(min >= 1 && min <= max && max <= self.llm.max_context_pages);
        self.min_prompt_pages = min;
        self.max_prompt_pages = max;
        self
    }

    /// Builder: KV pages each decode step re-reads.
    pub fn with_decode_window(mut self, window: u32) -> LlmServeWorkload {
        assert!(window >= 1);
        self.decode_window = window;
        self
    }

    /// Access to the underlying store (for correctness tests).
    pub fn llm(&self) -> &LlmServe {
        &self.llm
    }
}

impl Workload for LlmServeWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["prefill", "decode"]
    }

    fn total_pages(&self) -> u64 {
        self.llm.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        let session = rng.gen_range(self.llm.num_sessions() as u64) as u32;
        let filled = self.llm.context_pages(session);
        let full = filled >= self.llm.max_context_pages;
        // Fresh or exhausted sessions must prefill; otherwise the mix
        // decides. The bool is drawn unconditionally so the rng stream
        // does not depend on session state.
        let want_prefill = rng.gen_bool(self.prefill_fraction);
        let mut rec = TraceRecorder::new(CostModel::default());
        // Request parse + session-table lookup.
        rec.compute_ns(150.0);
        if filled == 0 || full || want_prefill {
            let span = (self.max_prompt_pages - self.min_prompt_pages + 1) as u64;
            let prompt = self.min_prompt_pages + rng.gen_range(span) as u32;
            self.llm.prefill(session, prompt, &mut rec);
            // The prompt tokens ride in on the request.
            let request = 64 + prompt * 256;
            rec.finish(CLASS_PREFILL, request, 24)
        } else {
            self.llm.decode(session, self.decode_window, &mut rec);
            // One generated token out.
            rec.finish(CLASS_DECODE, 48, 24)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_writes_sequential_pages() {
        let mut llm = LlmServe::build(4, 64);
        let mut rec = TraceRecorder::new(CostModel::default());
        llm.prefill(2, 16, &mut rec);
        let t = rec.finish(CLASS_PREFILL, 0, 0);
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        assert_eq!(pages.len(), 16);
        assert!(
            pages.windows(2).all(|p| p[1] == p[0] + 1),
            "prefill must be sequential: {pages:?}"
        );
        assert!(
            t.steps
                .iter()
                .all(|s| s.access.map(|a| a.write).unwrap_or(true)),
            "prefill is write-only"
        );
        assert_eq!(llm.context_pages(2), 16);
    }

    #[test]
    fn decode_walks_the_recent_window_and_grows_context() {
        let mut llm = LlmServe::build(2, 64);
        let mut rec = TraceRecorder::new(CostModel::default());
        llm.prefill(0, 20, &mut rec);
        // Window smaller than context: reads the last 8 pages.
        let mut rec = TraceRecorder::new(CostModel::default());
        let read = llm.decode(0, 8, &mut rec);
        assert_eq!(read, 8);
        let t = rec.finish(CLASS_DECODE, 0, 0);
        assert!(t
            .steps
            .iter()
            .any(|s| matches!(s.access, Some(a) if a.write)));
        // tokens_per_page decodes append one page.
        let before = llm.context_pages(0);
        for _ in 0..4 {
            let mut rec = TraceRecorder::new(CostModel::default());
            llm.decode(0, 8, &mut rec);
        }
        assert_eq!(llm.context_pages(0), before + 1);
    }

    #[test]
    fn decode_verifies_what_prefill_wrote() {
        // The assert inside decode *is* the check; drive a long mixed
        // sequence and let it verify every read word.
        let mut llm = LlmServe::build(3, 32);
        for s in 0..3 {
            let mut rec = TraceRecorder::new(CostModel::default());
            llm.prefill(s, 10 + s, &mut rec);
        }
        for i in 0..200u32 {
            let s = i % 3;
            let mut rec = TraceRecorder::new(CostModel::default());
            if i % 37 == 0 {
                llm.prefill(s, 8, &mut rec);
            } else {
                llm.decode(s, 6, &mut rec);
            }
        }
    }

    #[test]
    #[should_panic(expected = "prefilled")]
    fn decode_without_prefill_panics() {
        let mut llm = LlmServe::build(1, 8);
        let mut rec = TraceRecorder::new(CostModel::default());
        llm.decode(0, 4, &mut rec);
    }

    #[test]
    fn workload_mix_is_mostly_decode() {
        let mut w = LlmServeWorkload::new(64, 32).with_mix(0.05);
        let mut rng = Rng::new(17);
        let (mut prefills, mut decodes) = (0u32, 0u32);
        for _ in 0..4_000 {
            let t = w.next_request(&mut rng);
            match t.class {
                CLASS_PREFILL => {
                    prefills += 1;
                    assert!(t.request_bytes > 1_000, "prompt rides in the request");
                    assert!(t.accesses() >= w.min_prompt_pages as usize);
                }
                CLASS_DECODE => {
                    decodes += 1;
                    assert!(t.accesses() >= 2, "window reads + KV append");
                }
                other => panic!("unknown class {other}"),
            }
        }
        // Warmup prefills (64 fresh sessions) + ~5 % steady share +
        // capacity-forced resets.
        assert!(
            decodes > prefills * 4,
            "{prefills} prefills / {decodes} decodes"
        );
        assert!(prefills > 64, "every session needs its warmup prefill");
    }

    #[test]
    fn workload_is_deterministic() {
        let run = |seed: u64| {
            let mut w = LlmServeWorkload::new(16, 16);
            let mut rng = Rng::new(seed);
            (0..500)
                .map(|_| {
                    let t = w.next_request(&mut rng);
                    (t.class, t.accesses(), t.compute_ns())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
