//! Real application substrates for the Adios reproduction (Table 2).
//!
//! Each of the paper's four applications is implemented as a real data
//! structure living in a [`paging::PagedArena`]: lookups, scans,
//! transactions and vector searches execute against real bytes (the
//! correctness tests compare them with reference implementations), and
//! every memory access records the exact page-touch trace the simulator
//! replays.
//!
//! | Paper app | Here | Workload |
//! |-----------|------|----------|
//! | Memcached | [`kvs`] — chained-hash KVS | GET, 128 B / 1024 B values |
//! | RocksDB (PlainTable, mmap) | [`ordb`] — sorted log + sparse index | 99 % GET / 1 % SCAN(100) |
//! | Silo (Caladan variant) | [`silo`] — epoch OCC engine | TPC-C, standard mix |
//! | Faiss (IndexIVFFlat) | [`vecdb`] — IVF-Flat index | BIGANN-style kNN queries |
//! | — (tenant-plane extension) | [`llmserve`] — session-table KV cache | LLM prefill/decode serving |
//!
//! Datasets are synthetically generated and scaled down from the
//! paper's (40 GB / 20 GB / 48 GB) footprints; the local-memory *ratio*
//! (20 %) and the access-pattern shapes are preserved, which is what
//! drives memory-disaggregation behaviour (see `DESIGN.md` §2).

pub mod hashidx;
pub mod kvs;
pub mod llmserve;
pub mod ordb;
pub mod silo;
pub mod vecdb;

pub use kvs::{Kvs, MemcachedWorkload};
pub use llmserve::{LlmServe, LlmServeWorkload};
pub use ordb::{OrderedDb, RocksDbWorkload};
pub use silo::{SiloDb, TpccWorkload};
pub use vecdb::{FaissWorkload, IvfFlat};
