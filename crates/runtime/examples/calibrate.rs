//! Calibration probe: saturation sweep of all four systems on the
//! microbenchmark. Compares against the paper's anchors (DiLOS stalls
//! ~1.5 MRPS at ~50 % RDMA util, Adios ~2.5 MRPS at ~82 %, Hermit ~1.2).

use desim::SimDuration;
use loadgen::LoadPoint;
use runtime::sim::{run_one, RunParams};
use runtime::{ArrayIndexWorkload, SystemConfig, SystemKind};

fn main() {
    // 2 GB working set (scaled from the paper's 40 GB), 20 % local.
    let pages = 2 * (1 << 30) / paging::PAGE_SIZE;
    for kind in SystemKind::all() {
        println!("== {} ==", kind.name());
        println!("{}", LoadPoint::header());
        for load_k in [200, 700, 1100, 1300, 1500, 1700, 2000, 2300, 2600, 3000] {
            let params = RunParams {
                offered_rps: load_k as f64 * 1000.0,
                seed: 7,
                warmup: SimDuration::from_millis(20),
                measure: SimDuration::from_millis(60),
                local_mem_fraction: 0.2,
                keep_breakdowns: false,
                burst: None,
                timeline_bucket: None,
                trace_capacity: None,
                spans: None,
                faults: None,
                telemetry: None,
                profile: None,
                memory: None,
                tenants: None,
            };
            let mut w = ArrayIndexWorkload::new(pages);
            let res = run_one(SystemConfig::for_kind(kind), &mut w, params);
            println!("{}  spin={:.2}", res.point().row(), res.spin_fraction());
        }
    }
}
