//! System configuration: the four evaluated systems and their cost
//! constants.

use desim::SimDuration;
use fabric::{FabricParams, ShardPolicy};
use paging::reclaim::{ReclaimerMode, Watermarks};
use paging::EvictionPolicy;

/// Which paper system a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Infiniswap (NSDI '17): the original paging-based MD system —
    /// yield-based like Adios, but through the *kernel* scheduler
    /// (≈4 µs context switches, block-layer swap path, scheduler
    /// wake-up delays). The paper measured it off the charts (P99.9
    /// 582 µs–73 ms, 261 KRPS) and excluded it from the figures.
    Infiniswap,
    /// Hermit: kernel-based busy-waiting with asynchronous non-critical
    /// work (NSDI '23).
    Hermit,
    /// DiLOS: unikernel busy-waiting (EuroSys '23) — the paper's main
    /// baseline.
    Dilos,
    /// DiLOS extended with Concord-style preemptive scheduling (§5
    /// Setup, "DiLOS-P").
    DilosP,
    /// Adios: yield-based page fault handling with unithreads.
    Adios,
}

impl SystemKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Infiniswap => "Infiniswap",
            SystemKind::Hermit => "Hermit",
            SystemKind::Dilos => "DiLOS",
            SystemKind::DilosP => "DiLOS-P",
            SystemKind::Adios => "Adios",
        }
    }

    /// The four systems of the paper's figures, in plotting order
    /// (Infiniswap is excluded exactly as the paper excludes it).
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::Hermit,
            SystemKind::Dilos,
            SystemKind::DilosP,
            SystemKind::Adios,
        ]
    }
}

/// What the page fault handler does while the fetch is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Spin on the CQ until the fetch completes (Fastswap/Hermit/DiLOS).
    BusyWait,
    /// Spin, but the scheduler preempts requests at app-level probe
    /// points every `preempt_interval` (DiLOS-P / Concord).
    BusyWaitPreempt,
    /// Issue the fetch and context-switch back to the worker (Adios).
    Yield,
}

/// How the dispatcher picks a worker when several are idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerSelect {
    /// Rotate over idle workers (Shinjuku/Concord baseline).
    RoundRobin,
    /// Algorithm 1: sort idle workers by outstanding page-fetch count
    /// and prefer the least congested QP.
    PfAware,
}

/// How arrivals are admitted when the ingress plane has more than one
/// dispatcher core (`SystemConfig::dispatchers`).
///
/// With `dispatchers = 1` every policy degenerates to the paper's
/// single-queue FCFS dispatcher except [`DispatchPolicy::FlatCombining`],
/// whose batch amortisation applies even to a lone combiner.
/// `dispatchers = 1` with [`DispatchPolicy::SingleFcfs`] reproduces the
/// pre-scaling byte stream bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// The paper's design: one shared FCFS ingress queue whose head is a
    /// serialization point. Extra dispatcher cores idle — this is the
    /// baseline the scaling sweep measures the knee of.
    SingleFcfs,
    /// Per-dispatcher ingress queues with RSS-style hash steering; a
    /// dispatcher whose timeline is idle steals an arrival from a busier
    /// sibling, paying `steal_cost` on its own timeline.
    WorkStealing,
    /// Flat combining / delegation: arrivals publish to per-dispatcher
    /// slots and the current combiner drains them in batches under an
    /// exclusive combiner role. The batch opener pays the full
    /// `dispatch_cost`; joiners within `combining_window` (up to
    /// `combining_batch` per batch) pay a quarter of it.
    FlatCombining,
}

impl DispatchPolicy {
    /// CLI/report label (`--dispatch-policy` accepts these).
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::SingleFcfs => "single-fcfs",
            DispatchPolicy::WorkStealing => "work-stealing",
            DispatchPolicy::FlatCombining => "flat-combining",
        }
    }
}

/// Queueing architecture in front of the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueModel {
    /// One centralized FCFS queue fed by the dispatcher (c-FCFS).
    SingleQueue,
    /// Per-worker queues with random (RSS-style) steering — Hermit's
    /// kernel path, and the `ablation_queueing` baseline (d-FCFS).
    PerWorker,
    /// Per-worker queues with ZygOS-style work stealing: an idle worker
    /// takes the head of the longest peer queue (approximated
    /// centralized FCFS, §3.4, ZygOS).
    PerWorkerStealing,
}

/// Which prefetcher the page fault handler overlaps with the fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No pattern-based prefetching.
    None,
    /// Sequential readahead with an exponentially growing window (the
    /// OSv/DiLOS default; next-page streams only).
    Readahead {
        /// Maximum readahead window in pages.
        window: u32,
    },
    /// Leap's majority-trend prefetcher (ATC '20): detects arbitrary
    /// strides by majority vote over recent fault deltas.
    Leap {
        /// Delta-history window.
        window: u32,
        /// Maximum prefetch depth in strides.
        depth: u32,
    },
}

/// Extra costs of a kernel-based (non-unikernel) fault path.
#[derive(Debug, Clone, Copy)]
pub struct KernelCosts {
    /// Exception entry into the kernel.
    pub fault_entry: SimDuration,
    /// Swap-path software work on the critical path (Hermit moves ~10 %
    /// of it off the critical path; that discount is already applied by
    /// `SystemConfig::hermit`).
    pub swap_work: SimDuration,
    /// Return to user (`iret`-class, §3: 1–2 µs control transfer).
    pub kernel_exit: SimDuration,
    /// Kernel network-stack cost added to every request (no kernel
    /// bypass on the client path).
    pub net_stack: SimDuration,
    /// Mean period between kernel interference events per worker
    /// (scheduler ticks, softirqs, kswapd — the kernel tail).
    pub interference_period: SimDuration,
    /// Mean duration of one interference stall.
    pub interference_stall: SimDuration,
}

/// Full configuration of one simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which paper system this models.
    pub kind: SystemKind,
    /// Worker threads (paper: 8).
    pub workers: usize,
    /// Page-fault handling policy.
    pub fault_policy: FaultPolicy,
    /// Worker-selection policy among idle workers.
    pub worker_select: WorkerSelect,
    /// Queueing architecture.
    pub queue_model: QueueModel,
    /// Dispatcher (ingress) cores. The paper's machine has exactly one;
    /// more model a scaled ingress plane whose admission policy is
    /// [`SystemConfig::dispatch_policy`]. One dispatcher with
    /// `SingleFcfs` reproduces the pre-scaling byte stream bit-for-bit.
    pub dispatchers: usize,
    /// Admission policy across dispatcher cores.
    pub dispatch_policy: DispatchPolicy,
    /// Flat-combining batch window: arrivals landing within this window
    /// of the batch opener may join its batch at amortised cost.
    pub combining_window: SimDuration,
    /// Maximum requests per flat-combining batch (opener included).
    pub combining_batch: usize,
    /// Whether reply-TX completions are delegated to the dispatcher's
    /// CQ (§3.4). Without it the worker busy-waits the TX completion.
    pub polling_delegation: bool,
    /// Reclaimer drive mode.
    pub reclaimer_mode: ReclaimerMode,
    /// Reclaim watermarks.
    pub watermarks: Watermarks,
    /// Eviction policy of the page cache.
    pub eviction: EvictionPolicy,
    /// Preemption interval (DiLOS-P; paper default 5 µs).
    pub preempt_interval: SimDuration,
    /// Cost of one preemption (probe hit + ucontext-class switch +
    /// re-enqueue).
    pub preempt_cost: SimDuration,
    /// Kernel path costs (Hermit only).
    pub kernel: Option<KernelCosts>,
    /// Expected extra pages speculatively fetched per fault by the
    /// always-on readahead (see `paging::prefetch`; models the DiLOS/
    /// OSv prefetcher all systems run, §2.3).
    pub speculative_readahead: f64,
    /// Pattern-based prefetcher run by the fault handler.
    pub prefetcher: PrefetcherKind,
    /// Bytes fetched per fault (4 KB pages; 2 MB reproduces the paper's
    /// huge-page I/O-amplification discussion in §5.2 Silo).
    pub fetch_page_bytes: u32,
    /// Delay between a fetch completion and the faulting thread being
    /// runnable again (zero in Adios; kernel-scheduler wake-up latency
    /// in Infiniswap).
    pub resume_delay: SimDuration,
    /// Cost of one work-steal attempt (`PerWorkerStealing`).
    pub steal_cost: SimDuration,
    /// Per-request networking-stack overhead beyond raw Ethernet,
    /// charged on RX admission (dispatcher) and reply TX (worker).
    /// Zero models the paper's Raw-Ethernet/UDP prototype; ~0.4 µs a
    /// TAS/IX-class kernel-bypass TCP; ~2.5 µs a kernel TCP stack
    /// (§6: "networking protocol support is orthogonal to our design").
    pub client_stack: SimDuration,
    /// Dispatcher cost to admit + dispatch one request.
    pub dispatch_cost: SimDuration,
    /// Dispatcher cost to hand a queued request to a newly idle worker.
    pub handoff_cost: SimDuration,
    /// Dispatcher cost to recycle one delegated TX completion.
    pub recycle_cost: SimDuration,
    /// Worker cost to set up a request (parse headers, create the
    /// unithread / handler frame).
    pub request_setup: SimDuration,
    /// Worker cost to build the reply before posting TX.
    pub reply_build: SimDuration,
    /// Unikernel fault-handler entry (exception + unified lookup).
    pub fault_entry: SimDuration,
    /// Frame allocation + WQE build cost at fault time.
    pub fault_issue: SimDuration,
    /// Prefetch-algorithm compute run while the fetch is in flight.
    pub prefetch_compute: SimDuration,
    /// Mapping the fetched page + resuming the faulting code.
    pub fault_map: SimDuration,
    /// One unithread context switch (Table 1: 40 cycles = 20 ns).
    pub ctx_switch: SimDuration,
    /// One CQ poll by a worker.
    pub cq_poll: SimDuration,
    /// Per-page eviction cost paid by the reclaimer.
    pub evict_cost: SimDuration,
    /// Reclaimer batch size per tick.
    pub reclaim_batch: usize,
    /// Wake-up delay of a `WakeUp`-mode reclaimer.
    pub reclaim_wake_delay: SimDuration,
    /// Synchronous direct-reclaim cost when a fault finds no free frame.
    pub direct_reclaim_cost: SimDuration,
    /// Central pending-queue capacity (arrivals beyond it are dropped).
    pub pending_cap: usize,
    /// Memory-node shards the remote page space is partitioned over.
    /// Each shard gets its own memnode chain, NIC rail and QP set; a
    /// fetch routes to its page's shard. One shard reproduces the
    /// pre-sharding single-primary layout bit-for-bit.
    pub memnode_shards: usize,
    /// How pages are placed onto shards (hash by default; range keeps
    /// sequential streams on one shard).
    pub shard_policy: ShardPolicy,
    /// Memory-node replicas per shard. Replica 0 is the shard's primary
    /// every fetch targets first; under an armed fault plane, a fetch
    /// whose CQE errors fails over to the next replica in the shard's
    /// chain.
    pub memnode_replicas: usize,
    /// Total issue attempts per demand fetch (the original plus
    /// failovers) before the runtime gives up and aborts the request.
    pub max_fetch_attempts: u32,
    /// Fabric parameters.
    pub fabric: FabricParams,
}

impl SystemConfig {
    fn base(kind: SystemKind) -> SystemConfig {
        SystemConfig {
            kind,
            workers: 8,
            fault_policy: FaultPolicy::BusyWait,
            worker_select: WorkerSelect::RoundRobin,
            queue_model: QueueModel::SingleQueue,
            dispatchers: 1,
            dispatch_policy: DispatchPolicy::SingleFcfs,
            combining_window: SimDuration::from_micros(1),
            combining_batch: 8,
            polling_delegation: false,
            reclaimer_mode: ReclaimerMode::WakeUp,
            watermarks: Watermarks::default(),
            eviction: EvictionPolicy::Clock,
            preempt_interval: SimDuration::from_micros(5),
            preempt_cost: SimDuration::from_nanos(220),
            kernel: None,
            speculative_readahead: 0.25,
            prefetcher: PrefetcherKind::Readahead { window: 8 },
            fetch_page_bytes: paging::PAGE_SIZE as u32,
            resume_delay: SimDuration::ZERO,
            steal_cost: SimDuration::from_nanos(250),
            client_stack: SimDuration::ZERO,
            dispatch_cost: SimDuration::from_nanos(150),
            handoff_cost: SimDuration::from_nanos(80),
            recycle_cost: SimDuration::from_nanos(60),
            request_setup: SimDuration::from_nanos(150),
            reply_build: SimDuration::from_nanos(100),
            fault_entry: SimDuration::from_nanos(500),
            fault_issue: SimDuration::from_nanos(300),
            prefetch_compute: SimDuration::from_nanos(400),
            fault_map: SimDuration::from_nanos(700),
            ctx_switch: SimDuration::from_nanos(20),
            cq_poll: SimDuration::from_nanos(60),
            evict_cost: SimDuration::from_nanos(100),
            reclaim_batch: 16,
            reclaim_wake_delay: SimDuration::from_micros(5),
            direct_reclaim_cost: SimDuration::from_nanos(600),
            pending_cap: 4096,
            memnode_shards: 1,
            shard_policy: ShardPolicy::Hash,
            memnode_replicas: 1,
            max_fetch_attempts: 3,
            fabric: FabricParams::default(),
        }
    }

    /// DiLOS: unikernel busy-waiting, single queue, wake-up reclaimer.
    pub fn dilos() -> SystemConfig {
        SystemConfig::base(SystemKind::Dilos)
    }

    /// DiLOS-P: DiLOS plus Concord-style preemption (manually enforced
    /// cooperation, 5 µs interval).
    pub fn dilos_p() -> SystemConfig {
        SystemConfig {
            fault_policy: FaultPolicy::BusyWaitPreempt,
            ..SystemConfig::base(SystemKind::DilosP)
        }
    }

    /// Adios: yield-based fault handling, PF-aware dispatch, polling
    /// delegation, proactive pinned reclaimer.
    pub fn adios() -> SystemConfig {
        SystemConfig {
            fault_policy: FaultPolicy::Yield,
            worker_select: WorkerSelect::PfAware,
            polling_delegation: true,
            reclaimer_mode: ReclaimerMode::Proactive,
            ..SystemConfig::base(SystemKind::Adios)
        }
    }

    /// Hermit: kernel-based busy-waiting with per-core RSS queues,
    /// asynchronous offload of non-urgent fault work, and kernel tail
    /// interference.
    pub fn hermit() -> SystemConfig {
        SystemConfig {
            queue_model: QueueModel::PerWorker,
            kernel: Some(KernelCosts {
                fault_entry: SimDuration::from_nanos(400),
                // ~0.9 µs of swap-path software work after Hermit's
                // async design moves ~10 % off the critical path.
                swap_work: SimDuration::from_nanos(800),
                kernel_exit: SimDuration::from_nanos(600),
                net_stack: SimDuration::from_nanos(700),
                interference_period: SimDuration::from_micros(800),
                interference_stall: SimDuration::from_micros(60),
            }),
            ..SystemConfig::base(SystemKind::Hermit)
        }
    }

    /// Infiniswap: yield-based paging through the kernel — heavyweight
    /// context switches, block-layer swap work per fault, and scheduler
    /// wake-up latency before a fetched thread runs again.
    pub fn infiniswap() -> SystemConfig {
        SystemConfig {
            fault_policy: FaultPolicy::Yield,
            queue_model: QueueModel::PerWorker,
            // ~4 µs kernel context switch (Litton et al., §7): 2 µs per
            // direction.
            ctx_switch: SimDuration::from_micros(2),
            resume_delay: SimDuration::from_micros(30),
            kernel: Some(KernelCosts {
                fault_entry: SimDuration::from_nanos(600),
                // Block-layer swap path (bio + frontswap + RDMA block
                // driver) — far heavier than Hermit's tuned path.
                swap_work: SimDuration::from_micros(6),
                kernel_exit: SimDuration::from_micros(1),
                net_stack: SimDuration::from_micros(1),
                interference_period: SimDuration::from_micros(600),
                interference_stall: SimDuration::from_micros(150),
            }),
            ..SystemConfig::base(SystemKind::Infiniswap)
        }
    }

    /// The configuration for a [`SystemKind`].
    pub fn for_kind(kind: SystemKind) -> SystemConfig {
        match kind {
            SystemKind::Infiniswap => SystemConfig::infiniswap(),
            SystemKind::Hermit => SystemConfig::hermit(),
            SystemKind::Dilos => SystemConfig::dilos(),
            SystemKind::DilosP => SystemConfig::dilos_p(),
            SystemKind::Adios => SystemConfig::adios(),
        }
    }

    /// Memory-node replicas per shard, clamped to at least one — a
    /// chain always has its primary. Every consumer of
    /// [`SystemConfig::memnode_replicas`] must go through this accessor
    /// so the clamp lives in exactly one place.
    pub fn replicas(&self) -> usize {
        self.memnode_replicas.max(1)
    }

    /// Validated memory-node shard count.
    ///
    /// # Panics
    ///
    /// Panics when `memnode_shards` is zero (a page space with no home)
    /// or exceeds [`desim::trace::shard_names::MAX_SHARDS`] (the
    /// per-shard counter schema is a static name table).
    pub fn shards(&self) -> usize {
        assert!(
            self.memnode_shards >= 1,
            "memnode_shards must be at least 1"
        );
        assert!(
            self.memnode_shards <= desim::trace::shard_names::MAX_SHARDS,
            "memnode_shards must not exceed {}",
            desim::trace::shard_names::MAX_SHARDS
        );
        self.memnode_shards
    }

    /// Validated dispatcher-core count.
    ///
    /// # Panics
    ///
    /// Panics when `dispatchers` is zero (nobody to admit arrivals) or
    /// exceeds [`desim::trace::dispatcher_names::MAX_DISPATCHERS`] (the
    /// per-dispatcher counter schema is a static name table).
    pub fn ndispatchers(&self) -> usize {
        assert!(self.dispatchers >= 1, "dispatchers must be at least 1");
        assert!(
            self.dispatchers <= desim::trace::dispatcher_names::MAX_DISPATCHERS,
            "dispatchers must not exceed {}",
            desim::trace::dispatcher_names::MAX_DISPATCHERS
        );
        self.dispatchers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_setup() {
        let a = SystemConfig::adios();
        assert_eq!(a.workers, 8);
        assert_eq!(a.fault_policy, FaultPolicy::Yield);
        assert_eq!(a.worker_select, WorkerSelect::PfAware);
        assert!(a.polling_delegation);
        assert_eq!(a.reclaimer_mode, ReclaimerMode::Proactive);
        assert_eq!(a.dispatchers, 1, "the paper's machine has one dispatcher");
        assert_eq!(a.dispatch_policy, DispatchPolicy::SingleFcfs);

        let d = SystemConfig::dilos();
        assert_eq!(d.fault_policy, FaultPolicy::BusyWait);
        assert_eq!(d.worker_select, WorkerSelect::RoundRobin);
        assert!(!d.polling_delegation);

        let p = SystemConfig::dilos_p();
        assert_eq!(p.fault_policy, FaultPolicy::BusyWaitPreempt);
        assert_eq!(p.preempt_interval, SimDuration::from_micros(5));

        let h = SystemConfig::hermit();
        assert!(h.kernel.is_some());
        assert_eq!(h.queue_model, QueueModel::PerWorker);
    }

    #[test]
    fn kind_names() {
        assert_eq!(SystemKind::Adios.name(), "Adios");
        assert_eq!(SystemKind::DilosP.name(), "DiLOS-P");
        assert_eq!(SystemKind::all().len(), 4);
    }

    #[test]
    fn for_kind_round_trips() {
        for kind in SystemKind::all() {
            assert_eq!(SystemConfig::for_kind(kind).kind, kind);
        }
    }

    #[test]
    fn shard_and_replica_accessors_validate() {
        let cfg = SystemConfig::adios();
        assert_eq!(cfg.shards(), 1, "presets default to the unsharded layout");
        assert_eq!(cfg.replicas(), 1);

        let sharded = SystemConfig {
            memnode_shards: 4,
            memnode_replicas: 0, // clamped, not rejected: chains keep a primary
            ..SystemConfig::adios()
        };
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.replicas(), 1);
        assert_eq!(sharded.shard_policy, ShardPolicy::Hash);
    }

    #[test]
    #[should_panic(expected = "memnode_shards must be at least 1")]
    fn zero_shards_rejected() {
        let cfg = SystemConfig {
            memnode_shards: 0,
            ..SystemConfig::adios()
        };
        let _ = cfg.shards();
    }

    #[test]
    #[should_panic(expected = "memnode_shards must not exceed")]
    fn oversized_shard_count_rejected() {
        let cfg = SystemConfig {
            memnode_shards: desim::trace::shard_names::MAX_SHARDS + 1,
            ..SystemConfig::adios()
        };
        let _ = cfg.shards();
    }

    #[test]
    fn dispatcher_accessor_validates() {
        let cfg = SystemConfig::adios();
        assert_eq!(cfg.ndispatchers(), 1, "presets default to one dispatcher");

        let scaled = SystemConfig {
            dispatchers: 4,
            dispatch_policy: DispatchPolicy::WorkStealing,
            ..SystemConfig::adios()
        };
        assert_eq!(scaled.ndispatchers(), 4);
        assert_eq!(scaled.dispatch_policy.name(), "work-stealing");
    }

    #[test]
    #[should_panic(expected = "dispatchers must be at least 1")]
    fn zero_dispatchers_rejected() {
        let cfg = SystemConfig {
            dispatchers: 0,
            ..SystemConfig::adios()
        };
        let _ = cfg.ndispatchers();
    }

    #[test]
    #[should_panic(expected = "dispatchers must not exceed")]
    fn oversized_dispatcher_count_rejected() {
        let cfg = SystemConfig {
            dispatchers: desim::trace::dispatcher_names::MAX_DISPATCHERS + 1,
            ..SystemConfig::adios()
        };
        let _ = cfg.ndispatchers();
    }

    #[test]
    fn unithread_switch_matches_table_1() {
        // 40 cycles at 2 GHz = 20 ns.
        assert_eq!(SystemConfig::adios().ctx_switch.as_cycles(), 40);
    }
}
