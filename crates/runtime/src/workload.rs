//! The workload abstraction and the paper's microbenchmark.

use desim::Rng;
use paging::trace::{Access, Step, Trace};

/// A request source: produces one [`Trace`] per request.
///
/// Application crates implement this by executing a real request
/// against their [`paging::PagedArena`]-backed data structures and
/// recording the page touches; the simulator replays the trace.
pub trait Workload {
    /// Human-readable names of the request classes (index = `class`).
    fn classes(&self) -> &'static [&'static str];

    /// Number of pages in the working set (the remote region size).
    fn total_pages(&self) -> u64;

    /// Produces the next request's trace.
    fn next_request(&mut self, rng: &mut Rng) -> Trace;

    /// Produces the next request's trace into `buf`, reusing its step
    /// storage. Must draw from `rng` exactly like [`next_request`]
    /// (the simulator recycles retired requests' traces through this
    /// path, and determinism depends on an identical draw sequence).
    ///
    /// The default delegates to [`next_request`]; hot workloads
    /// override it to skip the per-request allocation.
    ///
    /// [`next_request`]: Workload::next_request
    fn next_request_into(&mut self, rng: &mut Rng, buf: &mut Trace) {
        *buf = self.next_request(rng);
    }

    /// Produces the next request's trace for a specific tenant of a
    /// multi-tenant run. The default ignores the tenant and delegates
    /// to [`next_request_into`] — single-app workloads serve every
    /// tenant the same stream, which keeps `tenants = 1` runs
    /// byte-identical to the pre-tenant path. [`TenantWorkload`]
    /// overrides it to route each tenant to its own app.
    ///
    /// [`next_request_into`]: Workload::next_request_into
    fn next_request_for(&mut self, tenant: usize, rng: &mut Rng, buf: &mut Trace) {
        let _ = tenant;
        self.next_request_into(rng, buf);
    }

    /// Pages that should be resident at steady state, used to warm the
    /// cache; `None` (default) means a uniform random sample.
    fn warm_pages(&self) -> Option<Vec<u64>> {
        None
    }
}

/// The paper's microbenchmark (§2, §5.1): clients send a random index
/// into a large array; the node replies with the value at that index.
///
/// One random page access per request, bimodal service time at a 20 %
/// local-memory ratio: ~0.85 µs when local, ~5.3 µs when remote.
#[derive(Debug, Clone)]
pub struct ArrayIndexWorkload {
    total_pages: u64,
    parse_ns: f64,
    reply_ns: f64,
    request_bytes: u32,
    reply_bytes: u32,
}

impl ArrayIndexWorkload {
    /// Creates the workload over an array of `total_pages` 4 KB pages.
    pub fn new(total_pages: u64) -> ArrayIndexWorkload {
        ArrayIndexWorkload {
            total_pages,
            parse_ns: 250.0,
            reply_ns: 200.0,
            request_bytes: 32,
            reply_bytes: 64,
        }
    }

    /// The paper's 40 GB array.
    pub fn paper_scale() -> ArrayIndexWorkload {
        ArrayIndexWorkload::new(40 * (1 << 30) / paging::PAGE_SIZE)
    }
}

impl Workload for ArrayIndexWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["lookup"]
    }

    fn total_pages(&self) -> u64 {
        self.total_pages
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        let page = rng.gen_range(self.total_pages);
        Trace {
            class: 0,
            steps: vec![
                Step {
                    compute_ns: self.parse_ns as u32,
                    access: Some(Access { page, write: false }),
                },
                Step {
                    compute_ns: self.reply_ns as u32,
                    access: None,
                },
            ],
            request_bytes: self.request_bytes,
            reply_bytes: self.reply_bytes,
        }
    }

    fn next_request_into(&mut self, rng: &mut Rng, buf: &mut Trace) {
        let page = rng.gen_range(self.total_pages);
        buf.class = 0;
        buf.request_bytes = self.request_bytes;
        buf.reply_bytes = self.reply_bytes;
        buf.steps.clear();
        buf.steps.push(Step {
            compute_ns: self.parse_ns as u32,
            access: Some(Access { page, write: false }),
        });
        buf.steps.push(Step {
            compute_ns: self.reply_ns as u32,
            access: None,
        });
    }
}

/// A strided-access workload: each request walks `touches` pages with a
/// fixed page `stride` from a random start.
///
/// Plain next-page readahead never fires on it (the deltas are not +1),
/// while Leap's majority-trend prefetcher locks onto the stride after a
/// few faults — the prefetcher-policy ablation's workload.
#[derive(Debug, Clone)]
pub struct StridedWorkload {
    total_pages: u64,
    stride: u64,
    touches: u32,
}

impl StridedWorkload {
    /// Creates the workload over `total_pages`, reading `touches` pages
    /// `stride` apart per request.
    ///
    /// # Panics
    ///
    /// Panics if a walk cannot fit in the working set.
    pub fn new(total_pages: u64, stride: u64, touches: u32) -> StridedWorkload {
        assert!(
            stride * touches as u64 * 2 < total_pages,
            "walk does not fit the working set"
        );
        StridedWorkload {
            total_pages,
            stride,
            touches,
        }
    }
}

impl Workload for StridedWorkload {
    fn classes(&self) -> &'static [&'static str] {
        &["walk"]
    }

    fn total_pages(&self) -> u64 {
        self.total_pages
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        let span = self.stride * self.touches as u64;
        let start = rng.gen_range(self.total_pages - span);
        let mut steps: Vec<Step> = (0..self.touches)
            .map(|i| Step {
                compute_ns: 220,
                access: Some(Access {
                    page: start + i as u64 * self.stride,
                    write: false,
                }),
            })
            .collect();
        steps.push(Step {
            compute_ns: 180,
            access: None,
        });
        Trace {
            class: 0,
            steps,
            request_bytes: 32,
            reply_bytes: 64,
        }
    }

    fn next_request_into(&mut self, rng: &mut Rng, buf: &mut Trace) {
        let span = self.stride * self.touches as u64;
        let start = rng.gen_range(self.total_pages - span);
        buf.class = 0;
        buf.request_bytes = 32;
        buf.reply_bytes = 64;
        buf.steps.clear();
        buf.steps.extend((0..self.touches).map(|i| Step {
            compute_ns: 220,
            access: Some(Access {
                page: start + i as u64 * self.stride,
                write: false,
            }),
        }));
        buf.steps.push(Step {
            compute_ns: 180,
            access: None,
        });
    }
}

/// Two workloads co-located on one node (the multi-application setting
/// Canvas [§1] targets): requests are drawn from `b` with probability
/// `fraction_b`, otherwise from `a`. Their page namespaces are disjoint
/// (`b`'s pages are offset past `a`'s working set) and their request
/// classes are concatenated, so per-tenant latency remains visible.
pub struct MixedWorkload<A, B> {
    a: A,
    b: B,
    fraction_b: f64,
    classes: &'static [&'static str],
}

impl<A: Workload, B: Workload> MixedWorkload<A, B> {
    /// Co-locates `a` and `b`; `fraction_b` of requests go to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_b` is outside `[0, 1]`.
    pub fn new(a: A, b: B, fraction_b: f64) -> MixedWorkload<A, B> {
        assert!((0.0..=1.0).contains(&fraction_b));
        // The Workload trait hands out 'static class tables; build the
        // concatenation once per mix (leaked: a handful of pointers per
        // experiment configuration).
        let combined: Vec<&'static str> = a.classes().iter().chain(b.classes()).copied().collect();
        MixedWorkload {
            classes: Box::leak(combined.into_boxed_slice()),
            a,
            b,
            fraction_b,
        }
    }

    /// Class index of tenant `b`'s class `i` in the combined table.
    pub fn b_class(&self, i: u16) -> u16 {
        self.a.classes().len() as u16 + i
    }
}

impl<A: Workload, B: Workload> Workload for MixedWorkload<A, B> {
    fn classes(&self) -> &'static [&'static str] {
        self.classes
    }

    fn total_pages(&self) -> u64 {
        self.a.total_pages() + self.b.total_pages()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        if rng.gen_bool(self.fraction_b) {
            let mut t = self.b.next_request(rng);
            // Shift tenant b into its own page namespace and class range.
            let offset = self.a.total_pages();
            for step in &mut t.steps {
                if let Some(a) = &mut step.access {
                    a.page += offset;
                }
            }
            t.class += self.a.classes().len() as u16;
            t
        } else {
            self.a.next_request(rng)
        }
    }

    fn next_request_into(&mut self, rng: &mut Rng, buf: &mut Trace) {
        if rng.gen_bool(self.fraction_b) {
            self.b.next_request_into(rng, buf);
            let offset = self.a.total_pages();
            for step in &mut buf.steps {
                if let Some(a) = &mut step.access {
                    a.page += offset;
                }
            }
            buf.class += self.a.classes().len() as u16;
        } else {
            self.a.next_request_into(rng, buf);
        }
    }
}

/// N co-located tenant apps with disjoint page namespaces and
/// concatenated class tables — the workload side of the tenant plane.
///
/// Where [`MixedWorkload`] draws the tenant *randomly* per request,
/// `TenantWorkload` is told which tenant each arrival belongs to (the
/// [`loadgen::tenant::TenantMix`] merged stream carries the id) and
/// routes `next_request_for` to that tenant's app, shifting its pages
/// past the preceding tenants' working sets and its classes past their
/// class tables. Per-tenant latency and span class annotations fall out
/// of the class shift for free.
pub struct TenantWorkload {
    apps: Vec<Box<dyn Workload>>,
    /// Page-namespace base of each tenant (prefix sums of totals).
    page_offsets: Vec<u64>,
    /// Class-table base of each tenant.
    class_offsets: Vec<u16>,
    classes: &'static [&'static str],
}

impl TenantWorkload {
    /// Co-locates one app per tenant, in tenant-id order.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new(apps: Vec<Box<dyn Workload>>) -> TenantWorkload {
        assert!(!apps.is_empty(), "a tenant workload needs at least one app");
        let mut page_offsets = Vec::with_capacity(apps.len());
        let mut class_offsets = Vec::with_capacity(apps.len());
        let mut pages = 0u64;
        let mut classes = 0u16;
        let mut combined: Vec<&'static str> = Vec::new();
        for app in &apps {
            page_offsets.push(pages);
            class_offsets.push(classes);
            pages += app.total_pages();
            classes += app.classes().len() as u16;
            combined.extend(app.classes());
        }
        TenantWorkload {
            // Same deal as MixedWorkload: the trait hands out 'static
            // class tables, so the concatenation is leaked once per
            // configuration.
            classes: Box::leak(combined.into_boxed_slice()),
            apps,
            page_offsets,
            class_offsets,
        }
    }

    /// Class index of tenant `t`'s class `i` in the combined table.
    pub fn tenant_class(&self, t: usize, i: u16) -> u16 {
        self.class_offsets[t] + i
    }
}

impl Workload for TenantWorkload {
    fn classes(&self) -> &'static [&'static str] {
        self.classes
    }

    fn total_pages(&self) -> u64 {
        self.apps.iter().map(|a| a.total_pages()).sum()
    }

    fn next_request(&mut self, rng: &mut Rng) -> Trace {
        // Un-tagged draws come from tenant 0 (the single-tenant path).
        let mut buf = Trace::default();
        self.next_request_for(0, rng, &mut buf);
        buf
    }

    fn next_request_into(&mut self, rng: &mut Rng, buf: &mut Trace) {
        self.next_request_for(0, rng, buf);
    }

    fn next_request_for(&mut self, tenant: usize, rng: &mut Rng, buf: &mut Trace) {
        self.apps[tenant].next_request_into(rng, buf);
        let offset = self.page_offsets[tenant];
        if offset > 0 {
            for step in &mut buf.steps {
                if let Some(a) = &mut step.access {
                    a.page += offset;
                }
            }
        }
        buf.class += self.class_offsets[tenant];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_walks_have_constant_stride() {
        let mut w = StridedWorkload::new(100_000, 7, 12);
        let mut rng = Rng::new(4);
        let t = w.next_request(&mut rng);
        let pages: Vec<u64> = t
            .steps
            .iter()
            .filter_map(|s| s.access.map(|a| a.page))
            .collect();
        assert_eq!(pages.len(), 12);
        assert!(pages.windows(2).all(|p| p[1] - p[0] == 7));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_walk_panics() {
        StridedWorkload::new(100, 10, 10);
    }

    #[test]
    fn mixed_workload_partitions_namespaces() {
        let a = ArrayIndexWorkload::new(1_000);
        let b = ArrayIndexWorkload::new(2_000);
        let mut m = MixedWorkload::new(a, b, 0.5);
        assert_eq!(m.total_pages(), 3_000);
        assert_eq!(m.classes(), &["lookup", "lookup"]);
        let mut rng = Rng::new(9);
        let (mut from_a, mut from_b) = (0, 0);
        for _ in 0..2_000 {
            let t = m.next_request(&mut rng);
            let page = t.steps[0].access.unwrap().page;
            if t.class == 0 {
                assert!(page < 1_000, "tenant a stays in its namespace");
                from_a += 1;
            } else {
                assert!((1_000..3_000).contains(&page), "tenant b offset");
                from_b += 1;
            }
        }
        assert!(from_a > 800 && from_b > 800, "{from_a}/{from_b}");
    }

    #[test]
    fn tenant_workload_routes_by_tenant_id() {
        let mut w = TenantWorkload::new(vec![
            Box::new(ArrayIndexWorkload::new(1_000)),
            Box::new(StridedWorkload::new(50_000, 3, 4)),
            Box::new(ArrayIndexWorkload::new(2_000)),
        ]);
        assert_eq!(w.total_pages(), 53_000);
        assert_eq!(w.classes(), &["lookup", "walk", "lookup"]);
        assert_eq!(w.tenant_class(1, 0), 1);
        assert_eq!(w.tenant_class(2, 0), 2);
        let mut rng = Rng::new(21);
        let mut buf = Trace::default();
        for _ in 0..300 {
            for (t, range) in [(0, 0..1_000u64), (1, 1_000..51_000), (2, 51_000..53_000)] {
                w.next_request_for(t, &mut rng, &mut buf);
                assert_eq!(buf.class as usize, t, "class shift tags the tenant");
                for page in buf.steps.iter().filter_map(|s| s.access.map(|a| a.page)) {
                    assert!(range.contains(&page), "tenant {t} page {page} escaped");
                }
            }
        }
    }

    #[test]
    fn tenant_workload_untagged_draw_is_tenant_zero() {
        // The single-tenant path (next_request_into with no tenant id)
        // must be indistinguishable from tenant 0's own stream.
        let mut a = TenantWorkload::new(vec![Box::new(ArrayIndexWorkload::new(4_000))]);
        let mut b = ArrayIndexWorkload::new(4_000);
        let mut rng_a = Rng::new(5);
        let mut rng_b = Rng::new(5);
        let mut buf_a = Trace::default();
        let mut buf_b = Trace::default();
        for _ in 0..500 {
            a.next_request_into(&mut rng_a, &mut buf_a);
            b.next_request_into(&mut rng_b, &mut buf_b);
            assert_eq!(buf_a.steps, buf_b.steps);
            assert_eq!(buf_a.class, buf_b.class);
        }
    }

    #[test]
    #[should_panic(expected = "0.0..=1.0")]
    fn mixed_rejects_bad_fraction() {
        MixedWorkload::new(
            ArrayIndexWorkload::new(100),
            ArrayIndexWorkload::new(100),
            1.5,
        );
    }

    #[test]
    fn microbench_touches_one_uniform_page() {
        let mut w = ArrayIndexWorkload::new(1000);
        let mut rng = Rng::new(1);
        let mut pages = std::collections::HashSet::new();
        for _ in 0..2000 {
            let t = w.next_request(&mut rng);
            assert_eq!(t.accesses(), 1);
            let page = t.steps[0].access.unwrap().page;
            assert!(page < 1000);
            pages.insert(page);
        }
        // Uniform over 1000 pages: 2000 draws should hit most of them.
        assert!(pages.len() > 750, "only {} distinct pages", pages.len());
    }

    /// The pooled `next_request_into` path must produce the same trace
    /// stream as the allocating path, from the same rng draws — the
    /// simulator's byte-determinism depends on it.
    #[test]
    fn into_path_matches_allocating_path() {
        fn check(mut fresh: impl Workload, mut pooled: impl Workload, seed: u64) {
            let mut rng_a = Rng::new(seed);
            let mut rng_b = Rng::new(seed);
            let mut buf = Trace::default();
            // Pre-dirty the buffer so stale state would be caught.
            buf.steps.push(Step {
                compute_ns: 1,
                access: None,
            });
            buf.class = 7;
            for _ in 0..500 {
                let t = fresh.next_request(&mut rng_a);
                pooled.next_request_into(&mut rng_b, &mut buf);
                assert_eq!(t.class, buf.class);
                assert_eq!(t.steps, buf.steps);
                assert_eq!(t.request_bytes, buf.request_bytes);
                assert_eq!(t.reply_bytes, buf.reply_bytes);
            }
        }
        check(
            ArrayIndexWorkload::new(5_000),
            ArrayIndexWorkload::new(5_000),
            11,
        );
        check(
            StridedWorkload::new(100_000, 7, 12),
            StridedWorkload::new(100_000, 7, 12),
            12,
        );
        check(
            MixedWorkload::new(
                ArrayIndexWorkload::new(1_000),
                StridedWorkload::new(50_000, 3, 4),
                0.4,
            ),
            MixedWorkload::new(
                ArrayIndexWorkload::new(1_000),
                StridedWorkload::new(50_000, 3, 4),
                0.4,
            ),
            13,
        );
    }

    #[test]
    fn paper_scale_is_40gb() {
        let w = ArrayIndexWorkload::paper_scale();
        assert_eq!(w.total_pages(), 10 * 1024 * 1024);
    }

    #[test]
    fn compute_matches_local_service_target() {
        // Local hits: parse + reply + per-request setup/reply costs in
        // the runtime should land near the paper's 0.85 µs local
        // service time. The trace itself carries 450 ns.
        let mut w = ArrayIndexWorkload::new(10);
        let t = w.next_request(&mut Rng::new(2));
        assert_eq!(t.compute_ns(), 450);
    }
}
