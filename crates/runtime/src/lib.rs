//! The simulated compute node: schedulers, page-fault policies and the
//! end-to-end request path.
//!
//! This crate assembles the fabric, paging and load-generation models
//! into the four systems the paper evaluates (§5 Setup):
//!
//! | System    | Page-fault policy        | Queueing        | Extras |
//! |-----------|--------------------------|-----------------|--------|
//! | `Hermit`  | busy-wait, kernel path   | per-core (RSS)  | async offload, kernel interference |
//! | `DiLOS`   | busy-wait, unikernel     | single queue    | wake-up reclaimer |
//! | `DiLOS-P` | busy-wait + 5 µs preempt | single queue    | Concord-style probes |
//! | `Adios`   | **yield**, unikernel     | single queue    | PF-aware dispatch, polling delegation, proactive reclaimer |
//!
//! The heart of the model is [`sim::Simulation`]: a discrete-event loop
//! in which eight workers, one dispatcher and one reclaimer replay
//! application [`Trace`](paging::Trace)s against the simulated page
//! cache and RDMA fabric. Timing constants are calibrated to the
//! paper's own published numbers (see `DESIGN.md` §4).

pub mod config;
pub mod sim;
pub mod workload;

pub use config::{
    DispatchPolicy, FaultPolicy, PrefetcherKind, QueueModel, SystemConfig, SystemKind, WorkerSelect,
};
pub use sim::{RunResult, Simulation};
pub use workload::{ArrayIndexWorkload, MixedWorkload, StridedWorkload, TenantWorkload, Workload};
