//! The discrete-event simulation of one compute node under load.
//!
//! Execution model: every simulated activity is an event in a single
//! total-order queue. Workers execute request traces *synchronously in
//! virtual time* between blocking points; each blocking point (page
//! fault, busy-wait completion, reply transmission, going idle)
//! schedules the continuation as a new event, so fetch completions and
//! new arrivals interleave with worker progress exactly as on real
//! hardware.
//!
//! Timing approximation: within one execution segment a worker's
//! virtual clock `t` runs ahead of the global event clock by at most a
//! few microseconds; fabric FIFOs are updated in call order rather than
//! strict virtual-time order within that window. The error is bounded
//! by one segment length and is far below the latency scales the paper
//! reports.

use std::collections::VecDeque;
use std::rc::Rc;

use desim::profile::{
    queue_names, CoreProfiler, CoreState, ProfileConfig, ProfileReport, QueueProbe,
};
use desim::span::{stage, SpanBuilder, SpanConfig, SpanReport, SpanStore};
use desim::telemetry::{
    EpisodeNote, FlightRecorder, HealthInput, TelemetryConfig, TelemetryReport,
};
use desim::trace::{CounterId, GaugeId};
use desim::{
    EventQueue, FxHashMap, Metrics, MetricsSnapshot, NoopTracer, RingTracer, Rng, SimDuration,
    SimTime, SloRule, TraceEvent, Tracer,
};
use fabric::link::Link;
use fabric::nic::Verb;
use fabric::{EthPort, FabricParams, MemNode, QpId, RdmaNic, ShardMap};
use faults::{FaultPlane, FaultScenario, FaultStats};
use loadgen::{
    Breakdown, BurstyLoop, IngressFanIn, LoadPoint, OpenLoop, Recorder, TenantMix, TenantPlane,
    TenantPriority, TenantSpec,
};
pub use paging::observe::MemObsConfig;
use paging::observe::{MemObservatory, MemReport, PrefetchClass};
use paging::prefetch::{LeapDetector, SeqDetector};
use paging::reclaim::ReclaimerMode;
use paging::trace::Trace;
use paging::{PageCache, PageState, PAGE_SIZE};

use crate::config::{
    DispatchPolicy, FaultPolicy, PrefetcherKind, QueueModel, SystemConfig, WorkerSelect,
};
use crate::workload::Workload;

/// Parameters of one simulation run.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Seed for arrivals, workload and steering randomness.
    pub seed: u64,
    /// Warm-up time excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Local DRAM as a fraction of the working set (paper default 0.2;
    /// 1.0 = everything local).
    pub local_mem_fraction: f64,
    /// Retain per-request breakdowns (Figures 2c / 7c).
    pub keep_breakdowns: bool,
    /// Optional burstiness: `(peak_factor, mean_phase)` turns the
    /// Poisson source into a two-state MMPP with the same mean rate
    /// (§3.2 burst-tolerance studies).
    pub burst: Option<(f64, SimDuration)>,
    /// Record a queue-depth/in-flight timeline with this bucket width
    /// (None = off; used by the burst-tolerance study).
    pub timeline_bucket: Option<SimDuration>,
    /// Retain a virtual-time event trace with this ring-buffer capacity
    /// (None = tracing off, the zero-cost default). The most recent
    /// `capacity` events are kept; [`RunResult::trace`] returns them
    /// sorted by simulated time.
    pub trace_capacity: Option<usize>,
    /// Per-request span tracing and critical-path attribution (None =
    /// off, the zero-cost default). Implicitly enabled in stats-only
    /// mode when [`RunParams::keep_breakdowns`] is set, since
    /// breakdowns are derived from the span trees.
    pub spans: Option<SpanConfig>,
    /// Fault scenario to arm the fabric's fault plane with (None = the
    /// inert plane: a lossless fabric, bit-identical to runs predating
    /// fault injection). Seeded from [`RunParams::seed`], so a run with
    /// the same seed and scenario replays byte-identically.
    pub faults: Option<FaultScenario>,
    /// Continuous telemetry (None = off, the zero-cost default: no tick
    /// events enter the queue, so disabled runs replay byte-identically
    /// to runs predating telemetry). When set, a
    /// [`desim::telemetry::FlightRecorder`] samples every counter and
    /// gauge each tick, scores per-QP/per-shard health, and runs the
    /// configured SLO rules; the report lands in
    /// [`RunResult::telemetry`].
    pub telemetry: Option<TelemetryConfig>,
    /// Core profiler + queueing observatory (None = off, the zero-cost
    /// default: nothing registers and nothing accrues, so disabled runs
    /// replay byte-identically to runs predating the profiler). When
    /// set, a [`desim::profile::CoreProfiler`] tiles every core's
    /// timeline (dispatcher included) exhaustively into typed states
    /// and [`desim::profile::QueueProbe`]s watch every queue; the
    /// report lands in [`RunResult::profile`].
    pub profile: Option<ProfileConfig>,
    /// Multi-tenant traffic plane (None = the legacy single-source
    /// arrival path, byte-identical to runs predating tenants). When
    /// set, arrivals come from a [`TenantMix`] merging every tenant's
    /// own source, each request carries its tenant id, per-tenant
    /// token-bucket admission and the low-priority shed watermark run
    /// at dispatcher ingress, and [`RunResult::tenants`] carries the
    /// per-tenant window accounting. `tenantN.*` counters join the
    /// registry only when the plane has more than one tenant, so a
    /// one-tenant plane reproduces the golden capture byte for byte.
    /// When the plane is set, [`RunParams::burst`] is ignored — burst
    /// shapes are per-tenant ([`TenantSpec::burst`]).
    pub tenants: Option<TenantPlane>,
    /// Memory-access observatory (None = off, the zero-cost default:
    /// nothing registers and no hook fires, so disabled runs replay
    /// byte-identically to runs predating the observatory). When set,
    /// a [`paging::observe::MemObservatory`] attributes every
    /// prefetched page's fate (hit / late / wasted, with an exact
    /// conservation identity), tracks decayed page heat, per-window
    /// working-set size and per-shard heat shares, and the frozen
    /// report lands in [`RunResult::memory`].
    pub memory: Option<MemObsConfig>,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            offered_rps: 1_000_000.0,
            seed: 1,
            warmup: SimDuration::from_millis(20),
            measure: SimDuration::from_millis(80),
            local_mem_fraction: 0.2,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
            trace_capacity: None,
            spans: None,
            faults: None,
            telemetry: None,
            profile: None,
            tenants: None,
            memory: None,
        }
    }
}

/// Queue-depth and in-flight-fetch dynamics over the run.
pub struct Timeline {
    /// Central pending-queue depth, sampled at each arrival.
    pub queue_depth: desim::TimeSeries,
    /// Outstanding RDMA fetches, sampled at each arrival.
    pub inflight: desim::TimeSeries,
}

/// Aggregate statistics of one run, scoped to the measurement window.
///
/// This is a compatibility view derived from the run's [`Metrics`]
/// registry (see [`RunResult::metrics`] for the full registry snapshot,
/// including gauges and counters this struct does not carry).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Worker time burned busy-waiting (spinning), ns.
    pub spin_ns: u64,
    /// Preemptions performed (DiLOS-P).
    pub preemptions: u64,
    /// Faults that found the QP full and had to pause.
    pub qp_stalls: u64,
    /// Faults coalesced onto an in-flight fetch.
    pub coalesced: u64,
    /// Synchronous direct reclaims on the fault path.
    pub direct_reclaims: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Speculative/sequential prefetch fetches issued.
    pub prefetches: u64,
    /// Requests taken from a peer's queue (`PerWorkerStealing`).
    pub steals: u64,
}

impl SimStats {
    /// Rebuilds the compatibility view from a registry snapshot.
    fn from_snapshot(snap: &MetricsSnapshot) -> SimStats {
        let c = |name| snap.counter(name).unwrap_or(0);
        SimStats {
            spin_ns: c("spin_ns"),
            preemptions: c("preemptions"),
            qp_stalls: c("qp_stalls"),
            coalesced: c("coalesced"),
            direct_reclaims: c("direct_reclaims"),
            writebacks: c("writebacks"),
            prefetches: c("prefetches"),
            steals: c("steals"),
        }
    }
}

/// Handles to every counter/gauge the simulation registers, resolved
/// once at construction so hot-path updates are indexed adds.
struct MetricIds {
    spin_ns: CounterId,
    preemptions: CounterId,
    qp_stalls: CounterId,
    coalesced: CounterId,
    direct_reclaims: CounterId,
    writebacks: CounterId,
    prefetches: CounterId,
    steals: CounterId,
    dispatches: CounterId,
    completions: CounterId,
    drops: CounterId,
    reclaim_ticks: CounterId,
    rdma_data_msgs: CounterId,
    rdma_ctrl_msgs: CounterId,
    qp_full_retries: CounterId,
    fetch_retransmits: CounterId,
    fetch_cqe_errors: CounterId,
    fetch_failovers: CounterId,
    fetch_chain_failures: CounterId,
    fetch_aborts: CounterId,
    prefetch_errors: CounterId,
    writeback_errors: CounterId,
    injected_losses: CounterId,
    injected_cqe_errors: CounterId,
    queue_depth: GaugeId,
    qp_outstanding: GaugeId,
    fault_episode_active: GaugeId,
}

impl MetricIds {
    fn register(m: &mut Metrics) -> MetricIds {
        MetricIds {
            spin_ns: m.counter("spin_ns"),
            preemptions: m.counter("preemptions"),
            qp_stalls: m.counter("qp_stalls"),
            coalesced: m.counter("coalesced"),
            direct_reclaims: m.counter("direct_reclaims"),
            writebacks: m.counter("writebacks"),
            prefetches: m.counter("prefetches"),
            steals: m.counter("steals"),
            dispatches: m.counter("dispatches"),
            completions: m.counter("completions"),
            drops: m.counter("drops"),
            reclaim_ticks: m.counter("reclaim_ticks"),
            rdma_data_msgs: m.counter("rdma_data_msgs"),
            rdma_ctrl_msgs: m.counter("rdma_ctrl_msgs"),
            qp_full_retries: m.counter("nic.qp_full_retries"),
            fetch_retransmits: m.counter("fetch_retransmits"),
            fetch_cqe_errors: m.counter("fetch_cqe_errors"),
            fetch_failovers: m.counter("fetch_failovers"),
            fetch_chain_failures: m.counter("fetch_chain_failures"),
            fetch_aborts: m.counter("fetch_aborts"),
            prefetch_errors: m.counter("prefetch_errors"),
            writeback_errors: m.counter("writeback_errors"),
            injected_losses: m.counter("faults.injected_losses"),
            injected_cqe_errors: m.counter("faults.injected_cqe_errors"),
            queue_depth: m.gauge("queue_depth"),
            qp_outstanding: m.gauge("qp_outstanding"),
            fault_episode_active: m.gauge("fault_episode_active"),
        }
    }
}

/// Per-shard counter/gauge handles (see
/// [`desim::trace::shard_names`]). Registered only on multi-shard runs:
/// a single shard must serialise the exact pre-sharding metrics schema.
struct ShardMetricIds {
    fetches: CounterId,
    retransmits: CounterId,
    cqe_errors: CounterId,
    failovers: CounterId,
    chain_failures: CounterId,
    qp_outstanding: GaugeId,
}

impl ShardMetricIds {
    fn register(m: &mut Metrics, shard: usize) -> ShardMetricIds {
        use desim::trace::shard_names as sn;
        ShardMetricIds {
            fetches: m.counter(sn::FETCHES[shard]),
            retransmits: m.counter(sn::RETRANSMITS[shard]),
            cqe_errors: m.counter(sn::CQE_ERRORS[shard]),
            failovers: m.counter(sn::FAILOVERS[shard]),
            chain_failures: m.counter(sn::CHAIN_FAILURES[shard]),
            qp_outstanding: m.gauge(sn::QP_OUTSTANDING[shard]),
        }
    }
}

/// Per-dispatcher counter/gauge handles (see
/// [`desim::trace::dispatcher_names`]). Registered only when the
/// ingress plane has more than one dispatcher core: a single dispatcher
/// must serialise the exact pre-scaling metrics schema.
struct DispatcherMetricIds {
    admitted: CounterId,
    steals: CounterId,
    combines: CounterId,
    /// Per-core busy square wave; joins the registry only when an
    /// observer (telemetry or the profiler) wants it, mirroring the
    /// scalar `dispatcher.busy_fraction` gate of single-dispatcher runs.
    busy: Option<GaugeId>,
}

impl DispatcherMetricIds {
    fn register(m: &mut Metrics, d: usize, observed: bool) -> DispatcherMetricIds {
        use desim::trace::dispatcher_names as dn;
        DispatcherMetricIds {
            admitted: m.counter(dn::ADMITTED[d]),
            steals: m.counter(dn::STEALS[d]),
            combines: m.counter(dn::COMBINES[d]),
            busy: observed.then(|| m.gauge(dn::BUSY_FRACTION[d])),
        }
    }
}

/// One dispatcher-timeline charge, recorded only under `cfg(test)` so
/// the differential oracle (see the `oracle` test module) can replay
/// the admission arithmetic lock-step against a scalar reference.
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DispatchCharge {
    pub(crate) op: DispatchOp,
    /// Event-clock instant the charge was requested at.
    pub(crate) now: SimTime,
    /// Charged interval on the serving dispatcher's timeline.
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    /// Serving dispatcher core.
    pub(crate) disp: usize,
}

/// Kind of dispatcher-timeline charge (test-only; see [`DispatchCharge`]).
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum DispatchOp {
    /// Admission of one arrival (`dispatch_cost` + `client_stack`).
    Admit,
    /// Push-path handoff of a queued request to an idle worker.
    PushHandoff,
    /// Pull-path handoff to a worker that ran dry.
    PullHandoff,
    /// Recycle of one delegated TX completion.
    Recycle,
}

/// One memnode shard's measurement-window accounting.
#[derive(Debug, Clone)]
pub struct ShardWindow {
    /// Shard index.
    pub shard: usize,
    /// Bytes moved on the shard's RDMA data direction (memnode →
    /// compute) over the window.
    pub data_bytes: u64,
    /// Utilisation of the shard's data direction.
    pub data_util: f64,
    /// Demand-fetch latency (post → terminal clean CQE) of fetches
    /// completing inside the window.
    pub fetch_ns: desim::Histogram,
}

/// Per-tenant counter handles (see [`desim::trace::tenant_names`]).
/// Registered only on multi-tenant runs: a single-tenant plane must
/// serialise the exact pre-tenant metrics schema.
struct TenantMetricIds {
    arrivals: CounterId,
    admitted: CounterId,
    completions: CounterId,
    sheds: CounterId,
    drops: CounterId,
}

impl TenantMetricIds {
    fn register(m: &mut Metrics, tenant: usize) -> TenantMetricIds {
        use desim::trace::tenant_names as tn;
        TenantMetricIds {
            arrivals: m.counter(tn::ARRIVALS[tenant]),
            admitted: m.counter(tn::ADMITTED[tenant]),
            completions: m.counter(tn::COMPLETIONS[tenant]),
            sheds: m.counter(tn::SHEDS[tenant]),
            drops: m.counter(tn::DROPS[tenant]),
        }
    }
}

/// One tenant's measurement-window accounting (arrivals, sheds and
/// drops window on the request's TX instant; completions and latency
/// window on the reply's RX instant, mirroring the [`Recorder`]).
#[derive(Debug, Clone, Default)]
struct TenantAcct {
    arrivals: u64,
    admitted: u64,
    completed: u64,
    sheds: u64,
    drops: u64,
    latency: desim::Histogram,
}

/// A deterministic token bucket policing one tenant's admissions.
/// Pure f64 arithmetic, no rng draws: a policed run replays
/// byte-identically under the same arrival stream.
#[derive(Debug, Clone)]
struct TokenBucket {
    tokens: f64,
    rate_per_ns: f64,
    cap: f64,
    last: SimTime,
}

impl TokenBucket {
    fn new(rate_rps: f64, burst: u32) -> TokenBucket {
        TokenBucket {
            tokens: burst as f64,
            rate_per_ns: rate_rps / desim::NS_PER_SEC as f64,
            cap: burst as f64,
            last: SimTime::ZERO,
        }
    }

    /// Refills for the elapsed time and spends one token if available.
    fn admit(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last).as_nanos() as f64;
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate_per_ns).min(self.cap);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Per-tenant accounting outcomes (see `Simulation::tenant_note`).
#[derive(Clone, Copy)]
enum TenantEvent {
    Arrival,
    Admitted,
    Shed,
    Drop,
    Completion,
}

/// The tenant plane's runtime state (present only when
/// [`RunParams::tenants`] is set).
struct TenPlane {
    specs: Vec<TenantSpec>,
    /// `true` for low-priority tenants (shed-eligible, served last).
    lo: Vec<bool>,
    /// Dispatcher-queue depth beyond which low-priority arrivals shed.
    shed_watermark: Option<usize>,
    /// Per-tenant admission buckets (None = no policing).
    buckets: Vec<Option<TokenBucket>>,
    /// Per-tenant counter handles; empty on single-tenant planes
    /// (schema compatibility — see [`TenantMetricIds`]).
    ids: Vec<TenantMetricIds>,
    acct: Vec<TenantAcct>,
}

/// One tenant's measurement-window view (one entry per tenant in
/// [`RunResult::tenants`] whenever the plane was on).
#[derive(Debug, Clone)]
pub struct TenantWindow {
    /// Tenant id (index into the plane's spec list).
    pub tenant: usize,
    /// Display name from the spec.
    pub name: String,
    /// Priority class name (`"high"` / `"low"`).
    pub priority: &'static str,
    /// The tenant's configured offered rate.
    pub offered_rps: f64,
    /// Arrivals whose TX instant fell in the window.
    pub arrivals: u64,
    /// Arrivals that passed admission (token bucket + watermark).
    pub admitted: u64,
    /// Requests completing (reply RX) inside the window.
    pub completed: u64,
    /// Arrivals rejected by admission control.
    pub sheds: u64,
    /// Arrivals lost to queue overflow or fetch-chain aborts.
    pub drops: u64,
    /// End-to-end latency of the tenant's windowed completions.
    pub latency_ns: desim::Histogram,
    /// Verdict of the tenant's latency SLO rules over the window
    /// histogram (None = the spec carries no latency rule): for each
    /// `lat<OBJ:BUDGET@WINDOW` rule, the fraction of completions over
    /// `OBJ` must not exceed `BUDGET`.
    pub slo_ok: Option<bool>,
}

/// End-of-run request conservation: every generated arrival is exactly
/// one of completed, overflow-dropped, shed, aborted, or still live
/// when the drain window closed. Tracked unconditionally (plain
/// counters, no registry entries) and debug-asserted at run end.
#[derive(Debug, Clone, Copy, Default)]
pub struct Conservation {
    /// Requests generated by the arrival source.
    pub arrivals: u64,
    /// Requests that completed with a reply.
    pub completions: u64,
    /// Requests dropped on queue overflow (RX ring or pending cap).
    pub drops: u64,
    /// Requests shed by tenant admission control.
    pub sheds: u64,
    /// Requests aborted after fetch-chain exhaustion.
    pub aborts: u64,
    /// Requests still allocated when the run stopped draining.
    pub inflight_at_end: u64,
}

impl Conservation {
    /// Whether the identity
    /// `arrivals == completions + drops + sheds + aborts + inflight_at_end`
    /// holds.
    pub fn holds(&self) -> bool {
        self.arrivals
            == self.completions + self.drops + self.sheds + self.aborts + self.inflight_at_end
    }
}

/// Result of one run.
pub struct RunResult {
    /// Latency recorder (per-class histograms, breakdowns, drops).
    pub recorder: Recorder,
    /// Utilisation of the RDMA data direction (memory→compute) over the
    /// measurement window.
    pub rdma_data_util: f64,
    /// Utilisation of the RDMA control direction (compute→memory).
    pub rdma_ctrl_util: f64,
    /// Aggregate counters (compatibility view of [`RunResult::metrics`]).
    pub stats: SimStats,
    /// Full metrics-registry snapshot over the measurement window:
    /// every counter plus time-weighted gauges (queue depth, QP
    /// occupancy).
    pub metrics: MetricsSnapshot,
    /// Virtual-time event trace, sorted by simulated time (present only
    /// when [`RunParams::trace_capacity`] was set).
    pub trace: Option<Vec<TraceEvent>>,
    /// Trace events discarded because the ring buffer was full.
    pub trace_dropped: u64,
    /// Page-cache counters over the measurement window.
    pub cache: paging::cache::CacheStats,
    /// The offered load this run used.
    pub offered_rps: f64,
    /// Measurement window length.
    pub window: SimDuration,
    /// Workers configured.
    pub workers: usize,
    /// Optional dynamics timeline (see [`RunParams::timeline_bucket`]).
    pub timeline: Option<Timeline>,
    /// Span-layer report: per-stage histograms, critical-path
    /// attributions and tail exemplars (present when spans were on —
    /// see [`RunParams::spans`]).
    pub spans: Option<SpanReport>,
    /// Per-shard window accounting, one entry per configured memnode
    /// shard (a single entry on unsharded runs).
    pub shards: Vec<ShardWindow>,
    /// Per-tenant window accounting, one entry per tenant of the plane
    /// (empty when the run had no tenant plane — see
    /// [`RunParams::tenants`]).
    pub tenants: Vec<TenantWindow>,
    /// End-of-run request conservation, tracked on every run.
    pub conservation: Conservation,
    /// Continuous-telemetry report: bucketed counter/gauge series, SLO
    /// event log, per-QP/per-shard health trajectories, and fault
    /// episode annotations (present when [`RunParams::telemetry`] was
    /// set).
    pub telemetry: Option<TelemetryReport>,
    /// Core-profiler report: exhaustive per-core state tilings, the
    /// queueing observatory with Little's-law consistency scores, and
    /// the flamegraph/Perfetto exporters (present when
    /// [`RunParams::profile`] was set).
    pub profile: Option<ProfileReport>,
    /// Memory-access observatory report: prefetch-fate attribution with
    /// the exact conservation identity, decayed page-heat top-K,
    /// per-window working-set sizes, heatmap matrix, stride
    /// fingerprint and shard heat shares (present when
    /// [`RunParams::memory`] was set).
    pub memory: Option<MemReport>,
    /// Every dispatcher-core charge in commit order, for the
    /// differential oracle (test builds only).
    #[cfg(test)]
    pub(crate) dispatcher_log: Vec<DispatchCharge>,
}

impl RunResult {
    /// Summarises the run as one sweep point.
    pub fn point(&self) -> LoadPoint {
        let h = self.recorder.overall();
        LoadPoint {
            offered_rps: self.offered_rps,
            achieved_rps: self.recorder.achieved_rps(),
            p50_ns: h.percentile(50.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            mean_ns: h.mean(),
            drops: self.recorder.dropped(),
            rdma_util: self.rdma_data_util,
        }
    }

    /// Fraction of total worker time spent spinning.
    ///
    /// With the profiler on, this is derived from the per-core state
    /// tilings, whose denominator is *proven* to cover the window
    /// exactly (see [`desim::profile::CoreProfiler`]). Without it, the
    /// legacy counter ratio is used; its denominator assumes every
    /// worker exists for the full window — true today, but unchecked,
    /// which is why profiled runs prefer the tiling-derived value.
    pub fn spin_fraction(&self) -> f64 {
        match &self.profile {
            Some(p) => p.worker_spin_fraction(),
            None => {
                self.stats.spin_ns as f64 / (self.workers as f64 * self.window.as_nanos() as f64)
            }
        }
    }
}

/// Continuations a worker wake-up can carry.
#[derive(Debug, Clone, Copy)]
enum Cont {
    /// Begin (or re-begin after preemption) executing a request.
    Start { req: usize },
    /// Resume a yielded unithread whose fetch completed (map + switch).
    Resume { req: usize },
    /// Busy-wait finished: map the page and continue.
    AfterBusyWait { req: usize },
    /// Retry a fault that could not allocate or post.
    RetryFault { req: usize },
    /// A busy-waited fetch surfaced an error completion after retry
    /// exhaustion / failover-chain exhaustion: the request is dropped.
    AbortFault { req: usize },
}

#[derive(Debug)]
enum Ev {
    /// Request delivered to the node's RX path.
    Arrival { req: usize },
    /// Dispatcher finished admitting a request into the central queue.
    Admit { req: usize },
    /// A worker continues at its scheduled time.
    WorkerWake { worker: usize, cont: Cont },
    /// A page fetch CQE became pollable.
    FetchDone { worker: usize, page: u64 },
    /// A yielded request becomes runnable (after any kernel wake-up
    /// delay — nonzero only for Infiniswap).
    WaiterReady { req: usize },
    /// A reclaimer write-back completed on its dedicated QP (one per
    /// shard rail).
    WriteDone { shard: usize },
    /// Reclaimer processes its next batch.
    ReclaimTick,
    /// An intermediate error CQE of a failover chain becomes pollable;
    /// consuming it frees the QP slot on the shard's rail (the chain
    /// continued on another QP, so nothing resumes here).
    CqeRetire { shard: usize, qp: QpId },
    /// The flight recorder takes its next sample (scheduled only when
    /// telemetry is on; see [`RunParams::telemetry`]).
    TelemetryTick,
}

/// Cumulative fetch accounting for one telemetry entity (a worker QP or
/// a shard rail); the bridge diffs consecutive ticks to get rates.
#[derive(Debug, Clone, Copy, Default)]
struct FetchTally {
    fetches: u64,
    retransmits: u64,
    errors: u64,
}

impl FetchTally {
    fn since(&self, prev: &FetchTally) -> FetchTally {
        FetchTally {
            fetches: self.fetches - prev.fetches,
            retransmits: self.retransmits - prev.retransmits,
            errors: self.errors - prev.errors,
        }
    }
}

/// Glue between the simulation and the [`FlightRecorder`]: per-QP and
/// per-shard fetch tallies (for retransmit-rate and error-chain health
/// terms) plus the recorder itself. Health entities are registered in a
/// fixed order — worker QPs first, then shards — and
/// [`Simulation::on_telemetry_tick`] builds the inputs in that order.
struct TelemBridge {
    rec: FlightRecorder,
    qp_tally: Vec<FetchTally>,
    qp_prev: Vec<FetchTally>,
    shard_tally: Vec<FetchTally>,
    shard_prev: Vec<FetchTally>,
    /// Per-tenant arrival/shed tallies (multi-tenant runs with
    /// telemetry only; `fetches` carries arrivals and `errors` carries
    /// sheds — the health bridge reads them as offered load and
    /// admission failures).
    tenant_tally: Vec<FetchTally>,
    tenant_prev: Vec<FetchTally>,
    /// Expected arrivals per telemetry tick for each tenant (its
    /// configured rate × the tick period) — the capacity term of the
    /// tenant's health score.
    tenant_per_tick: Vec<f64>,
    /// Adaptive-RTO transport gauges per shard rail, sampled each tick
    /// just before the recorder: `(srtt_us, rttvar_us, rto_us)`.
    /// Registered as `nic.*` on single-shard runs and `shardN.*`
    /// otherwise; zero until the estimator has its first RTT sample
    /// (the effective RTO gauge always carries the armed value, fixed
    /// ladder included).
    rto_ids: Vec<(GaugeId, GaugeId, GaugeId)>,
}

/// Per-request prefetch-pattern detector.
enum Detector {
    None,
    Seq(SeqDetector),
    Leap(LeapDetector),
}

impl Detector {
    fn new(kind: PrefetcherKind) -> Detector {
        match kind {
            PrefetcherKind::None => Detector::None,
            PrefetcherKind::Readahead { window } => Detector::Seq(SeqDetector::new(window)),
            PrefetcherKind::Leap { window, depth } => {
                Detector::Leap(LeapDetector::new(window, depth))
            }
        }
    }

    /// Returns `(stride, count)` of pages to prefetch after a fault.
    fn on_fault(&mut self, page: u64) -> (i64, u32) {
        match self {
            Detector::None => (0, 0),
            Detector::Seq(d) => (1, d.on_fault(page)),
            Detector::Leap(d) => d.on_fault(page),
        }
    }
}

struct Req {
    trace: Trace,
    step: usize,
    /// Tenant the request belongs to (0 on single-source runs).
    tenant: u16,
    /// Dispatcher core that admitted the request and owns its handoff /
    /// recycle work (0 on single-dispatcher runs).
    disp: u16,
    /// Ingress slot the arrival was steered to (equals `disp` unless a
    /// sibling stole the admission; 0 on single-dispatcher runs).
    ingress_slot: u16,
    /// Load-generator hardware TX timestamp.
    tx_time: SimTime,
    /// When the request last started running on a worker (preemption
    /// epoch).
    sched_epoch: SimTime,
    /// Worker currently responsible (valid once started).
    worker: usize,
    /// When the current fault's fetch completed.
    fetch_done_at: SimTime,
    started: bool,
    /// Span tree under construction (present when the span layer is
    /// on). All latency attribution derives from it.
    spans: Option<SpanBuilder>,
    detector: Detector,
    /// Previous page this request touched (observatory stride
    /// fingerprint; maintained only when the observatory is on).
    obs_last_page: Option<u64>,
}

struct Worker {
    busy: bool,
    /// Worker timeline high-water mark: it can accept new work only at
    /// or after this instant.
    free_at: SimTime,
    qp: QpId,
    /// Yielded unithreads whose fetches completed (ready to resume).
    resumes: VecDeque<usize>,
    /// Per-worker queue (Hermit / d-FCFS ablation).
    local_queue: VecDeque<usize>,
    /// A fault paused on a full QP.
    blocked: Option<(usize, SimTime)>,
}

/// How a demand-fetch chain resolved (see `Simulation::issue_fetch`).
struct FetchOutcome {
    /// QP carrying the terminal completion.
    qp: QpId,
    /// When the terminal completion becomes pollable.
    done_at: SimTime,
    /// Terminal completion is an error (chain exhausted).
    failed: bool,
}

struct Inflight {
    done_at: SimTime,
    /// QP whose CQE retires this fetch (the failover QP when the fetch
    /// chain migrated off the faulting worker's QP).
    qp: QpId,
    /// The terminal completion is an error: at `done_at` the page is
    /// still remote and every requester must abort.
    failed: bool,
    /// Yield-policy waiters (request ids) to resume on completion.
    waiters: Vec<usize>,
    /// Completion consumed early by a worker that caught up with it.
    completed_early: bool,
}

#[derive(PartialEq)]
enum ReclaimState {
    Idle,
    Scheduled,
}

/// The arrival source (Poisson, MMPP, or a merged multi-tenant mix).
enum Arrivals {
    Poisson(OpenLoop),
    Bursty(BurstyLoop),
    Tenant(TenantMix),
}

impl Arrivals {
    /// Next arrival instant and the tenant it belongs to (tenant 0 for
    /// the single-source legacy paths).
    fn next_arrival(&mut self) -> (SimTime, u16) {
        match self {
            Arrivals::Poisson(p) => (p.next_arrival(), 0),
            Arrivals::Bursty(b) => (b.next_arrival(), 0),
            Arrivals::Tenant(m) => m.next_arrival(),
        }
    }
}

/// Bits of [`Simulation::obs_mask`]: which optional observability
/// layers are enabled for this run.
mod obs {
    /// Virtual-time event tracing ([`RunParams::trace_capacity`]).
    ///
    /// [`RunParams::trace_capacity`]: super::RunParams::trace_capacity
    pub const TRACE: u8 = 1 << 0;
    /// The span layer ([`RunParams::spans`] or kept breakdowns).
    ///
    /// [`RunParams::spans`]: super::RunParams::spans
    pub const SPANS: u8 = 1 << 1;
    /// The core profiler + queueing observatory
    /// ([`RunParams::profile`]).
    ///
    /// [`RunParams::profile`]: super::RunParams::profile
    pub const PROFILE: u8 = 1 << 2;
    /// The memory-access observatory ([`RunParams::memory`]).
    ///
    /// [`RunParams::memory`]: super::RunParams::memory
    pub const MEMORY: u8 = 1 << 3;
}

/// The core profiler's runtime state: the per-core tiler, park
/// bookkeeping, and one [`QueueProbe`] (+ registered depth gauge) per
/// instrumented queue. Present only when [`RunParams::profile`] is set.
///
/// Core indexing: cores `0..wbase` are the dispatcher cores (one on
/// single-dispatcher runs, labelled `dispatcher`; `dispatcherN`
/// otherwise), core `wbase + w` is worker `w`.
struct ProfPlane {
    cores: CoreProfiler,
    /// First worker core index (= the dispatcher count).
    wbase: usize,
    /// Parked (yielded, fetch outstanding) unithreads per worker —
    /// decides whether an idle gap is `Park` or `Idle`.
    parked: Vec<u32>,
    /// Window-clamped ns workers spent waiting for a free frame. These
    /// tile as `FetchWait` but the legacy `spin_ns` counter never
    /// booked them, so the spin-fraction cross-check subtracts them.
    frame_wait_ns: u64,
    /// Dispatcher ingress queue (the central `pending` queue).
    ingress: QueueProbe,
    ingress_gauge: GaugeId,
    /// Per-dispatcher ingress slots (arrivals awaiting their admit
    /// tick); empty on single-dispatcher runs.
    dingress: Vec<QueueProbe>,
    dingress_gauges: Vec<Option<GaugeId>>,
    /// Per-worker runnable (resume) queues.
    runnable: Vec<QueueProbe>,
    runnable_gauges: Vec<Option<GaugeId>>,
    /// Per-shard NIC send-queue occupancy (all QPs on the rail).
    sq: Vec<QueueProbe>,
    sq_gauges: Vec<Option<GaugeId>>,
    /// Per-shard deferred write-back queues.
    wb: Vec<QueueProbe>,
    wb_gauges: Vec<Option<GaugeId>>,
}

/// One compute node + memory node + load generator, ready to run.
pub struct Simulation<'w> {
    cfg: SystemConfig,
    params: RunParams,
    events: EventQueue<Ev>,
    eth: EthPort,
    /// One NIC rail per memnode shard, each with the full per-worker /
    /// writeback / failover QP layout. A fetch posts on its page's
    /// shard rail, so shards queue and account independently.
    nics: Vec<RdmaNic>,
    /// Deterministic page → shard → memnode placement.
    shard_map: ShardMap,
    /// Memory nodes, indexed by global node id: shard `s`'s replica
    /// chain occupies `s * replicas .. (s + 1) * replicas`. Demand
    /// fetches start at the shard's primary and fail over round-robin
    /// along the chain on error completions.
    mems: Vec<MemNode>,
    /// Deterministic fault injector consulted by every NIC post (the
    /// inert plane draws nothing and perturbs nothing).
    plane: FaultPlane,
    /// Plane counters at the warm-up boundary (window re-basing).
    plane_start: FaultStats,
    cache: PageCache,
    workload: &'w mut dyn Workload,
    arrivals: Arrivals,
    recorder: Recorder,
    rng: Rng,
    reqs: Vec<Option<Req>>,
    free_reqs: Vec<usize>,
    /// Retired requests' step buffers, recycled through
    /// [`Workload::next_request_into`] so steady-state arrivals perform
    /// no per-request trace allocation.
    trace_pool: Vec<Trace>,
    /// Observability feature mask ([`obs`]): resolved once at
    /// construction so disabled layers cost one integer test per
    /// emission site instead of a virtual call or `Option` chain.
    obs_mask: u8,
    workers: Vec<Worker>,
    pending: VecDeque<usize>,
    /// Low-priority central queue, used only when a tenant plane is
    /// on: the dispatcher serves `pending` (high priority) first.
    /// Empty — and never touched — on plane-off runs, so the legacy
    /// path is byte-identical.
    pending_lo: VecDeque<usize>,
    /// Priority-split dispatcher ingress, used only when a tenant
    /// plane is on: arrivals waiting for their admit tick are popped
    /// high-priority-first instead of FIFO, so a high-priority request
    /// never queues behind a low-priority backlog at admission. Admit
    /// tick *timing* is unchanged — only the identity served at each
    /// tick is reordered. Empty on plane-off runs.
    ingress_hi: VecDeque<usize>,
    ingress_lo: VecDeque<usize>,
    /// Tenant-plane runtime state (None = plane off).
    tenplane: Option<TenPlane>,
    /// Request-conservation tallies (`inflight_at_end` is derived at
    /// run end from the live request slots).
    cons: Conservation,
    rr_next: usize,
    /// One admission timeline per dispatcher core (`max`-clamped
    /// high-water marks; index 0 reproduces the scalar pre-scaling
    /// timeline bit-for-bit on single-dispatcher runs).
    dispatcher_free: Vec<SimTime>,
    /// Arrivals published to each dispatcher's ingress slot that have
    /// not reached their admit tick yet (rx-ring bounded per slot).
    admission_backlog: Vec<usize>,
    /// RSS-style steering of arrivals onto ingress slots (constant 0
    /// with one dispatcher).
    fanin: IngressFanIn,
    /// Flat-combining state: the current combiner, its batch window's
    /// end, members so far, and the end of the last admission charged
    /// under the combiner lock (admissions stay globally FIFO — the
    /// combiner role is exclusive, only its *cost* is amortised).
    fc_leader: usize,
    fc_until: SimTime,
    fc_count: usize,
    fc_tail: SimTime,
    /// Per-dispatcher metric handles; empty on single-dispatcher runs
    /// (schema compatibility — see [`DispatcherMetricIds`]).
    disp_ids: Vec<DispatcherMetricIds>,
    /// Dispatcher-timeline charges for the differential oracle.
    #[cfg(test)]
    dispatcher_log: Vec<DispatchCharge>,
    inflight: FxHashMap<u64, Inflight>,
    /// Superseded fetch records: a fetch whose completion was consumed
    /// early can see its page evicted and re-faulted while its
    /// `FetchDone` event is still queued. The re-fault moves the old
    /// record here (keyed by page + completion time) so the stale event
    /// still frees the right QP slot and wakes its own waiters instead
    /// of stealing the live entry's.
    orphan_fetches: Vec<(u64, Inflight)>,
    /// Per-shard dirty pages whose write-back is waiting for that
    /// shard's reclaimer-QP slot.
    deferred_writebacks: Vec<VecDeque<u64>>,
    reclaim_state: ReclaimState,
    gen_end: SimTime,
    metrics: Metrics,
    ids: MetricIds,
    /// Per-shard metric handles; empty on single-shard runs (schema
    /// compatibility — see [`ShardMetricIds`]).
    shard_ids: Vec<ShardMetricIds>,
    /// Per-shard demand-fetch latency over the measurement window.
    shard_fetch_ns: Vec<desim::Histogram>,
    tracer: Box<dyn Tracer>,
    span_store: Option<SpanStore>,
    /// Per-shard (data, ctrl) link snapshots at the warm-up boundary.
    start_snap: Option<Vec<(fabric::link::LinkSnapshot, fabric::link::LinkSnapshot)>>,
    end_snap: Option<Vec<(fabric::link::LinkSnapshot, fabric::link::LinkSnapshot)>>,
    cache_start: Option<paging::cache::CacheStats>,
    cache_end: Option<paging::cache::CacheStats>,
    metrics_snap: Option<MetricsSnapshot>,
    last_now: SimTime,
    warmup_end: SimTime,
    measure_end: SimTime,
    timeline: Option<Timeline>,
    /// Continuous-telemetry bridge (None = telemetry off; see
    /// [`RunParams::telemetry`]).
    telem: Option<TelemBridge>,
    /// Core profiler + queueing observatory (None = profiler off; see
    /// [`RunParams::profile`]).
    prof: Option<ProfPlane>,
    /// Dispatcher-utilization gauge, registered when telemetry or the
    /// profiler is on (the window-aggregate gauge value in the metrics
    /// snapshot is time-weighted and therefore *is* the busy fraction;
    /// per-tick telemetry series sample the instantaneous 0/1 level).
    dispatcher_busy_gauge: Option<GaugeId>,
    /// Memory-access observatory (None = off; see
    /// [`RunParams::memory`]).
    memobs: Option<MemObsPlane>,
}

/// The memory observatory's runtime state: the bounded-memory
/// attribution/heat core plus the registry handles its window
/// rollovers publish into (all registered only when the observatory is
/// on, so disabled runs keep the golden serialisation schema).
struct MemObsPlane {
    obs: MemObservatory,
    /// Distinct pages touched in the last closed window.
    ws_pages: GaugeId,
    /// `max/mean` shard heat share.
    heat_skew: GaugeId,
    /// Cumulative strict prefetch hit-rate.
    hit_rate: GaugeId,
    /// Rows/records dropped by bounded-memory caps (mirrors the
    /// `trace_dropped` convention: explicit, never silent).
    obs_dropped: CounterId,
    /// `shardN.heat_share` gauges (empty on single-shard runs).
    heat_share: Vec<GaugeId>,
    /// `obs_dropped` value already mirrored into the registry counter.
    dropped_synced: u64,
}

impl<'w> Simulation<'w> {
    /// Builds a simulation of `cfg` running `workload` under `params`.
    ///
    /// The workload is borrowed so an expensive application dataset can
    /// be built once and swept over many load points.
    ///
    /// # Panics
    ///
    /// Panics if `local_mem_fraction` is outside `(0, 1]`.
    pub fn new(
        cfg: SystemConfig,
        workload: &'w mut dyn Workload,
        mut params: RunParams,
    ) -> Simulation<'w> {
        assert!(
            params.local_mem_fraction > 0.0 && params.local_mem_fraction <= 1.0,
            "local_mem_fraction must be in (0, 1]"
        );
        assert!(cfg.workers >= 1, "at least one worker required");
        let total_pages = workload.total_pages();
        let capacity = ((total_pages as f64 * params.local_mem_fraction).round() as usize)
            .clamp(16, total_pages as usize);
        let mut cache = PageCache::new(capacity, total_pages, cfg.eviction);
        let mut rng = Rng::new(params.seed ^ 0xC0FF_EE00);

        // Warm the cache to its steady-state fill (free list sitting at
        // the high watermark) so measurement starts in steady state.
        let fill = if capacity == total_pages as usize {
            capacity
        } else {
            capacity - cfg.watermarks.high_frames(capacity)
        };
        match workload.warm_pages() {
            Some(pages) => cache.warm_with(pages.into_iter().take(fill)),
            None => cache.warm(fill, &mut rng.fork(1)),
        }

        let warmup_end = SimTime::ZERO + params.warmup;
        let measure_end = warmup_end + params.measure;
        // One shared allocation for the fabric cost constants: every
        // NIC rail references it instead of carrying a private copy.
        let fabric_params: Rc<FabricParams> = Rc::new(cfg.fabric.clone());
        let workers = (0..cfg.workers)
            .map(|i| Worker {
                busy: false,
                free_at: SimTime::ZERO,
                qp: QpId(i as u32),
                resumes: VecDeque::new(),
                local_queue: VecDeque::new(),
                blocked: None,
            })
            .collect();

        let classes = workload.classes().len();
        let mut recorder = Recorder::new(warmup_end, measure_end, classes);
        recorder.keep_breakdowns(params.keep_breakdowns);

        let mut metrics = Metrics::new();
        let ids = MetricIds::register(&mut metrics);
        let shards = cfg.shards();
        let replicas = cfg.replicas();
        // Per-shard names join the registry only when sharding is on:
        // the single-shard schema must stay bit-identical to the
        // pre-sharding output.
        let shard_ids = if shards > 1 {
            (0..shards)
                .map(|s| ShardMetricIds::register(&mut metrics, s))
                .collect()
        } else {
            Vec::new()
        };
        let shard_map = ShardMap::new(shards, replicas, total_pages, cfg.shard_policy);

        // Tenant plane: the merged arrival mix is built from the spec
        // list, and per-tenant counter names join the registry only
        // when the plane has more than one tenant (a one-tenant plane
        // must serialise the exact pre-tenant schema). Registration
        // happens here — before the flight recorder below — so
        // telemetry runs sample the tenant counters too.
        let plane = params.tenants.take();
        let tenant_mix = plane.as_ref().map(|p| TenantMix::new(p, params.seed));
        let tenplane = plane.map(|p| {
            let n = p.specs.len();
            let ids = if n > 1 {
                (0..n)
                    .map(|t| TenantMetricIds::register(&mut metrics, t))
                    .collect()
            } else {
                Vec::new()
            };
            TenPlane {
                lo: p
                    .specs
                    .iter()
                    .map(|s| s.priority == TenantPriority::Low)
                    .collect(),
                buckets: p
                    .specs
                    .iter()
                    .map(|s| s.bucket_rps.map(|r| TokenBucket::new(r, s.bucket_burst)))
                    .collect(),
                acct: vec![TenantAcct::default(); n],
                ids,
                shed_watermark: p.shed_watermark,
                specs: p.specs,
            }
        });

        // Dispatcher scaling: per-dispatcher counters join the registry
        // only when the ingress plane has more than one core, mirroring
        // the shard/tenant gating discipline — a single dispatcher must
        // serialise the exact pre-scaling schema.
        let ndisp = cfg.ndispatchers();
        let observed = params.telemetry.is_some() || params.profile.is_some();
        let disp_ids = if ndisp > 1 {
            (0..ndisp)
                .map(|d| DispatcherMetricIds::register(&mut metrics, d, observed))
                .collect()
        } else {
            Vec::new()
        };
        // Dispatcher utilization joins the registry only when an
        // observer (telemetry or the profiler) wants it: the default
        // schema must stay byte-identical to the golden capture. With
        // more than one dispatcher the scalar gauge gives way to the
        // per-core `dispatcherN.busy_fraction` gauges above.
        let dispatcher_busy_gauge =
            (ndisp == 1 && observed).then(|| metrics.gauge("dispatcher.busy_fraction"));
        // The profiler's probes and depth gauges, like every other
        // instrument, must register before the flight recorder below so
        // telemetry runs sample them.
        let prof = params.profile.take().map(|pc| {
            let mut cores = CoreProfiler::new(warmup_end, measure_end, &pc);
            if ndisp == 1 {
                cores.add_core("dispatcher".to_string(), false);
            } else {
                for d in 0..ndisp {
                    cores.add_core(format!("dispatcher{d}"), false);
                }
            }
            for w in 0..cfg.workers {
                cores.add_core(format!("worker{w}"), true);
            }
            ProfPlane {
                cores,
                wbase: ndisp,
                parked: vec![0; cfg.workers],
                frame_wait_ns: 0,
                ingress: QueueProbe::new("ingress".to_string(), warmup_end, measure_end),
                ingress_gauge: metrics.gauge(queue_names::INGRESS),
                dingress: if ndisp > 1 {
                    (0..ndisp)
                        .map(|d| QueueProbe::new(format!("d{d}.ingress"), warmup_end, measure_end))
                        .collect()
                } else {
                    Vec::new()
                },
                dingress_gauges: if ndisp > 1 {
                    (0..ndisp)
                        .map(|d| queue_names::D_INGRESS.get(d).map(|n| metrics.gauge(n)))
                        .collect()
                } else {
                    Vec::new()
                },
                runnable: (0..cfg.workers)
                    .map(|w| QueueProbe::new(format!("w{w}.runnable"), warmup_end, measure_end))
                    .collect(),
                runnable_gauges: (0..cfg.workers)
                    .map(|w| queue_names::RUNNABLE.get(w).map(|n| metrics.gauge(n)))
                    .collect(),
                sq: (0..shards)
                    .map(|s| QueueProbe::new(format!("shard{s}.sq"), warmup_end, measure_end))
                    .collect(),
                sq_gauges: (0..shards)
                    .map(|s| queue_names::SQ.get(s).map(|n| metrics.gauge(n)))
                    .collect(),
                wb: (0..shards)
                    .map(|s| {
                        QueueProbe::new(format!("shard{s}.writeback"), warmup_end, measure_end)
                    })
                    .collect(),
                wb_gauges: (0..shards)
                    .map(|s| queue_names::WRITEBACK.get(s).map(|n| metrics.gauge(n)))
                    .collect(),
            }
        });

        // The scenario and telemetry configs are consumed, not cloned:
        // neither is read again after construction.
        let plane = match params.faults.take() {
            Some(s) => FaultPlane::new(s, params.seed ^ 0xFA17_1A7E_0000_0001),
            None => FaultPlane::inert(),
        };

        use desim::trace::shard_names as sn;
        // Memory-access observatory: registers its gauges/counter only
        // when enabled (and before the flight recorder, so telemetry
        // ticks sample them). Disabled runs register nothing and stay
        // byte-identical to the golden capture.
        let memobs = params.memory.take().map(|mc| MemObsPlane {
            obs: MemObservatory::new(mc, total_pages, shards),
            ws_pages: metrics.gauge("memory.ws_pages"),
            heat_skew: metrics.gauge("memory.heat_skew"),
            hit_rate: metrics.gauge("memory.prefetch_hit_rate"),
            obs_dropped: metrics.counter("memory.obs_dropped"),
            heat_share: if shards > 1 {
                (0..shards)
                    .map(|s| metrics.gauge(sn::HEAT_SHARE[s]))
                    .collect()
            } else {
                Vec::new()
            },
            dropped_synced: 0,
        });

        // Adaptive-RTO transport gauges: telemetry-gated (they exist to
        // be sampled by the flight recorder) and registered before it.
        let rto_ids: Vec<(GaugeId, GaugeId, GaugeId)> = if params.telemetry.is_some() {
            if shards == 1 {
                vec![(
                    metrics.gauge("nic.srtt_us"),
                    metrics.gauge("nic.rttvar_us"),
                    metrics.gauge("nic.rto_us"),
                )]
            } else {
                (0..shards)
                    .map(|s| {
                        (
                            metrics.gauge(sn::SRTT_US[s]),
                            metrics.gauge(sn::RTTVAR_US[s]),
                            metrics.gauge(sn::RTO_US[s]),
                        )
                    })
                    .collect()
            }
        } else {
            Vec::new()
        };

        // The flight recorder samples the instrument set as registered
        // above (ids + per-shard ids), so it must be built after them.
        // Health entities: one per worker QP, then one per shard rail.
        let telem = params.telemetry.take().map(|tc| {
            let mut rec = FlightRecorder::new(tc, &metrics);
            for w in 0..cfg.workers {
                rec.register_health(format!("qp{w}"));
            }
            for s in 0..shards {
                rec.register_health(format!("shard{s}"));
            }
            // Tenant health entities follow the shards, mirroring the
            // counter-registration gate: multi-tenant planes only.
            let tenants = tenplane.as_ref().map_or(0, |tp| {
                if tp.specs.len() > 1 {
                    tp.specs.len()
                } else {
                    0
                }
            });
            for t in 0..tenants {
                rec.register_health(format!("tenant{t}"));
            }
            let tick_s = rec.tick_period().as_secs_f64();
            TelemBridge {
                tenant_per_tick: (0..tenants)
                    .map(|t| tenplane.as_ref().expect("tenants > 0").specs[t].rate_rps * tick_s)
                    .collect(),
                rec,
                qp_tally: vec![FetchTally::default(); cfg.workers],
                qp_prev: vec![FetchTally::default(); cfg.workers],
                shard_tally: vec![FetchTally::default(); shards],
                shard_prev: vec![FetchTally::default(); shards],
                tenant_tally: vec![FetchTally::default(); tenants],
                tenant_prev: vec![FetchTally::default(); tenants],
                rto_ids,
            }
        });

        let tracer: Box<dyn Tracer> = match params.trace_capacity {
            Some(cap) => Box::new(RingTracer::new(cap)),
            None => Box::new(NoopTracer),
        };
        // Breakdowns are derived from span trees, so keeping them
        // implies the span layer (stats-only: the recorder holds the
        // per-request rows itself).
        let span_store = params
            .spans
            .or(if params.keep_breakdowns {
                Some(SpanConfig::stats_only())
            } else {
                None
            })
            .map(SpanStore::new);
        let obs_mask = (if tracer.enabled() { obs::TRACE } else { 0 })
            | (if span_store.is_some() { obs::SPANS } else { 0 })
            | (if prof.is_some() { obs::PROFILE } else { 0 })
            | (if memobs.is_some() { obs::MEMORY } else { 0 });

        Simulation {
            events: EventQueue::new(),
            eth: EthPort::new(&fabric_params),
            // One NIC rail per shard; each rail carries one QP per
            // worker, the reclaimer's write-back QP, and the failover
            // QP used by fetch chains re-issued after an error
            // completion.
            nics: (0..shards)
                .map(|_| RdmaNic::new(fabric_params.clone(), cfg.workers as u32 + 2))
                .collect(),
            // Every shard's chain exports the full page space
            // (address-preserving, like the pre-sharding replicas), so
            // re-mapping a page is purely a routing decision.
            mems: (0..shards * replicas)
                .map(|i| MemNode::new(total_pages, PAGE_SIZE as u32).with_id(i as u32))
                .collect(),
            shard_map,
            plane,
            plane_start: FaultStats::default(),
            cache,
            arrivals: match tenant_mix {
                Some(mix) => Arrivals::Tenant(mix),
                None => match params.burst {
                    None => Arrivals::Poisson(OpenLoop::new(params.offered_rps, params.seed)),
                    Some((peak, phase)) => Arrivals::Bursty(BurstyLoop::new(
                        params.offered_rps,
                        peak,
                        phase,
                        params.seed,
                    )),
                },
            },
            recorder,
            rng,
            reqs: Vec::new(),
            free_reqs: Vec::new(),
            trace_pool: Vec::new(),
            obs_mask,
            workers,
            pending: VecDeque::new(),
            pending_lo: VecDeque::new(),
            ingress_hi: VecDeque::new(),
            ingress_lo: VecDeque::new(),
            tenplane,
            cons: Conservation::default(),
            rr_next: 0,
            dispatcher_free: vec![SimTime::ZERO; ndisp],
            admission_backlog: vec![0; ndisp],
            fanin: IngressFanIn::new(ndisp, params.seed ^ 0xD15A_7C48_0000_0001),
            fc_leader: 0,
            fc_until: SimTime::ZERO,
            fc_count: 0,
            fc_tail: SimTime::ZERO,
            disp_ids,
            #[cfg(test)]
            dispatcher_log: Vec::new(),
            inflight: FxHashMap::default(),
            orphan_fetches: Vec::new(),
            deferred_writebacks: vec![VecDeque::new(); shards],
            reclaim_state: ReclaimState::Idle,
            gen_end: measure_end,
            metrics,
            ids,
            shard_ids,
            shard_fetch_ns: vec![desim::Histogram::new(); shards],
            tracer,
            span_store,
            start_snap: None,
            end_snap: None,
            cache_start: None,
            cache_end: None,
            metrics_snap: None,
            last_now: SimTime::ZERO,
            warmup_end,
            measure_end,
            timeline: params.timeline_bucket.map(|b| Timeline {
                queue_depth: desim::TimeSeries::new(b),
                inflight: desim::TimeSeries::new(b),
            }),
            telem,
            prof,
            dispatcher_busy_gauge,
            memobs,
            workload,
            cfg,
            params,
        }
    }

    /// Runs to completion and returns the results.
    pub fn run(mut self) -> RunResult {
        self.schedule_next_arrival();
        if let Some(b) = &self.telem {
            self.events
                .push(SimTime::ZERO + b.rec.tick_period(), Ev::TelemetryTick);
        }
        let drain_end = self.measure_end + SimDuration::from_millis(20);
        while let Some((now, ev)) = self.events.pop() {
            if self.start_snap.is_none() && now >= self.warmup_end {
                // Warm-up → measure boundary: every counter, gauge and
                // cache statistic re-bases here so rates cover only the
                // measurement window.
                self.start_snap = Some(Self::link_snapshots(&self.nics));
                self.cache_start = Some(self.cache.stats());
                if let Some(b) = &mut self.telem {
                    // Bank the counts accrued since the last tick:
                    // the imminent reset would otherwise drop them
                    // from every rate series.
                    b.rec.bank(&self.metrics);
                }
                self.metrics.reset(now);
                if let Some(b) = &mut self.telem {
                    // The reset zeroed every counter; re-sync the
                    // recorder's baselines so the next tick's deltas
                    // stay meaningful.
                    b.rec.rebase(&self.metrics);
                }
                self.plane_start = self.plane.stats();
            }
            if self.end_snap.is_none() && now >= self.measure_end {
                self.end_snap = Some(Self::link_snapshots(&self.nics));
                self.cache_end = Some(self.cache.stats());
                self.finalize_window(now);
            }
            if now > drain_end {
                break;
            }
            self.last_now = now;
            self.handle(now, ev);
        }
        // Light-load runs can drain the event queue before reaching the
        // boundaries; fall back to the final counters.
        if self.end_snap.is_none() {
            self.end_snap = Some(Self::link_snapshots(&self.nics));
            self.cache_end = Some(self.cache.stats());
            self.finalize_window(self.last_now);
        }
        let window = self.params.measure;
        // Utilisation is the mean across shard rails (equal to the
        // single rail's utilisation on unsharded runs); the per-shard
        // view keeps each rail's own numbers.
        let (data_util, ctrl_util, shard_windows) = match (&self.start_snap, &self.end_snap) {
            (Some(s0), Some(s1)) => {
                let n = s0.len() as f64;
                let data: f64 = s0
                    .iter()
                    .zip(s1)
                    .map(|((d0, _), (d1, _))| Link::utilization(d0, d1, window))
                    .sum();
                let ctrl: f64 = s0
                    .iter()
                    .zip(s1)
                    .map(|((_, c0), (_, c1))| Link::utilization(c0, c1, window))
                    .sum();
                let windows = s0
                    .iter()
                    .zip(s1)
                    .enumerate()
                    .map(|(s, ((d0, _), (d1, _)))| ShardWindow {
                        shard: s,
                        data_bytes: d1.bytes - d0.bytes,
                        data_util: Link::utilization(d0, d1, window),
                        fetch_ns: std::mem::take(&mut self.shard_fetch_ns[s]),
                    })
                    .collect();
                (data / n, ctrl / n, windows)
            }
            _ => (0.0, 0.0, Vec::new()),
        };
        let metrics = self.metrics_snap.expect("window finalized above");
        let cache = match (self.cache_start, self.cache_end) {
            (Some(start), Some(end)) => end.since(&start),
            (None, Some(end)) => end,
            _ => unreachable!("cache_end set above"),
        };
        let trace = if self.params.trace_capacity.is_some() {
            let mut events = self.tracer.drain();
            // Worker virtual clocks run slightly ahead of the event
            // clock, so records arrive almost — not exactly — in time
            // order; present the timeline sorted (stable, so equal
            // timestamps keep emission order and stay deterministic).
            events.sort_by_key(|e| e.at);
            Some(events)
        } else {
            None
        };
        // Annotate the telemetry report with the fault episodes that
        // were scheduled, so breaches can be read against the injected
        // disturbance (link episodes hit every series; node episodes
        // are pinned to the shard whose chain the node belongs to).
        let replicas = self.cfg.replicas();
        let telemetry = self.telem.take().map(|b| {
            let episodes = self
                .params
                .faults
                .as_ref()
                .map(|sc| {
                    sc.episodes
                        .iter()
                        .map(|ep| {
                            let (kind, affected) = match ep.kind {
                                faults::EpisodeKind::LinkDegraded { .. } => {
                                    ("link_degraded", vec!["*".to_string()])
                                }
                                faults::EpisodeKind::NodeStall { node, .. } => (
                                    "node_stall",
                                    vec![format!("shard{}", node as usize / replicas)],
                                ),
                                faults::EpisodeKind::NodeDown { node } => (
                                    "node_down",
                                    vec![format!("shard{}", node as usize / replicas)],
                                ),
                            };
                            EpisodeNote {
                                start: ep.start,
                                end: ep.end,
                                kind,
                                affected,
                            }
                        })
                        .collect()
                })
                .unwrap_or_default();
            b.rec.finish(episodes)
        });
        // Close every core's tail gap at the window end and freeze the
        // tilings; queue reports keep a fixed order (ingress,
        // per-dispatcher ingress slots when scaled, per-worker runnable,
        // per-shard SQ, per-shard write-back) so serialisation is
        // deterministic.
        let profile = self.prof.take().map(|p| {
            let mut queues = Vec::with_capacity(
                1 + p.dingress.len() + p.runnable.len() + p.sq.len() + p.wb.len(),
            );
            queues.push(p.ingress.report());
            queues.extend(p.dingress.iter().map(QueueProbe::report));
            queues.extend(p.runnable.iter().map(QueueProbe::report));
            queues.extend(p.sq.iter().map(QueueProbe::report));
            queues.extend(p.wb.iter().map(QueueProbe::report));
            p.cores.finish(queues, p.frame_wait_ns)
        });
        let stats = SimStats::from_snapshot(&metrics);
        // Satellite cross-check: on fault-free runs the legacy spin
        // counter and the tiling-derived spin time must agree. They
        // cannot agree exactly — the counter bins whole spin intervals
        // at the instant they are issued (a spin straddling the warm-up
        // boundary is booked whole or zeroed by the reset) while the
        // profiler clamps every accrual to the window — so the bound is
        // 2 % of total worker time plus 5 % of the counter itself.
        #[cfg(debug_assertions)]
        if let Some(p) = &profile {
            if !self.plane.active() {
                let derived: u64 = p
                    .cores
                    .iter()
                    .filter(|c| c.is_worker)
                    .map(|c| {
                        c.ns(CoreState::Spin) + c.ns(CoreState::TxWait) + c.ns(CoreState::FetchWait)
                    })
                    .sum::<u64>()
                    .saturating_sub(p.frame_wait_ns);
                let total: u64 = p
                    .cores
                    .iter()
                    .filter(|c| c.is_worker)
                    .map(|c| c.total_ns())
                    .sum();
                let diff = stats.spin_ns.abs_diff(derived);
                assert!(
                    diff as f64 <= 0.02 * total as f64 + 0.05 * stats.spin_ns as f64,
                    "legacy spin_ns {} vs profiler-derived {} diverge beyond tolerance",
                    stats.spin_ns,
                    derived
                );
            }
        }
        // Request conservation: every arrival the source generated must
        // be exactly one of completed / dropped / shed / aborted /
        // still live. Live slots at drain end are the in-flight term.
        self.cons.inflight_at_end = self.reqs.iter().filter(|r| r.is_some()).count() as u64;
        debug_assert!(
            self.cons.holds(),
            "request conservation violated: {:?}",
            self.cons
        );
        // Observatory run-end sweep: remaining prefetch records resolve
        // to wasted (arrived, never consumed) or inflight_at_end, and
        // the fate identity must then hold exactly per detector class.
        let memory = self.memobs.take().map(|mo| {
            let rep = mo.obs.finish(self.last_now.as_nanos());
            debug_assert!(
                rep.holds(),
                "prefetch-fate conservation violated: {:?}",
                rep.classes
            );
            rep
        });
        let tenants = match self.tenplane.take() {
            None => Vec::new(),
            Some(tp) => tp
                .specs
                .iter()
                .zip(tp.acct)
                .enumerate()
                .map(|(t, (spec, acct))| TenantWindow {
                    tenant: t,
                    name: spec.name.clone(),
                    priority: spec.priority.name(),
                    offered_rps: spec.rate_rps,
                    arrivals: acct.arrivals,
                    admitted: acct.admitted,
                    completed: acct.completed,
                    sheds: acct.sheds,
                    drops: acct.drops,
                    slo_ok: slo_verdict(&spec.slo, &acct.latency),
                    latency_ns: acct.latency,
                })
                .collect(),
        };
        RunResult {
            recorder: self.recorder,
            rdma_data_util: data_util,
            rdma_ctrl_util: ctrl_util,
            stats,
            metrics,
            trace,
            trace_dropped: self.tracer.dropped(),
            cache,
            offered_rps: self.params.offered_rps,
            window,
            workers: self.cfg.workers,
            timeline: self.timeline,
            spans: self.span_store.map(SpanStore::finish),
            shards: shard_windows,
            tenants,
            conservation: self.cons,
            telemetry,
            profile,
            memory,
            #[cfg(test)]
            dispatcher_log: std::mem::take(&mut self.dispatcher_log),
        }
    }

    /// Per-shard (data, ctrl) link snapshots, in shard order.
    fn link_snapshots(
        nics: &[RdmaNic],
    ) -> Vec<(fabric::link::LinkSnapshot, fabric::link::LinkSnapshot)> {
        nics.iter()
            .map(|n| (n.data_link().snapshot(), n.ctrl_link().snapshot()))
            .collect()
    }

    /// Outstanding work requests summed over every shard rail.
    fn total_outstanding(&self) -> u32 {
        self.nics.iter().map(|n| n.total_outstanding()).sum()
    }

    /// Updates a shard's QP-occupancy gauge (multi-shard runs only —
    /// the handles are not registered otherwise).
    #[inline]
    fn note_shard_outstanding(&mut self, shard: usize, at: SimTime) {
        if let Some(ids) = self.shard_ids.get(shard) {
            self.metrics.gauge_set(
                ids.qp_outstanding,
                at,
                self.nics[shard].total_outstanding() as f64,
            );
        }
    }

    /// Closes the measurement window at `now`: folds the link message
    /// deltas into the registry and freezes the snapshot.
    fn finalize_window(&mut self, now: SimTime) {
        if let (Some(s0), Some(s1)) = (&self.start_snap, &self.end_snap) {
            let data: u64 = s0
                .iter()
                .zip(s1)
                .map(|((d0, _), (d1, _))| d1.messages - d0.messages)
                .sum();
            let ctrl: u64 = s0
                .iter()
                .zip(s1)
                .map(|((_, c0), (_, c1))| c1.messages - c0.messages)
                .sum();
            self.metrics.add(self.ids.rdma_data_msgs, data);
            self.metrics.add(self.ids.rdma_ctrl_msgs, ctrl);
        }
        // Fault-plane counters accumulate from t=0; fold in the
        // measurement-window delta like the link message counts above.
        let fs = self.plane.stats();
        self.metrics.add(
            self.ids.injected_losses,
            fs.losses - self.plane_start.losses,
        );
        self.metrics.add(
            self.ids.injected_cqe_errors,
            fs.cqe_errors - self.plane_start.cqe_errors,
        );
        self.metrics_snap = Some(self.metrics.snapshot(now));
    }

    /// Records a trace event if tracing is enabled (one integer test —
    /// no virtual call — when disabled).
    #[inline]
    fn trace(&mut self, at: SimTime, component: &'static str, name: &'static str, a: u64, b: u64) {
        if self.obs_mask & obs::TRACE != 0 {
            self.tracer.record(TraceEvent {
                at,
                component,
                name,
                a,
                b,
            });
        }
    }

    // ----- core profiler hooks -------------------------------------------
    //
    // All hooks are one integer test when the profiler is off
    // (mirroring [`Simulation::trace`]); none of them schedules events,
    // so enabling the profiler never perturbs a run. Cores `0..wbase`
    // are the dispatcher cores; worker `w` tiles core `wbase + w`.

    /// Accrues worker `w`'s open gap (idle/park/stall) up to `now`.
    #[inline]
    fn wprof_flush(&mut self, w: usize, now: SimTime) {
        if self.obs_mask & obs::PROFILE != 0 {
            if let Some(p) = &mut self.prof {
                p.cores.flush(p.wbase + w, now);
            }
        }
    }

    /// Closes worker `w`'s interval `[cursor, until]` as `state`.
    #[inline]
    fn wprof_phase(&mut self, w: usize, state: CoreState, until: SimTime) {
        if self.obs_mask & obs::PROFILE != 0 {
            if let Some(p) = &mut self.prof {
                p.cores.phase(p.wbase + w, state, until);
            }
        }
    }

    /// Marks the state of worker `w`'s next open interval.
    #[inline]
    fn wprof_gap(&mut self, w: usize, state: CoreState) {
        if self.obs_mask & obs::PROFILE != 0 {
            if let Some(p) = &mut self.prof {
                p.cores.set_gap(p.wbase + w, state);
            }
        }
    }

    /// Worker `w` idles until a handoff that completes at `until`
    /// (push-path dispatch onto an idle worker): the open gap runs to
    /// the handoff's start, then the handoff itself tiles as `Handoff`.
    #[inline]
    fn wprof_handoff_from(&mut self, w: usize, start: SimTime, until: SimTime) {
        if self.obs_mask & obs::PROFILE != 0 {
            if let Some(p) = &mut self.prof {
                p.cores.flush(p.wbase + w, start);
                p.cores.phase(p.wbase + w, CoreState::Handoff, until);
            }
        }
    }

    /// Records one busy interval `[start, end]` of the given state on
    /// dispatcher core `d`'s timeline. Per-core intervals are naturally
    /// monotone (every `dispatcher_free[d]` advance is `max`-clamped),
    /// so the 1 → 0 gauge edges integrate to the true busy fraction in
    /// the window aggregate.
    #[inline]
    fn dispatcher_busy(&mut self, d: usize, start: SimTime, end: SimTime, state: CoreState) {
        if let Some(g) = self.dispatcher_busy_gauge {
            self.metrics.gauge_set(g, start, 1.0);
            self.metrics.gauge_set(g, end, 0.0);
        }
        if let Some(ids) = self.disp_ids.get(d) {
            if let Some(g) = ids.busy {
                self.metrics.gauge_set(g, start, 1.0);
                self.metrics.gauge_set(g, end, 0.0);
            }
        }
        if self.obs_mask & obs::PROFILE != 0 {
            if let Some(p) = &mut self.prof {
                p.cores.flush(d, start);
                p.cores.phase(d, state, end);
            }
        }
    }

    /// Logs one dispatcher-timeline charge for the differential oracle
    /// (test builds only — the release hot path carries no log).
    #[cfg(test)]
    fn log_charge(&mut self, op: DispatchOp, now: SimTime, start: SimTime, end: SimTime, d: usize) {
        self.dispatcher_log.push(DispatchCharge {
            op,
            now,
            start,
            end,
            disp: d,
        });
    }

    /// Ingress (central pending queue) enter/leave.
    #[inline]
    fn q_ingress(&mut self, now: SimTime, push: bool) {
        if let Some(p) = &mut self.prof {
            let d = if push {
                p.ingress.enqueue(now)
            } else {
                p.ingress.dequeue(now)
            };
            self.metrics.gauge_set(p.ingress_gauge, now, d as f64);
        }
    }

    /// Dispatcher `d`'s ingress slot enter/leave (multi-dispatcher runs
    /// only — the probes are not built otherwise).
    #[inline]
    fn q_dingress(&mut self, d: usize, now: SimTime, push: bool) {
        if let Some(p) = &mut self.prof {
            let Some(probe) = p.dingress.get_mut(d) else {
                return;
            };
            let depth = if push {
                probe.enqueue(now)
            } else {
                probe.dequeue(now)
            };
            if let Some(g) = p.dingress_gauges[d] {
                self.metrics.gauge_set(g, now, depth as f64);
            }
        }
    }

    /// Worker `w`'s runnable (resume) queue enter/leave.
    #[inline]
    fn q_runnable(&mut self, w: usize, now: SimTime, push: bool) {
        if let Some(p) = &mut self.prof {
            let d = if push {
                p.runnable[w].enqueue(now)
            } else {
                p.runnable[w].dequeue(now)
            };
            if let Some(g) = p.runnable_gauges[w] {
                self.metrics.gauge_set(g, now, d as f64);
            }
        }
    }

    /// A work request occupied a slot on shard `shard`'s send queue at
    /// `at`; its residence (post → CQE consumption) is known
    /// analytically at post time.
    #[inline]
    fn q_sq_post(&mut self, shard: usize, at: SimTime, residence: SimDuration) {
        if let Some(p) = &mut self.prof {
            let d = p.sq[shard].inc(at);
            p.sq[shard].wait(at, residence);
            if let Some(g) = p.sq_gauges[shard] {
                self.metrics.gauge_set(g, at, d as f64);
            }
        }
    }

    /// A CQE retired one slot on shard `shard`'s send queue.
    #[inline]
    fn q_sq_cqe(&mut self, shard: usize, now: SimTime) {
        if let Some(p) = &mut self.prof {
            let d = p.sq[shard].dec(now);
            if let Some(g) = p.sq_gauges[shard] {
                self.metrics.gauge_set(g, now, d as f64);
            }
        }
    }

    /// Shard `shard`'s deferred write-back queue enter/leave.
    #[inline]
    fn q_wb(&mut self, shard: usize, now: SimTime, push: bool) {
        if let Some(p) = &mut self.prof {
            let d = if push {
                p.wb[shard].enqueue(now)
            } else {
                p.wb[shard].dequeue(now)
            };
            if let Some(g) = p.wb_gauges[shard] {
                self.metrics.gauge_set(g, now, d as f64);
            }
        }
    }

    /// A unithread parked (yielded with its fetch outstanding) on
    /// worker `w`.
    #[inline]
    fn prof_park(&mut self, w: usize) {
        if let Some(p) = &mut self.prof {
            p.parked[w] += 1;
        }
    }

    /// A parked unithread on worker `w` left the parked set at `now`
    /// (became runnable, or was dropped by a failed fetch). If the
    /// worker is idling, its gap so far was `Park`; re-derive the gap
    /// state from the remaining parked count.
    #[inline]
    fn prof_unpark(&mut self, w: usize, now: SimTime, idle: bool) {
        if let Some(p) = &mut self.prof {
            p.parked[w] -= 1;
            if idle {
                p.cores.flush(p.wbase + w, now);
                let gap = if p.parked[w] > 0 {
                    CoreState::Park
                } else {
                    CoreState::Idle
                };
                p.cores.set_gap(p.wbase + w, gap);
            }
        }
    }

    // ----- arrivals and dispatch ---------------------------------------

    fn schedule_next_arrival(&mut self) {
        let (tx, tenant) = self.arrivals.next_arrival();
        if tx >= self.gen_end {
            return;
        }
        // Recycle a retired request's step buffer when one is free.
        let mut trace = self.trace_pool.pop().unwrap_or_default();
        // Route the draw through the tenant-aware hook: the default
        // implementation delegates straight to `next_request_into`, so
        // plane-off runs draw the identical rng stream.
        self.workload
            .next_request_for(tenant as usize, &mut self.rng, &mut trace);
        let req_bytes = trace.request_bytes;
        let id = self.alloc_req(trace, tx, tenant);
        self.cons.arrivals += 1;
        let delivered = self.eth.deliver_request(tx, req_bytes);
        self.events.push(delivered, Ev::Arrival { req: id });
    }

    fn alloc_req(&mut self, trace: Trace, tx: SimTime, tenant: u16) -> usize {
        let spans = self.span_store.as_mut().map(|s| s.builder(trace.class, tx));
        let req = Req {
            trace,
            step: 0,
            tenant,
            disp: 0,
            ingress_slot: 0,
            tx_time: tx,
            sched_epoch: tx,
            worker: usize::MAX,
            fetch_done_at: SimTime::ZERO,
            started: false,
            spans,
            detector: Detector::new(self.cfg.prefetcher),
            obs_last_page: None,
        };
        if let Some(slot) = self.free_reqs.pop() {
            self.reqs[slot] = Some(req);
            slot
        } else {
            self.reqs.push(Some(req));
            self.reqs.len() - 1
        }
    }

    fn free_req(&mut self, id: usize) {
        if let Some(req) = self.reqs[id].take() {
            // Bound the pool so a transient burst doesn't pin its
            // high-water mark of step buffers forever.
            if self.trace_pool.len() < 4_096 {
                self.trace_pool.push(req.trace);
            }
        }
        self.free_reqs.push(id);
    }

    fn req(&mut self, id: usize) -> &mut Req {
        self.reqs[id].as_mut().expect("dangling request id")
    }

    /// The request's span builder, if the span layer is on (one integer
    /// test when off, before any request-slot load — mirrors
    /// [`Simulation::trace`]).
    #[inline]
    fn sb(&mut self, id: usize) -> Option<&mut SpanBuilder> {
        if self.obs_mask & obs::SPANS == 0 {
            return None;
        }
        self.reqs[id]
            .as_mut()
            .expect("dangling request id")
            .spans
            .as_mut()
    }

    /// Returns a dropped request's span buffer to the store's pool.
    fn discard_spans(&mut self, id: usize) {
        if let Some(b) = self.req(id).spans.take() {
            if let Some(store) = &mut self.span_store {
                store.discard(b);
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival { req } => self.on_arrival(now, req),
            Ev::Admit { req } => self.on_admit(now, req),
            Ev::WorkerWake { worker, cont } => self.on_worker_wake(now, worker, cont),
            Ev::FetchDone { worker, page } => self.on_fetch_done(now, worker, page),
            Ev::WaiterReady { req } => self.on_waiter_ready(now, req),
            Ev::WriteDone { shard } => self.on_write_done(now, shard),
            Ev::ReclaimTick => self.on_reclaim_tick(now),
            Ev::CqeRetire { shard, qp } => self.on_cqe_retire(now, shard, qp),
            Ev::TelemetryTick => self.on_telemetry_tick(now),
        }
    }

    /// One flight-recorder sample: gathers health inputs (worker QPs
    /// first, then shard rails — the order the entities were registered
    /// in), lets the recorder snapshot the registry and run the SLO
    /// engine, and schedules the next tick. Read-only with respect to
    /// simulation state, so enabling telemetry perturbs nothing but the
    /// event queue's tie-break sequence numbers.
    fn on_telemetry_tick(&mut self, now: SimTime) {
        let Some(mut b) = self.telem.take() else {
            return;
        };
        let qp_depth = self.cfg.fabric.qp_depth as f64;
        let shards = self.cfg.shards();
        let mut health = Vec::with_capacity(self.workers.len() + shards);
        for (w, worker) in self.workers.iter().enumerate() {
            let outstanding: u32 = self.nics.iter().map(|n| n.outstanding(worker.qp)).sum();
            let d = b.qp_tally[w].since(&b.qp_prev[w]);
            b.qp_prev[w] = b.qp_tally[w];
            health.push(HealthInput {
                outstanding: outstanding as f64,
                // A worker QP exists on every shard rail, so its slots
                // scale with the shard count.
                capacity: qp_depth * shards as f64,
                error_chains: d.errors as f64,
                retransmit_rate: if d.fetches > 0 {
                    d.retransmits as f64 / d.fetches as f64
                } else {
                    0.0
                },
                degraded_queue: (worker.resumes.len()
                    + worker.local_queue.len()
                    + usize::from(worker.blocked.is_some())) as f64,
            });
        }
        for s in 0..shards {
            let d = b.shard_tally[s].since(&b.shard_prev[s]);
            b.shard_prev[s] = b.shard_tally[s];
            health.push(HealthInput {
                outstanding: self.nics[s].total_outstanding() as f64,
                capacity: qp_depth * (self.cfg.workers + 2) as f64,
                error_chains: d.errors as f64,
                retransmit_rate: if d.fetches > 0 {
                    d.retransmits as f64 / d.fetches as f64
                } else {
                    0.0
                },
                degraded_queue: self.deferred_writebacks[s].len() as f64,
            });
        }
        // Per-tenant health rows (registered only for multi-tenant
        // planes): "outstanding" is the tick's arrival count against the
        // tenant's configured per-tick rate, "errors" are sheds.
        for t in 0..b.tenant_tally.len() {
            let d = b.tenant_tally[t].since(&b.tenant_prev[t]);
            b.tenant_prev[t] = b.tenant_tally[t];
            health.push(HealthInput {
                outstanding: d.fetches as f64,
                capacity: b.tenant_per_tick[t].max(1.0),
                error_chains: d.errors as f64,
                retransmit_rate: if d.fetches > 0 {
                    d.errors as f64 / d.fetches as f64
                } else {
                    0.0
                },
                degraded_queue: 0.0,
            });
        }
        // Adaptive-RTO visibility: sample each shard rail's RFC 6298
        // state into its gauges before the recorder snapshots them.
        // Zero until the timer is warm (no RTT samples yet); the RTO
        // gauge always carries the armed base value, so fixed-ladder
        // runs show a flat line at `params.rto`.
        for (s, &(srtt_id, rttvar_id, rto_id)) in b.rto_ids.iter().enumerate() {
            let nic = &self.nics[s];
            let srtt = nic.srtt().map_or(0.0, |d| d.as_nanos() as f64 / 1_000.0);
            let rttvar = nic.rttvar().map_or(0.0, |d| d.as_nanos() as f64 / 1_000.0);
            let rto = nic.current_rto().as_nanos() as f64 / 1_000.0;
            self.metrics.gauge_set(srtt_id, now, srtt);
            self.metrics.gauge_set(rttvar_id, now, rttvar);
            self.metrics.gauge_set(rto_id, now, rto);
        }
        b.rec.tick(now, &self.metrics, &health, &mut *self.tracer);
        let next = now + b.rec.tick_period();
        if next <= self.measure_end {
            self.events.push(next, Ev::TelemetryTick);
        }
        self.telem = Some(b);
    }

    /// Tallies one fetch attempt for telemetry health scoring,
    /// attributed to the worker QP that originated the chain and to the
    /// shard rail it ran on (one branch when telemetry is off).
    #[inline]
    fn telem_fetch(&mut self, shard: usize, qp: QpId, retransmits: u64, error: bool) {
        if let Some(b) = &mut self.telem {
            if let Some(t) = b.qp_tally.get_mut(qp.0 as usize) {
                t.fetches += 1;
                t.retransmits += retransmits;
                t.errors += u64::from(error);
            }
            let t = &mut b.shard_tally[shard];
            t.fetches += 1;
            t.retransmits += retransmits;
            t.errors += u64::from(error);
        }
    }

    // ----- memory-access observatory hooks -------------------------------
    //
    // All hooks are one integer test when the observatory is off
    // (mirroring [`Simulation::trace`]); none schedules events or draws
    // from the shared RNG, so enabling the observatory never perturbs a
    // run — equal-seed runs replay byte-identically with it on or off.

    /// Books a completed demand access at `t`: heat sketch, working
    /// set, heatmap, shard touch and stride fingerprint — and, when
    /// `classify`, resolves a tracked prefetch of `page` as a *hit*
    /// (the line was already resident when demand reached it). Window
    /// rollovers publish fresh gauge values into the registry.
    fn mobs_touch(&mut self, req: usize, page: u64, t: SimTime, classify: bool) {
        if self.obs_mask & obs::MEMORY == 0 {
            return;
        }
        let delta = {
            let r = self.req(req);
            let last = r.obs_last_page;
            r.obs_last_page = Some(page);
            last.map(|p| page as i64 - p as i64)
        };
        let shard = self.shard_map.shard_of(page);
        let Some(mo) = &mut self.memobs else { return };
        if classify {
            mo.obs.classify_hit(page);
        }
        if mo.obs.on_touch(page, shard, t.as_nanos(), delta) {
            self.metrics
                .gauge_set(mo.ws_pages, t, mo.obs.ws_last() as f64);
            self.metrics.gauge_set(mo.heat_skew, t, mo.obs.heat_skew());
            self.metrics.gauge_set(mo.hit_rate, t, mo.obs.hit_rate());
            for (s, g) in mo.heat_share.iter().enumerate() {
                self.metrics.gauge_set(*g, t, mo.obs.shard_share(s));
            }
            let dropped = mo.obs.dropped();
            self.metrics
                .add(mo.obs_dropped, dropped - mo.dropped_synced);
            mo.dropped_synced = dropped;
        }
    }

    /// Resolves a demand access that coalesced onto an in-flight line
    /// at `t` against a tracked prefetch of `page`: a line that arrived
    /// before use is a *hit*, a still-flying healthy line is *late*
    /// (the head start since issue is credited as saved latency), and a
    /// failed line is left for the completion path to classify wasted.
    #[inline]
    fn mobs_coalesce(&mut self, page: u64, t: SimTime) {
        if self.obs_mask & obs::MEMORY == 0 {
            return;
        }
        let Some(info) = self.inflight.get(&page) else {
            return;
        };
        let (done_at, failed) = (info.done_at, info.failed);
        if let Some(mo) = &mut self.memobs {
            if done_at <= t {
                mo.obs.classify_hit(page);
            } else if !failed {
                mo.obs.classify_late(page, t.as_nanos());
            }
        }
    }

    /// Books a prefetch issuance for fate attribution.
    #[inline]
    fn mobs_prefetch_issued(&mut self, page: u64, class: PrefetchClass, t: SimTime) {
        if self.obs_mask & obs::MEMORY == 0 {
            return;
        }
        if let Some(mo) = &mut self.memobs {
            mo.obs.on_prefetch_issued(page, class, t.as_nanos());
        }
    }

    /// Marks a tracked prefetch's line as arrived (its fetch
    /// completed successfully).
    #[inline]
    fn mobs_arrived(&mut self, page: u64) {
        if self.obs_mask & obs::MEMORY == 0 {
            return;
        }
        if let Some(mo) = &mut self.memobs {
            mo.obs.on_prefetch_arrived(page);
        }
    }

    /// `page` left the cache (eviction, reservation cancel) or its
    /// fetch failed terminally: a tracked never-consumed prefetch of it
    /// is *wasted*.
    #[inline]
    fn mobs_wasted(&mut self, page: u64) {
        if self.obs_mask & obs::MEMORY == 0 {
            return;
        }
        if let Some(mo) = &mut self.memobs {
            mo.obs.classify_wasted(page);
        }
    }

    // ----- tenant plane --------------------------------------------------

    /// Books one tenant-plane event: bumps the tenant's registry
    /// counter (multi-tenant runs only — see [`TenantMetricIds`]) and
    /// its window accounting. Arrivals, sheds and drops window on the
    /// TX instant; completions on the reply RX instant. One branch
    /// when the plane is off.
    #[inline]
    fn tenant_note(&mut self, tenant: u16, ev: TenantEvent, at: SimTime, latency_ns: u64) {
        let Some(tp) = &mut self.tenplane else { return };
        let t = tenant as usize;
        if let Some(ids) = tp.ids.get(t) {
            let id = match ev {
                TenantEvent::Arrival => ids.arrivals,
                TenantEvent::Admitted => ids.admitted,
                TenantEvent::Shed => ids.sheds,
                TenantEvent::Drop => ids.drops,
                TenantEvent::Completion => ids.completions,
            };
            self.metrics.inc(id);
        }
        if at < self.warmup_end || at >= self.measure_end {
            return;
        }
        let a = &mut tp.acct[t];
        match ev {
            TenantEvent::Arrival => a.arrivals += 1,
            TenantEvent::Admitted => a.admitted += 1,
            TenantEvent::Shed => a.sheds += 1,
            TenantEvent::Drop => a.drops += 1,
            TenantEvent::Completion => {
                a.completed += 1;
                a.latency.record(latency_ns);
            }
        }
    }

    /// Tallies a tenant arrival (or shed) for telemetry health
    /// scoring (one branch when telemetry is off or single-tenant).
    #[inline]
    fn telem_tenant(&mut self, tenant: u16, shed: bool) {
        if let Some(b) = &mut self.telem {
            if let Some(t) = b.tenant_tally.get_mut(tenant as usize) {
                if shed {
                    t.errors += 1;
                } else {
                    t.fetches += 1;
                }
            }
        }
    }

    /// Combined central-queue depth across both priority classes.
    #[inline]
    fn pending_depth(&self) -> usize {
        self.pending.len() + self.pending_lo.len()
    }

    /// Enqueues an admitted request into its priority class's central
    /// queue (everything is high-priority with the plane off, so the
    /// legacy path never touches `pending_lo`).
    #[inline]
    fn push_pending(&mut self, req: usize) {
        let lo = match &self.tenplane {
            Some(tp) => {
                tp.lo[self.reqs[req].as_ref().expect("dangling request id").tenant as usize]
            }
            None => false,
        };
        if lo {
            self.pending_lo.push_back(req);
        } else {
            self.pending.push_back(req);
        }
    }

    /// Dequeues the next central-queue request: every queued
    /// high-priority request is served before any low-priority one.
    #[inline]
    fn pop_pending(&mut self) -> Option<usize> {
        self.pending
            .pop_front()
            .or_else(|| self.pending_lo.pop_front())
    }

    /// Tenant admission at dispatcher ingress: the tenant's token
    /// bucket first, then the low-priority shed watermark. Returns
    /// `true` when the request was shed and fully retired here. Shed
    /// requests never enter a latency histogram but stay in the
    /// offered-load accounting ([`Recorder::drop_request`]); the
    /// explicit outcome is visible as `tenantN.sheds` counters, the
    /// `dispatch/shed` trace event and [`Conservation::sheds`].
    fn tenant_admission(&mut self, now: SimTime, req: usize) -> bool {
        if self.tenplane.is_none() {
            return false;
        }
        let tenant = self.reqs[req].as_ref().expect("dangling request id").tenant;
        // Watermark depth is the full dispatcher ingress picture:
        // requests waiting for their admit tick — summed over *every*
        // dispatcher's ingress slot, not just one — plus both central
        // queues. Under dispatcher-bound overload the backlog pools in
        // `admission_backlog` before it ever reaches `pending`, and on
        // scaled ingress planes it pools across all the slots at once;
        // counting a single slot would shed `dispatchers ×` too late.
        let depth = self.pending_depth() + self.admission_backlog.iter().sum::<usize>();
        let shed = {
            let tp = self.tenplane.as_mut().expect("checked above");
            let t = tenant as usize;
            let refused = match &mut tp.buckets[t] {
                Some(b) => !b.admit(now),
                None => false,
            };
            refused || (tp.lo[t] && tp.shed_watermark.is_some_and(|wm| depth >= wm))
        };
        if !shed {
            return false;
        }
        let tx = self.req(req).tx_time;
        self.recorder.drop_request(tx);
        self.discard_spans(req);
        self.free_req(req);
        self.cons.sheds += 1;
        self.tenant_note(tenant, TenantEvent::Shed, tx, 0);
        self.telem_tenant(tenant, true);
        self.trace(now, "dispatch", "shed", req as u64, tenant as u64);
        true
    }

    /// Chooses the dispatcher core that admits an arrival steered to
    /// ingress slot `home` and charges the admission on its timeline,
    /// per [`DispatchPolicy`]. Returns `(serving core, start, end)` of
    /// the charge; the admit event fires at `end`.
    fn admit_on_policy(&mut self, now: SimTime, home: usize) -> (usize, SimTime, SimTime) {
        let admit_cost = self.cfg.dispatch_cost + self.cfg.client_stack;
        let ndisp = self.dispatcher_free.len();
        match self.cfg.dispatch_policy {
            // The paper's design: one shared FCFS queue whose head is a
            // serialization point. Admissions run on core 0's timeline
            // no matter how many dispatcher cores exist — the sweep
            // measures exactly this cliff.
            DispatchPolicy::SingleFcfs => {
                let start = self.dispatcher_free[0].max(now);
                let end = start + admit_cost;
                self.dispatcher_free[0] = end;
                (0, start, end)
            }
            DispatchPolicy::WorkStealing => {
                let mut serve = home;
                let mut cost = admit_cost;
                if ndisp > 1 {
                    let thief = (0..ndisp)
                        .min_by_key(|&d| (self.dispatcher_free[d], d))
                        .expect("at least one dispatcher");
                    // A steal pays only when the thief wins even after
                    // the steal synchronization — except during an
                    // active fault episode, where the margin is waived
                    // so siblings drain a degraded dispatcher's slot as
                    // soon as they are strictly earlier.
                    let margin = if self.plane.active() && self.plane.episode_active(now) {
                        SimDuration::ZERO
                    } else {
                        self.cfg.steal_cost
                    };
                    if thief != home
                        && self.dispatcher_free[thief] + margin < self.dispatcher_free[home]
                    {
                        serve = thief;
                        cost = admit_cost + self.cfg.steal_cost;
                        if let Some(ids) = self.disp_ids.get(serve) {
                            self.metrics.inc(ids.steals);
                        }
                        self.trace(now, "dispatch", "disp_steal", serve as u64, home as u64);
                    }
                }
                let start = self.dispatcher_free[serve].max(now);
                let end = start + cost;
                self.dispatcher_free[serve] = end;
                (serve, start, end)
            }
            DispatchPolicy::FlatCombining => {
                // The combiner role is exclusive: admissions serialise
                // behind `fc_tail` and stay globally FIFO; only the
                // *cost* is amortised. A batch opener pays the full
                // admission, joiners inside its window a quarter of the
                // dispatch cost (the combiner's amortised slot scan).
                let (serve, cost) =
                    if now < self.fc_until && self.fc_count < self.cfg.combining_batch.max(1) {
                        self.fc_count += 1;
                        if let Some(ids) = self.disp_ids.get(self.fc_leader) {
                            self.metrics.inc(ids.combines);
                        }
                        let pass = SimDuration::from_nanos(self.cfg.dispatch_cost.as_nanos() / 4);
                        (self.fc_leader, pass + self.cfg.client_stack)
                    } else {
                        self.fc_leader = home;
                        self.fc_until = now + self.cfg.combining_window;
                        self.fc_count = 1;
                        (home, admit_cost)
                    };
                let start = self.fc_tail.max(self.dispatcher_free[serve]).max(now);
                let end = start + cost;
                self.dispatcher_free[serve] = end;
                self.fc_tail = end;
                (serve, start, end)
            }
        }
    }

    fn on_arrival(&mut self, now: SimTime, req: usize) {
        self.schedule_next_arrival();
        let depth = self.pending_depth()
            + self
                .workers
                .iter()
                .map(|w| w.local_queue.len())
                .sum::<usize>();
        self.metrics
            .gauge_set(self.ids.queue_depth, now, depth as f64);
        let inflight = self.total_outstanding();
        if let Some(tl) = &mut self.timeline {
            tl.queue_depth.record(now, depth as f64);
            tl.inflight.record(now, inflight as f64);
        }
        if self.plane.active() {
            let in_episode = self.plane.episode_active(now);
            self.metrics
                .gauge_set(self.ids.fault_episode_active, now, in_episode as u64 as f64);
        }
        self.trace(now, "dispatch", "arrival", req as u64, depth as u64);
        // Request flight + RX path: tx_time → delivery.
        if let Some(sb) = self.sb(req) {
            sb.phase(stage::NET, now);
        }
        // Tenant-plane ingress: book the arrival, then run admission
        // (token bucket + low-priority shed watermark). All of this is
        // branch-only when the plane is off.
        let (tenant, tx) = {
            let r = self.reqs[req].as_ref().expect("dangling request id");
            (r.tenant, r.tx_time)
        };
        self.tenant_note(tenant, TenantEvent::Arrival, tx, 0);
        self.telem_tenant(tenant, false);
        if self.tenant_admission(now, req) {
            return;
        }
        match self.cfg.queue_model {
            QueueModel::SingleQueue => {
                // Arrival fan-in: the NIC's RSS hash lands the packet in
                // one dispatcher's ingress slot (always slot 0 with one
                // dispatcher — the steer is a constant there).
                let home = self.fanin.steer();
                if self.admission_backlog[home] >= self.cfg.fabric.rx_ring_entries
                    || self.pending_depth() >= self.cfg.pending_cap
                {
                    self.recorder.drop_request(tx);
                    self.discard_spans(req);
                    self.free_req(req);
                    self.metrics.inc(self.ids.drops);
                    self.cons.drops += 1;
                    self.tenant_note(tenant, TenantEvent::Drop, tx, 0);
                    self.trace(now, "dispatch", "drop", req as u64, 0);
                    return;
                }
                self.admission_backlog[home] += 1;
                self.q_dingress(home, now, true);
                if let Some(tp) = &self.tenplane {
                    // Priority-split ingress: the admit tick below pops
                    // hi-first (see `on_admit`), so the `req` carried by
                    // the event is only the plane-off identity.
                    if tp.lo[tenant as usize] {
                        self.ingress_lo.push_back(req);
                    } else {
                        self.ingress_hi.push_back(req);
                    }
                }
                let (serve, start, end) = self.admit_on_policy(now, home);
                {
                    let r = self.reqs[req].as_mut().expect("dangling request id");
                    r.disp = serve as u16;
                    r.ingress_slot = home as u16;
                }
                if let Some(ids) = self.disp_ids.get(serve) {
                    self.metrics.inc(ids.admitted);
                }
                self.dispatcher_busy(serve, start, end, CoreState::Dispatch);
                #[cfg(test)]
                self.log_charge(DispatchOp::Admit, now, start, end, serve);
                self.events.push(end, Ev::Admit { req });
            }
            QueueModel::PerWorker | QueueModel::PerWorkerStealing => {
                // RSS-style random steering straight into a worker queue.
                let w = self.rng.gen_range(self.cfg.workers as u64) as usize;
                let cap = (self.cfg.pending_cap / self.cfg.workers).max(16);
                if self.workers[w].local_queue.len() >= cap {
                    self.recorder.drop_request(tx);
                    self.discard_spans(req);
                    self.free_req(req);
                    self.metrics.inc(self.ids.drops);
                    self.cons.drops += 1;
                    self.tenant_note(tenant, TenantEvent::Drop, tx, 0);
                    self.trace(now, "dispatch", "drop", req as u64, w as u64);
                    return;
                }
                self.workers[w].local_queue.push_back(req);
                self.tenant_note(tenant, TenantEvent::Admitted, tx, 0);
                self.try_run_local(now, w);
            }
        }
    }

    fn on_admit(&mut self, now: SimTime, req: usize) {
        // With a tenant plane on, the admit tick serves the ingress
        // queues hi-first; the event's own `req` is one of the queued
        // entries (ticks and pushes are one-to-one), just not
        // necessarily the one admitted now.
        let req = if self.tenplane.is_some() {
            self.ingress_hi
                .pop_front()
                .or_else(|| self.ingress_lo.pop_front())
                .expect("admit tick without a queued ingress request")
        } else {
            req
        };
        // The popped identity vacates the ingress slot it was steered
        // to at arrival (each identity increments and decrements its
        // own slot exactly once, so the per-slot counts stay exact
        // even when the tenant plane reorders hi-before-lo).
        let slot = self.reqs[req]
            .as_ref()
            .expect("dangling request id")
            .ingress_slot as usize;
        self.admission_backlog[slot] -= 1;
        self.q_dingress(slot, now, false);
        // Dispatcher admission work: delivery → admit.
        if let Some(sb) = self.sb(req) {
            sb.phase(stage::DISPATCH, now);
        }
        self.q_ingress(now, true);
        let (tenant, tx) = {
            let r = self.reqs[req].as_ref().expect("dangling request id");
            (r.tenant, r.tx_time)
        };
        self.tenant_note(tenant, TenantEvent::Admitted, tx, 0);
        // Multi-dispatcher admit commit: `a` = request, `b` = serving
        // dispatcher. Gated off the single-dispatcher machine so the
        // golden single-dispatcher byte streams stay untouched.
        if self.dispatcher_free.len() > 1 {
            let d = self.reqs[req].as_ref().expect("dangling request id").disp as u64;
            self.trace(now, "dispatch", "disp_admit", req as u64, d);
        }
        self.push_pending(req);
        self.try_dispatch(now);
    }

    /// Algorithm 1 (PF-aware) or round-robin dispatch of pending
    /// requests to idle workers.
    fn try_dispatch(&mut self, now: SimTime) {
        while self.pending_depth() > 0 {
            let Some(w) = self.pick_idle_worker() else {
                return;
            };
            let req = self.pop_pending().expect("non-empty pending");
            self.q_ingress(now, false);
            // The handoff is charged on the dispatcher that admitted
            // the request — it owns the run-queue entry.
            let d = self.reqs[req].as_ref().expect("dangling request id").disp as usize;
            let start = self.dispatcher_free[d].max(now);
            let hstart = start.max(self.workers[w].free_at);
            let wake = hstart + self.cfg.handoff_cost;
            let dend = start + self.cfg.handoff_cost;
            self.dispatcher_free[d] = dend;
            self.dispatcher_busy(d, start, dend, CoreState::Handoff);
            #[cfg(test)]
            self.log_charge(DispatchOp::PushHandoff, now, start, dend, d);
            self.wprof_handoff_from(w, hstart, wake);
            self.workers[w].busy = true;
            self.metrics.inc(self.ids.dispatches);
            self.trace(now, "dispatch", "assign", req as u64, w as u64);
            self.events.push(
                wake,
                Ev::WorkerWake {
                    worker: w,
                    cont: Cont::Start { req },
                },
            );
        }
    }

    fn pick_idle_worker(&mut self) -> Option<usize> {
        // With multiple dispatchers during an active fault episode,
        // worker selection is forced PF-aware regardless of the
        // configured policy: error CQEs hold QP slots until their
        // retirement fires, so min-outstanding selection steers new
        // work away from QPs with outstanding error chains while the
        // degraded queues drain.
        let mut select = self.cfg.worker_select;
        if self.dispatcher_free.len() > 1
            && self.plane.active()
            && self.plane.episode_active(self.last_now)
        {
            select = WorkerSelect::PfAware;
        }
        match select {
            WorkerSelect::RoundRobin => {
                let n = self.cfg.workers;
                for k in 0..n {
                    let w = (self.rr_next + k) % n;
                    if !self.workers[w].busy {
                        self.rr_next = (w + 1) % n;
                        return Some(w);
                    }
                }
                None
            }
            WorkerSelect::PfAware => {
                // SortByOutstandingPFCount over idle workers: take the
                // minimum (ties by index for determinism). A worker's
                // outstanding count spans every shard rail its QP id is
                // mapped onto, so dispatch stays fault-aware under
                // sharding without favouring any one shard.
                self.workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| !w.busy)
                    .min_by_key(|(i, w)| {
                        (
                            self.nics.iter().map(|n| n.outstanding(w.qp)).sum::<u32>(),
                            *i,
                        )
                    })
                    .map(|(i, _)| i)
            }
        }
    }

    /// Hermit path: a worker with a non-empty local queue starts the
    /// head request if idle.
    fn try_run_local(&mut self, now: SimTime, w: usize) {
        if self.workers[w].busy || self.workers[w].local_queue.is_empty() {
            return;
        }
        let req = self.workers[w].local_queue.pop_front().expect("non-empty");
        self.workers[w].busy = true;
        self.metrics.inc(self.ids.dispatches);
        self.trace(now, "dispatch", "assign_local", req as u64, w as u64);
        let hstart = now.max(self.workers[w].free_at);
        let wake = hstart + self.cfg.handoff_cost;
        self.wprof_handoff_from(w, hstart, wake);
        self.events.push(
            wake,
            Ev::WorkerWake {
                worker: w,
                cont: Cont::Start { req },
            },
        );
    }

    // ----- worker execution ---------------------------------------------

    fn on_worker_wake(&mut self, now: SimTime, w: usize, cont: Cont) {
        debug_assert!(self.workers[w].busy, "wake of an idle worker");
        if self.obs_mask & obs::TRACE != 0 {
            // Segment boundary: the worker (re-)enters an execution
            // segment; `a` = worker, `b` = request.
            let (name, req) = match cont {
                Cont::Start { req } => ("seg_start", req),
                Cont::Resume { req } => ("seg_resume", req),
                Cont::AfterBusyWait { req } => ("seg_after_spin", req),
                Cont::RetryFault { req } => ("seg_retry", req),
                Cont::AbortFault { req } => ("seg_abort", req),
            };
            self.trace(now, "worker", name, w as u64, req as u64);
        }
        // The worker re-enters execution: close its open gap
        // (idle/park/stall). For wakes whose phases were accrued at
        // issue time (busy-wait spins, handoffs) the cursor is already
        // at `now` and this is a no-op.
        self.wprof_flush(w, now);
        match cont {
            Cont::Start { req } => {
                let setup_extra = self
                    .cfg
                    .kernel
                    .map(|k| k.net_stack)
                    .unwrap_or(SimDuration::ZERO);
                let is_yield = self.cfg.fault_policy == FaultPolicy::Yield;
                let setup = self.cfg.request_setup + setup_extra;
                let ctx = self.cfg.ctx_switch;
                let cq = self.cfg.cq_poll;
                let mut t = now;
                let first;
                {
                    let r = self.req(req);
                    r.sched_epoch = now;
                    r.worker = w;
                    first = !r.started;
                    r.started = true;
                    if let Some(sb) = r.spans.as_mut() {
                        // Time spent queued (admit → start, or preempt
                        // → restart), then a new execution segment.
                        sb.phase(stage::QUEUE, now);
                        sb.begin_segment(now, w);
                    }
                    if first {
                        t += setup;
                        if is_yield {
                            // Unithread creation + switch in, plus the
                            // worker's CQ poll before starting new
                            // unithreads (Figure 5).
                            t += ctx + cq;
                        }
                        if let Some(sb) = r.spans.as_mut() {
                            sb.phase(stage::HANDLE, now + setup);
                            if is_yield {
                                sb.phase(stage::CTX, now + setup + ctx + cq);
                            }
                        }
                    }
                }
                if first {
                    self.wprof_phase(w, CoreState::Work, now + setup);
                    if is_yield {
                        self.wprof_phase(w, CoreState::CtxSwitch, now + setup + ctx + cq);
                    }
                }
                self.execute(w, req, t);
            }
            Cont::Resume { req } => {
                let map = self.cfg.fault_map;
                let ctx = self.cfg.ctx_switch;
                let mut t = now;
                {
                    let r = self.req(req);
                    let fetch_done = r.fetch_done_at;
                    if let Some(sb) = r.spans.as_mut() {
                        // Fetch wall time is the fault's wait; runnable
                        // time past completion is queueing.
                        sb.phase(stage::FETCH_WAIT, fetch_done);
                        sb.phase(stage::QUEUE, now);
                        sb.end_fault(now);
                        sb.begin_segment(now, w);
                        sb.phase(stage::HANDLE, now + map);
                        sb.phase(stage::CTX, now + map + ctx);
                    }
                }
                self.wprof_phase(w, CoreState::Work, now + map);
                self.wprof_phase(w, CoreState::CtxSwitch, now + map + ctx);
                t += map + ctx;
                self.execute(w, req, t);
            }
            Cont::AfterBusyWait { req } => {
                // Map + (on Hermit) the kernel→user return crossing.
                let mut map = self.cfg.fault_map;
                if let Some(k) = self.cfg.kernel {
                    map += k.kernel_exit;
                }
                let mut t = now;
                if let Some(sb) = self.sb(req) {
                    // Spin residue (wake can trail the CQE), then the
                    // fault closes with the page map.
                    sb.phase(stage::SPIN, now);
                    sb.end_fault(now + map);
                    sb.phase(stage::HANDLE, now + map);
                }
                self.wprof_phase(w, CoreState::Work, now + map);
                t += map;
                self.execute(w, req, t);
            }
            Cont::RetryFault { req } => {
                // Waiting for a frame ended at `now`; the open fault
                // span is kept — the retry continues the same fault.
                if let Some(sb) = self.sb(req) {
                    sb.phase(stage::QUEUE, now);
                }
                // Re-enter the fault for the current step's page.
                self.execute(w, req, now);
            }
            Cont::AbortFault { req } => {
                // The fetch chain exhausted its retries/replicas: the
                // request cannot make progress and is dropped, exactly
                // as a real runtime would surface an I/O error to the
                // application after burning the full retry ladder.
                let (tenant, tx) = {
                    let r = self.reqs[req].as_ref().expect("dangling request id");
                    (r.tenant, r.tx_time)
                };
                self.recorder.drop_request(tx);
                self.discard_spans(req);
                self.free_req(req);
                self.metrics.inc(self.ids.drops);
                self.metrics.inc(self.ids.fetch_aborts);
                self.cons.aborts += 1;
                self.tenant_note(tenant, TenantEvent::Drop, tx, 0);
                self.trace(now, "fault", "abort", w as u64, req as u64);
                self.worker_pick_next(w, now);
            }
        }
    }

    /// Runs `req` on worker `w` from its current step at virtual time
    /// `t`, until it blocks or completes.
    fn execute(&mut self, w: usize, req: usize, mut t: SimTime) {
        loop {
            let (step_opt, do_preempt) = {
                let interval = self.cfg.preempt_interval;
                let preemptable = self.cfg.fault_policy == FaultPolicy::BusyWaitPreempt;
                let r = self.req(req);
                if r.step >= r.trace.steps.len() {
                    (None, false)
                } else {
                    let over =
                        preemptable && r.step > 0 && t.saturating_since(r.sched_epoch) >= interval;
                    (Some(r.trace.steps[r.step]), over)
                }
            };
            let Some(step) = step_opt else {
                self.finish_request(w, req, t);
                return;
            };
            if do_preempt {
                // Concord-style probe fired: save context, re-enqueue at
                // the tail of the central queue, pick other work.
                self.metrics.inc(self.ids.preemptions);
                self.trace(t, "worker", "preempt", w as u64, req as u64);
                let cost = self.cfg.preempt_cost;
                if let Some(sb) = self.sb(req) {
                    sb.phase(stage::HANDLE, t);
                    sb.phase(stage::CTX, t + cost);
                    sb.end_segment(t + cost);
                }
                t += cost;
                self.wprof_phase(w, CoreState::CtxSwitch, t);
                self.q_ingress(t, true);
                self.push_pending(req);
                self.worker_pick_next(w, t);
                return;
            }

            // Compute part of the step (+ kernel interference on Hermit).
            let mut compute = SimDuration::from_nanos(step.compute_ns as u64);
            if let Some(k) = self.cfg.kernel {
                let p = step.compute_ns as f64 / k.interference_period.as_nanos() as f64;
                if p > 0.0 && self.rng.gen_bool(p.min(1.0)) {
                    let stall = SimDuration::from_nanos(
                        self.rng.exp(k.interference_stall.as_nanos() as f64) as u64,
                    );
                    // The stall is involuntary descheduling, not useful
                    // work: flush the compute so far, attribute the
                    // stall to queueing.
                    if let Some(sb) = self.sb(req) {
                        sb.phase(stage::HANDLE, t + compute);
                        sb.phase(stage::QUEUE, t + compute + stall);
                    }
                    compute += stall;
                }
            }
            t += compute;
            // Kernel-interference stalls fold into `Work` here: the
            // core is occupied either way, and the request-level view
            // already attributes the stall to queueing via the span.
            self.wprof_phase(w, CoreState::Work, t);

            if let Some(access) = step.access {
                match self.cache.lookup(access.page) {
                    PageState::Resident => {
                        // Every access eventually lands here (resume and
                        // after-spin wakes re-run the faulting step), so
                        // this is the single completed-access book-keeping
                        // point: a tracked prefetch resolved by this touch
                        // is a hit.
                        self.mobs_touch(req, access.page, t, true);
                        self.cache.touch(access.page, access.write);
                        self.req(req).step += 1;
                    }
                    PageState::InFlight => {
                        self.metrics.inc(self.ids.coalesced);
                        self.trace(t, "fault", "coalesce", req as u64, access.page);
                        // Demand raced an in-flight prefetch: arrived
                        // lines classify hit, still-flying ones late.
                        self.mobs_coalesce(access.page, t);
                        self.cache.note_coalesced();
                        if !self.wait_on_inflight(w, req, access.page, t) {
                            return;
                        }
                        // Fetch had already completed by `t`: continue as
                        // a hit (the prefetch fate was classified above,
                        // so this books the access only).
                        self.mobs_touch(req, access.page, t, false);
                        self.cache.touch(access.page, access.write);
                        self.req(req).step += 1;
                    }
                    PageState::NotResident => {
                        if !self.fault(w, req, access.page, access.write, t) {
                            return;
                        }
                        // Unreachable in practice: fault always blocks.
                    }
                }
            } else {
                self.req(req).step += 1;
            }
        }
    }

    /// Waits on an already-in-flight fetch. Returns `true` if the fetch
    /// had in fact completed by `t` (caller continues inline).
    fn wait_on_inflight(&mut self, w: usize, req: usize, page: u64, t: SimTime) -> bool {
        let (done_at, failed) = {
            let info = self.inflight.get(&page).expect("in-flight page");
            (info.done_at, info.failed)
        };
        if failed {
            // The fetch we coalesced onto will surface an error CQE: the
            // page never arrives, so this request aborts too. Yielders
            // park as usual and are dropped when the error surfaces
            // (on_fetch_done); busy-waiters burn until the CQE and then
            // abort — the page was never mapped, so early consumption is
            // impossible.
            match self.cfg.fault_policy {
                FaultPolicy::Yield => {
                    let ctx = self.cfg.ctx_switch;
                    let cq = self.cfg.cq_poll;
                    {
                        let r = self.req(req);
                        r.worker = w;
                        if let Some(sb) = r.spans.as_mut() {
                            sb.phase(stage::HANDLE, t);
                            sb.phase(stage::CTX, t + ctx);
                            sb.end_segment(t + ctx);
                        }
                    }
                    self.inflight
                        .get_mut(&page)
                        .expect("in-flight page")
                        .waiters
                        .push(req);
                    self.wprof_phase(w, CoreState::CtxSwitch, t + ctx + cq);
                    self.prof_park(w);
                    self.worker_pick_next(w, t + ctx + cq);
                }
                FaultPolicy::BusyWait | FaultPolicy::BusyWaitPreempt => {
                    let spin = done_at.saturating_since(t);
                    if let Some(sb) = self.sb(req) {
                        sb.phase(stage::HANDLE, t);
                        sb.phase(stage::SPIN, done_at.max(t));
                    }
                    self.wprof_phase(w, CoreState::Spin, done_at.max(t));
                    self.metrics.add(self.ids.spin_ns, spin.as_nanos());
                    self.trace(t, "worker", "spin", w as u64, spin.as_nanos());
                    self.events.push(
                        done_at.max(t),
                        Ev::WorkerWake {
                            worker: w,
                            cont: Cont::AbortFault { req },
                        },
                    );
                }
            }
            return false;
        }
        if done_at <= t {
            // The completion predates our virtual time: consume it early.
            let info = self.inflight.get_mut(&page).expect("in-flight page");
            if !info.completed_early {
                info.completed_early = true;
                self.cache.complete_fetch(page);
            }
            return true;
        }
        match self.cfg.fault_policy {
            FaultPolicy::Yield => {
                let ctx = self.cfg.ctx_switch;
                let cq = self.cfg.cq_poll;
                {
                    let r = self.req(req);
                    r.worker = w;
                    if let Some(sb) = r.spans.as_mut() {
                        // Coalesced wait: no fault span of our own (the
                        // fetch belongs to another request) — park and
                        // wait for its completion.
                        sb.phase(stage::HANDLE, t);
                        sb.phase(stage::CTX, t + ctx);
                        sb.end_segment(t + ctx);
                    }
                }
                self.inflight
                    .get_mut(&page)
                    .expect("in-flight page")
                    .waiters
                    .push(req);
                self.wprof_phase(w, CoreState::CtxSwitch, t + ctx + cq);
                self.prof_park(w);
                self.worker_pick_next(w, t + ctx + cq);
                false
            }
            FaultPolicy::BusyWait | FaultPolicy::BusyWaitPreempt => {
                let spin = done_at.since(t);
                if let Some(sb) = self.sb(req) {
                    sb.phase(stage::HANDLE, t);
                    sb.phase(stage::SPIN, done_at);
                }
                self.wprof_phase(w, CoreState::Spin, done_at);
                self.metrics.add(self.ids.spin_ns, spin.as_nanos());
                self.trace(t, "worker", "spin", w as u64, spin.as_nanos());
                // FetchDone at done_at was scheduled earlier, so FIFO
                // tie-breaking completes the page before this wake.
                self.events.push(
                    done_at,
                    Ev::WorkerWake {
                        worker: w,
                        cont: Cont::AfterBusyWait { req },
                    },
                );
                false
            }
        }
    }

    /// Handles a page fault. Returns `false` (always, in practice): the
    /// request blocked and `execute` must return.
    fn fault(&mut self, w: usize, req: usize, page: u64, _write: bool, mut t: SimTime) -> bool {
        // Flush compute up to the faulting access and open the fault
        // span (re-entrant: a retry continues the fault it opened).
        if let Some(sb) = self.sb(req) {
            sb.phase(stage::HANDLE, t);
            sb.begin_fault(t, page);
        }
        // Fault-handler entry (+ kernel crossing on Hermit).
        let mut entry = self.cfg.fault_entry;
        if let Some(k) = self.cfg.kernel {
            entry += k.fault_entry + k.swap_work;
        }
        t += entry;
        self.trace(t, "fault", "miss", req as u64, page);

        // Reserve a frame; on pressure, run direct reclaim like a real
        // kernel would (and kick the reclaimer).
        if !self.cache.begin_fetch(page) {
            self.kick_reclaimer(t);
            match self.cache.evict_one() {
                Some((victim, dirty)) => {
                    self.metrics.inc(self.ids.direct_reclaims);
                    self.trace(t, "reclaim", "direct", victim, dirty as u64);
                    self.mobs_wasted(victim);
                    if dirty {
                        self.writeback(t, victim);
                    }
                    t += self.cfg.direct_reclaim_cost;
                    assert!(self.cache.begin_fetch(page), "evicted frame not reusable");
                }
                None => {
                    // Every frame is in flight: wait briefly and retry.
                    if let Some(sb) = self.sb(req) {
                        sb.phase(stage::HANDLE, t);
                    }
                    // The wait tiles as `FetchWait`; the legacy spin
                    // counter never booked frame waits, so they are
                    // tracked separately for the spin cross-check.
                    self.wprof_phase(w, CoreState::Work, t);
                    self.wprof_gap(w, CoreState::FetchWait);
                    if let Some(p) = &mut self.prof {
                        let a = t.max(self.warmup_end);
                        let b = (t + SimDuration::from_nanos(500)).min(self.measure_end);
                        if b > a {
                            p.frame_wait_ns += b.since(a).as_nanos();
                        }
                    }
                    self.events.push(
                        t + SimDuration::from_nanos(500),
                        Ev::WorkerWake {
                            worker: w,
                            cont: Cont::RetryFault { req },
                        },
                    );
                    return false;
                }
            }
        }
        self.kick_reclaimer(t);

        // Post the one-sided READ on the page's shard rail, following
        // that shard's failover chain across replicas when completions
        // come back in error.
        let shard = self.shard_map.shard_of(page);
        let qp = self.workers[w].qp;
        let post_at = t + self.cfg.fault_issue;
        let outcome = match self.issue_fetch(req, qp, shard, page, post_at) {
            Ok(o) => o,
            Err(fabric::PostError::QpFull) => {
                // §5.2: "page fault handlers must pause, waiting for
                // available slots in the QPs". The worker is stuck (even
                // under the yield policy the *handler* occupies it).
                self.metrics.inc(self.ids.qp_stalls);
                self.metrics.inc(self.ids.qp_full_retries);
                self.trace(t, "fault", "qp_stall", w as u64, page);
                // Undo the reservation: re-try will re-reserve.
                self.cache.complete_fetch(page);
                let evicted = self.cache.evict_one();
                debug_assert!(evicted.is_some());
                if let Some((victim, _)) = evicted {
                    self.mobs_wasted(victim);
                }
                self.workers[w].blocked = Some((req, t));
                // The QP_STALL phase is emitted when a CQE frees a slot
                // (see on_fetch_done); flush the handler work now. The
                // stall tiles as `FetchWait`, closed by the retry wake.
                if let Some(sb) = self.sb(req) {
                    sb.phase(stage::HANDLE, t);
                }
                self.wprof_phase(w, CoreState::Work, t);
                self.wprof_gap(w, CoreState::FetchWait);
                return false;
            }
        };
        t += self.cfg.fault_issue + self.cfg.prefetch_compute;
        self.wprof_phase(w, CoreState::Work, t);
        let outstanding = self.total_outstanding();
        self.metrics
            .gauge_set(self.ids.qp_outstanding, t, outstanding as f64);
        self.note_shard_outstanding(shard, t);
        if let Some(old) = self.inflight.insert(
            page,
            Inflight {
                done_at: outcome.done_at,
                qp: outcome.qp,
                failed: outcome.failed,
                waiters: Vec::new(),
                completed_early: false,
            },
        ) {
            // The page was early-consumed, evicted and is now being
            // re-fetched before the old completion surfaced.
            debug_assert!(old.completed_early, "live fetch overwritten");
            self.orphan_fetches.push((page, old));
        }
        self.events
            .push(outcome.done_at, Ev::FetchDone { worker: w, page });

        self.issue_prefetches(w, req, page, t);

        match self.cfg.fault_policy {
            FaultPolicy::Yield => {
                // Figure 5 steps 4–7: yield to the worker, which polls
                // its CQ once and takes the next unithread.
                let ctx = self.cfg.ctx_switch;
                let cq = self.cfg.cq_poll;
                {
                    let r = self.req(req);
                    r.worker = w;
                    if let Some(sb) = r.spans.as_mut() {
                        sb.phase(stage::HANDLE, t);
                        sb.phase(stage::CTX, t + ctx);
                        sb.end_segment(t + ctx);
                    }
                }
                self.inflight
                    .get_mut(&page)
                    .expect("just inserted")
                    .waiters
                    .push(req);
                self.wprof_phase(w, CoreState::CtxSwitch, t + ctx + cq);
                self.prof_park(w);
                self.worker_pick_next(w, t + ctx + cq);
            }
            FaultPolicy::BusyWait | FaultPolicy::BusyWaitPreempt => {
                // Busy-waiters burn the whole retransmission/failover
                // timeline on-core — the mechanism that separates the
                // baselines from Adios under faults.
                let spin = outcome.done_at.saturating_since(t);
                if let Some(sb) = self.sb(req) {
                    sb.phase(stage::HANDLE, t);
                    sb.phase(stage::SPIN, outcome.done_at.max(t));
                }
                self.wprof_phase(w, CoreState::Spin, outcome.done_at.max(t));
                self.metrics.add(self.ids.spin_ns, spin.as_nanos());
                self.trace(t, "worker", "spin", w as u64, spin.as_nanos());
                let wake = outcome.done_at.max(t);
                let cont = if outcome.failed {
                    Cont::AbortFault { req }
                } else {
                    Cont::AfterBusyWait { req }
                };
                self.events.push(wake, Ev::WorkerWake { worker: w, cont });
            }
        }
        false
    }

    /// Posts a demand READ for `page` at `at` on `qp`, following the
    /// failover chain when completions surface in error: each error CQE
    /// re-issues the fetch on the dedicated failover QP against the next
    /// replica, until a clean completion or the attempt budget
    /// (`max_fetch_attempts`) runs out.
    ///
    /// The analytic fabric resolves each attempt's completion time at
    /// post time, so the whole chain is walked here; intermediate error
    /// CQEs are retired via [`Ev::CqeRetire`] when they surface. The
    /// previous attempt's CQE is retired only once the next post
    /// succeeds — a full failover QP ends the chain at that CQE.
    ///
    /// Returns `Err(QpFull)` only when the *first* post finds the
    /// worker's QP full (the caller pauses the fault handler).
    fn issue_fetch(
        &mut self,
        req: usize,
        qp0: QpId,
        shard: usize,
        page: u64,
        post_at: SimTime,
    ) -> Result<FetchOutcome, fabric::PostError> {
        let replicas = self.cfg.replicas();
        let max_attempts = self.cfg.max_fetch_attempts.max(1);
        let failover_qp = QpId(self.cfg.workers as u32 + 1);
        let mut qp = qp0;
        let mut replica = 0usize;
        let mut at = post_at;
        let mut attempt = 1u32;
        // Terminal CQE of the previous (errored) attempt.
        let mut pending: Option<(QpId, SimTime)> = None;
        loop {
            let completion = match self.post_read(at, shard, qp, page, replica) {
                Ok(c) => c,
                Err(e) => {
                    let Some((pqp, pdone)) = pending else {
                        return Err(e);
                    };
                    // Failover QP full: the chain dies at the previous
                    // error CQE.
                    self.metrics.inc(self.ids.qp_full_retries);
                    self.metrics.inc(self.ids.fetch_chain_failures);
                    self.shard_inc(shard, |s| s.chain_failures);
                    self.trace(at, "fault", "chain_fail", req as u64, page);
                    return Ok(FetchOutcome {
                        qp: pqp,
                        done_at: pdone,
                        failed: true,
                    });
                }
            };
            self.q_sq_post(shard, at, completion.slot_residence(at));
            self.shard_inc(shard, |s| s.fetches);
            // Telemetry attributes every attempt of the chain to the
            // worker QP that originated it, even after failover.
            self.telem_fetch(
                shard,
                qp0,
                completion.retransmits as u64,
                completion.is_error(),
            );
            if let Some((pqp, pdone)) = pending.take() {
                // The failover post took over: the previous error CQE
                // only needs retiring when it becomes pollable.
                self.events.push(pdone, Ev::CqeRetire { shard, qp: pqp });
                self.metrics.inc(self.ids.fetch_failovers);
                self.shard_inc(shard, |s| s.failovers);
            }
            if completion.retransmits > 0 {
                self.metrics
                    .add(self.ids.fetch_retransmits, completion.retransmits as u64);
                self.shard_add(shard, |s| s.retransmits, completion.retransmits as u64);
                self.trace(
                    completion.wire_start,
                    "fault",
                    "retransmit",
                    req as u64,
                    completion.retransmits as u64,
                );
            }
            if let Some(sb) = self.sb(req) {
                sb.fetch_with_retrans(
                    at,
                    completion.issued_at,
                    completion.wire_start,
                    completion.done_at,
                    page,
                    desim::span::shard_qp(shard as u64, qp.0 as u64),
                    completion.retransmits,
                );
            }
            if !completion.is_error() {
                if completion.done_at >= self.warmup_end && completion.done_at < self.measure_end {
                    self.shard_fetch_ns[shard]
                        .record(completion.done_at.saturating_since(post_at).as_nanos());
                }
                return Ok(FetchOutcome {
                    qp,
                    done_at: completion.done_at,
                    failed: false,
                });
            }
            self.metrics.inc(self.ids.fetch_cqe_errors);
            self.shard_inc(shard, |s| s.cqe_errors);
            self.trace(completion.done_at, "fault", "fetch_error", req as u64, page);
            if attempt >= max_attempts {
                self.metrics.inc(self.ids.fetch_chain_failures);
                self.shard_inc(shard, |s| s.chain_failures);
                return Ok(FetchOutcome {
                    qp,
                    done_at: completion.done_at,
                    failed: true,
                });
            }
            pending = Some((qp, completion.done_at));
            replica = (replica + 1) % replicas;
            at = completion.done_at;
            qp = failover_qp;
            attempt += 1;
            // The trace/span operand is the *global* memnode id the
            // chain moves to — on single-shard runs that equals the
            // replica index, preserving the pre-sharding byte stream.
            let node = self.shard_map.node_id(shard, replica) as u64;
            self.trace(at, "fault", "failover", node, attempt as u64);
            if let Some(sb) = self.sb(req) {
                sb.failover(at, node, attempt as u64);
            }
        }
    }

    /// One READ post on shard `shard`'s rail against its replica
    /// `replica`, through the fault plane.
    fn post_read(
        &mut self,
        at: SimTime,
        shard: usize,
        qp: QpId,
        page: u64,
        replica: usize,
    ) -> Result<fabric::nic::Completion, fabric::PostError> {
        let node = self.shard_map.node_id(shard, replica) as usize;
        self.nics[shard].post(
            at,
            qp,
            Verb::Read,
            page,
            self.cfg.fetch_page_bytes,
            &mut self.mems[node],
            &mut self.plane,
        )
    }

    /// Bumps a per-shard counter (registered only on multi-shard runs).
    #[inline]
    fn shard_inc(&mut self, shard: usize, pick: fn(&ShardMetricIds) -> CounterId) {
        if let Some(id) = self.shard_ids.get(shard).map(pick) {
            self.metrics.inc(id);
        }
    }

    /// Adds to a per-shard counter (registered only on multi-shard runs).
    #[inline]
    fn shard_add(&mut self, shard: usize, pick: fn(&ShardMetricIds) -> CounterId, n: u64) {
        if let Some(id) = self.shard_ids.get(shard).map(pick) {
            self.metrics.add(id, n);
        }
    }

    /// Sequential + speculative readahead (§2.3: every system overlaps a
    /// prefetching algorithm with the fetch).
    fn issue_prefetches(&mut self, w: usize, req: usize, page: u64, t: SimTime) {
        let (mut stride, mut n) = self.req(req).detector.on_fault(page);
        let spec = self.cfg.speculative_readahead > 0.0
            && self.rng.gen_bool(self.cfg.speculative_readahead.min(1.0));
        let mut speculative = false;
        if n == 0 && spec {
            (stride, n) = (1, 1);
            speculative = true;
        }
        // Fate-attribution class: the configured detector, or the
        // speculative next-page fallback when the detector had no
        // pattern (observatory runs only; the hook self-gates).
        let class = if speculative {
            PrefetchClass::Speculative
        } else {
            match self.req(req).detector {
                Detector::Leap(_) => PrefetchClass::Leap,
                _ => PrefetchClass::Readahead,
            }
        };
        let qp = self.workers[w].qp;
        for i in 1..=n as i64 {
            let signed = page as i64 + stride * i;
            if signed < 0 {
                break;
            }
            let p = signed as u64;
            if p >= self.cache.total_pages() || self.cache.lookup(p) != PageState::NotResident {
                continue;
            }
            if self.cache.free_frames() == 0 {
                break;
            }
            assert!(self.cache.begin_fetch(p));
            let ps = self.shard_map.shard_of(p);
            match self.post_read(t, ps, qp, p, 0) {
                Ok(c) => {
                    self.q_sq_post(ps, t, c.slot_residence(t));
                    self.metrics.inc(self.ids.prefetches);
                    self.mobs_prefetch_issued(p, class, t);
                    self.shard_inc(ps, |s| s.fetches);
                    self.telem_fetch(ps, qp, c.retransmits as u64, c.is_error());
                    self.trace(t, "fault", "prefetch", page, p);
                    if c.is_error() {
                        // Speculative fetches get no failover chain —
                        // the error completion cancels the reservation
                        // when it surfaces, and a later demand access
                        // simply re-faults.
                        self.metrics.inc(self.ids.prefetch_errors);
                    }
                    if let Some(old) = self.inflight.insert(
                        p,
                        Inflight {
                            done_at: c.done_at,
                            qp,
                            failed: c.is_error(),
                            waiters: Vec::new(),
                            completed_early: false,
                        },
                    ) {
                        // Same supersede case as the demand path: the
                        // old fetch was early-consumed and its page
                        // already evicted again.
                        debug_assert!(old.completed_early, "live fetch overwritten");
                        self.orphan_fetches.push((p, old));
                    }
                    self.events
                        .push(c.done_at, Ev::FetchDone { worker: w, page: p });
                }
                Err(_) => {
                    // QP full: drop the speculative fetch.
                    self.metrics.inc(self.ids.qp_full_retries);
                    self.cache.complete_fetch(p);
                    let evicted = self.cache.evict_one();
                    debug_assert!(evicted.is_some());
                    if let Some((victim, _)) = evicted {
                        self.mobs_wasted(victim);
                    }
                    break;
                }
            }
        }
        self.kick_reclaimer(t);
    }

    fn on_fetch_done(&mut self, now: SimTime, w: usize, page: u64) {
        // Match the event to its fetch record: the live entry when its
        // completion time is `now`, else the superseded record a
        // re-fetch parked aside (see `orphan_fetches`). An orphan only
        // frees its QP slot and wakes its own waiters — the cache and
        // observatory state belong to the live fetch.
        let mut orphan = false;
        let info = match self.inflight.get(&page) {
            Some(i) if i.done_at == now => self.inflight.remove(&page),
            _ => {
                orphan = true;
                self.orphan_fetches
                    .iter()
                    .position(|(p, o)| *p == page && o.done_at == now)
                    .map(|i| self.orphan_fetches.remove(i).1)
            }
        };
        debug_assert!(info.is_some(), "completion without a fetch record");
        // The CQE lands on the QP that carried the terminal attempt (the
        // failover QP when the chain migrated); prefetch entries and
        // pre-fault paths fall back to the worker's QP.
        let cqe_qp = info.as_ref().map_or(self.workers[w].qp, |i| i.qp);
        let shard = self.shard_map.shard_of(page);
        self.nics[shard].on_cqe(now, cqe_qp);
        self.q_sq_cqe(shard, now);
        let outstanding = self.total_outstanding();
        self.metrics
            .gauge_set(self.ids.qp_outstanding, now, outstanding as f64);
        self.note_shard_outstanding(shard, now);
        self.trace(now, "nic", "fetch_done", w as u64, page);
        if let Some(info) = info {
            if info.failed {
                // The terminal completion is an error: the page never
                // arrived. Cancel the frame reservation and abort every
                // parked waiter (busy-waiters abort via their own
                // scheduled wake).
                debug_assert!(!info.completed_early, "failed fetch consumed early");
                debug_assert!(!orphan, "orphaned fetches are always early-consumed");
                self.cache.complete_fetch(page);
                // A tracked prefetch that fails terminally is wasted;
                // the eviction victim (any page — the cancel idiom may
                // reclaim a different frame) is handled uniformly.
                self.mobs_wasted(page);
                let evicted = self.cache.evict_one();
                debug_assert!(evicted.is_some());
                if let Some((victim, _)) = evicted {
                    self.mobs_wasted(victim);
                }
                self.trace(now, "fault", "fetch_failed", w as u64, page);
                for waiter in info.waiters {
                    let (tenant, tx, home) = {
                        let r = self.req(waiter);
                        (r.tenant, r.tx_time, r.worker)
                    };
                    self.recorder.drop_request(tx);
                    self.discard_spans(waiter);
                    self.free_req(waiter);
                    self.metrics.inc(self.ids.drops);
                    self.metrics.inc(self.ids.fetch_aborts);
                    self.cons.aborts += 1;
                    self.tenant_note(tenant, TenantEvent::Drop, tx, 0);
                    let idle = !self.workers[home].busy;
                    self.prof_unpark(home, now, idle);
                }
            } else {
                if !info.completed_early {
                    self.cache.complete_fetch(page);
                }
                if !orphan {
                    // An orphan's own prefetch record was consumed when
                    // it was classified; the page's current record (if
                    // any) belongs to the live fetch still in flight.
                    self.mobs_arrived(page);
                }
                for waiter in info.waiters {
                    self.req(waiter).fetch_done_at = now;
                    if self.cfg.resume_delay > SimDuration::ZERO {
                        // Kernel scheduler wake-up before the thread is
                        // runnable (Infiniswap).
                        self.events
                            .push(now + self.cfg.resume_delay, Ev::WaiterReady { req: waiter });
                    } else {
                        self.make_waiter_ready(now, waiter);
                    }
                }
            }
        }
        // A fault paused on this worker's full QP can retry now.
        if let Some((req, since)) = self.workers[w].blocked.take() {
            let spin = now.saturating_since(since);
            if let Some(sb) = self.sb(req) {
                sb.phase(stage::QP_STALL, now);
            }
            self.metrics.add(self.ids.spin_ns, spin.as_nanos());
            self.trace(now, "worker", "spin", w as u64, spin.as_nanos());
            self.events.push(
                now,
                Ev::WorkerWake {
                    worker: w,
                    cont: Cont::RetryFault { req },
                },
            );
        }
    }

    fn on_waiter_ready(&mut self, now: SimTime, req: usize) {
        self.make_waiter_ready(now, req);
    }

    fn make_waiter_ready(&mut self, now: SimTime, waiter: usize) {
        let home = self.req(waiter).worker;
        let idle = !self.workers[home].busy;
        self.prof_unpark(home, now, idle);
        self.q_runnable(home, now, true);
        self.workers[home].resumes.push_back(waiter);
        if !self.workers[home].busy {
            self.workers[home].busy = true;
            let wake = now.max(self.workers[home].free_at);
            self.wake_for_next(home, wake);
        }
    }

    /// Worker `w` is free at virtual time `t`: resume a ready unithread,
    /// pull new work, or go idle.
    fn worker_pick_next(&mut self, w: usize, t: SimTime) {
        if !self.workers[w].resumes.is_empty() {
            self.wake_for_next(w, t);
            return;
        }
        match self.cfg.queue_model {
            QueueModel::SingleQueue => {
                if let Some(req) = self.pop_pending() {
                    self.q_ingress(t, false);
                    let d = self.reqs[req].as_ref().expect("dangling request id").disp as usize;
                    let start = self.dispatcher_free[d].max(t);
                    let wake = start + self.cfg.handoff_cost;
                    self.dispatcher_free[d] = wake;
                    self.dispatcher_busy(d, start, wake, CoreState::Handoff);
                    #[cfg(test)]
                    self.log_charge(DispatchOp::PullHandoff, t, start, wake, d);
                    // Pull-path handoff: the worker waits on the
                    // dispatcher, so the whole `[t, wake]` interval is
                    // handoff time on the worker core too.
                    self.wprof_phase(w, CoreState::Handoff, wake);
                    self.events.push(
                        wake,
                        Ev::WorkerWake {
                            worker: w,
                            cont: Cont::Start { req },
                        },
                    );
                    return;
                }
            }
            QueueModel::PerWorker | QueueModel::PerWorkerStealing => {
                if let Some(req) = self.workers[w].local_queue.pop_front() {
                    let wake = t + self.cfg.handoff_cost;
                    self.wprof_phase(w, CoreState::Handoff, wake);
                    self.events.push(
                        wake,
                        Ev::WorkerWake {
                            worker: w,
                            cont: Cont::Start { req },
                        },
                    );
                    return;
                }
                if self.cfg.queue_model == QueueModel::PerWorkerStealing {
                    // ZygOS: steal the head of the longest peer queue,
                    // preserving FCFS order as closely as possible.
                    let victim = (0..self.cfg.workers)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| self.workers[v].local_queue.len());
                    if let Some(v) = victim {
                        if let Some(req) = self.workers[v].local_queue.pop_front() {
                            self.metrics.inc(self.ids.steals);
                            self.trace(t, "worker", "steal", w as u64, v as u64);
                            let wake = t + self.cfg.steal_cost;
                            self.wprof_phase(w, CoreState::Handoff, wake);
                            self.events.push(
                                wake,
                                Ev::WorkerWake {
                                    worker: w,
                                    cont: Cont::Start { req },
                                },
                            );
                            return;
                        }
                    }
                }
            }
        }
        // Going idle: the open gap is `Park` while yielded unithreads
        // are outstanding on this worker, plain `Idle` otherwise.
        if let Some(p) = &mut self.prof {
            let gap = if p.parked[w] > 0 {
                CoreState::Park
            } else {
                CoreState::Idle
            };
            p.cores.set_gap(p.wbase + w, gap);
        }
        self.workers[w].busy = false;
        self.workers[w].free_at = t;
    }

    /// Schedules the worker's next action at `t` when it has resumes
    /// queued (used from both the worker path and FetchDone wake-ups).
    fn wake_for_next(&mut self, w: usize, t: SimTime) {
        let req = self.workers[w]
            .resumes
            .pop_front()
            .expect("wake_for_next without resumes");
        self.q_runnable(w, t, false);
        self.events.push(
            t,
            Ev::WorkerWake {
                worker: w,
                cont: Cont::Resume { req },
            },
        );
    }

    fn finish_request(&mut self, w: usize, req: usize, mut t: SimTime) {
        let reply_bytes = self.req(req).trace.reply_bytes;
        let build = self.cfg.reply_build + self.cfg.client_stack;
        if let Some(sb) = self.sb(req) {
            // Flush compute since the last blocking point, then the
            // reply serialisation.
            sb.phase(stage::HANDLE, t);
            sb.phase(stage::REPLY, t + build);
        }
        t += build;
        self.wprof_phase(w, CoreState::Work, t);
        if self.cfg.fault_policy == FaultPolicy::Yield {
            // Switch from the unithread back to the worker.
            let ctx = self.cfg.ctx_switch;
            if let Some(sb) = self.sb(req) {
                sb.phase(stage::CTX, t + ctx);
            }
            t += ctx;
            self.wprof_phase(w, CoreState::CtxSwitch, t);
        }
        let tx = self.eth.send_reply(t, reply_bytes);
        if self.cfg.polling_delegation {
            // The TX CQE is raised on the dispatcher's CQ; the worker
            // moves on immediately and the dispatcher recycles the
            // buffer within its normal polling batches. Only the
            // recycle *work* loads the dispatcher — the CQE's arrival
            // time does not stall admissions (CQEs wait in the CQ).
            let d = self.reqs[req].as_ref().expect("dangling request id").disp as usize;
            let start = self.dispatcher_free[d].max(t);
            let dend = start + self.cfg.recycle_cost;
            self.dispatcher_free[d] = dend;
            self.dispatcher_busy(d, start, dend, CoreState::Dispatch);
            #[cfg(test)]
            self.log_charge(DispatchOp::Recycle, t, start, dend, d);
        } else {
            // The worker spins until the TX completion. The spin can
            // outlast the client's receive instant (CQE raise vs. wire
            // propagation); the tail past `client_rx_at` is not part of
            // this request's latency, so the span is clamped to it.
            let spin = tx.cqe_at.saturating_since(t);
            if let Some(sb) = self.sb(req) {
                sb.phase(stage::TX_WAIT, tx.cqe_at.min(tx.client_rx_at));
            }
            self.wprof_phase(w, CoreState::TxWait, tx.cqe_at.max(t));
            self.metrics.add(self.ids.spin_ns, spin.as_nanos());
            self.trace(t, "worker", "spin", w as u64, spin.as_nanos());
            t = t.max(tx.cqe_at);
        }
        let (class, tx_time, tenant) = {
            let r = self.req(req);
            (r.trace.class, r.tx_time, r.tenant)
        };
        let rx = tx.client_rx_at;
        // Close the tree (reply flight to the client is the final NET
        // phase) and derive the breakdown from its critical path. A
        // segment re-dispatched onto a lagging worker clock can leave
        // the span cursor a few tens of ns past `client_rx_at` (the
        // bounded virtual-time skew documented at the top of this
        // file); the completion instant is the later of the two so the
        // attribution always tiles the recorded end-to-end latency.
        let builder = self.req(req).spans.take();
        let (rx, b) = match (self.span_store.as_mut(), builder) {
            (Some(store), Some(mut sb)) => {
                let rx = rx.max(sb.cursor());
                sb.end_segment(t.min(rx));
                sb.phase(stage::NET, rx);
                let in_window = rx >= self.warmup_end && rx < self.measure_end;
                let b = Breakdown::from_critical_path(&store.complete(sb, rx, in_window));
                (rx, b)
            }
            _ => (rx, Breakdown::default()),
        };
        if let Some(bridge) = &mut self.telem {
            bridge.rec.on_completion(rx.saturating_since(tx_time));
        }
        self.recorder.complete(class, tx_time, rx, b);
        self.free_req(req);
        self.metrics.inc(self.ids.completions);
        self.cons.completions += 1;
        self.tenant_note(
            tenant,
            TenantEvent::Completion,
            rx,
            rx.saturating_since(tx_time).as_nanos(),
        );
        self.trace(t, "worker", "complete", w as u64, req as u64);
        self.worker_pick_next(w, t);
    }

    // ----- reclaimer -----------------------------------------------------

    fn kick_reclaimer(&mut self, now: SimTime) {
        if self.reclaim_state == ReclaimState::Scheduled {
            return;
        }
        let free = self.cache.free_frames();
        if !self
            .cfg
            .watermarks
            .should_start(free, self.cache.capacity())
        {
            return;
        }
        let delay = match self.cfg.reclaimer_mode {
            ReclaimerMode::Proactive => SimDuration::ZERO,
            ReclaimerMode::WakeUp => self.cfg.reclaim_wake_delay,
        };
        self.reclaim_state = ReclaimState::Scheduled;
        self.events.push(now + delay, Ev::ReclaimTick);
    }

    fn on_reclaim_tick(&mut self, now: SimTime) {
        let mut evicted = 0;
        while evicted < self.cfg.reclaim_batch {
            if self
                .cfg
                .watermarks
                .may_stop(self.cache.free_frames(), self.cache.capacity())
            {
                break;
            }
            match self.cache.evict_one() {
                Some((page, dirty)) => {
                    self.mobs_wasted(page);
                    if dirty {
                        self.writeback(now, page);
                    }
                    evicted += 1;
                }
                None => break,
            }
        }
        let free = self.cache.free_frames();
        self.metrics.inc(self.ids.reclaim_ticks);
        self.trace(now, "reclaim", "tick", evicted as u64, free as u64);
        if !self.cfg.watermarks.may_stop(free, self.cache.capacity()) && evicted > 0 {
            let batch_time = self.cfg.evict_cost.saturating_mul(evicted as u64);
            self.events.push(now + batch_time, Ev::ReclaimTick);
        } else {
            self.reclaim_state = ReclaimState::Idle;
        }
    }

    fn writeback(&mut self, now: SimTime, page: u64) {
        // Write-behind on the reclaimer's dedicated QP; the frame is
        // reused immediately (the model keeps page contents host-side).
        // The QP's bounded depth paces write-back bursts — without it a
        // reclaim cycle would dump thousands of WRITEs into the shared
        // WQE engine and stall page fetches behind them.
        let qp = QpId(self.cfg.workers as u32);
        let shard = self.shard_map.shard_of(page);
        let primary = self.shard_map.node_id(shard, 0) as usize;
        match self.nics[shard].post(
            now,
            qp,
            Verb::Write,
            page,
            self.cfg.fetch_page_bytes,
            &mut self.mems[primary],
            &mut self.plane,
        ) {
            Ok(c) => {
                self.q_sq_post(shard, now, c.slot_residence(now));
                self.metrics.inc(self.ids.writebacks);
                if c.is_error() {
                    // The frame was already reused and page contents are
                    // host-side in this model, so a failed write-back is
                    // only counted, not replayed.
                    self.metrics.inc(self.ids.writeback_errors);
                }
                self.trace(now, "reclaim", "writeback", page, 0);
                self.events.push(c.done_at, Ev::WriteDone { shard });
            }
            Err(fabric::PostError::QpFull) => {
                self.metrics.inc(self.ids.qp_full_retries);
                self.q_wb(shard, now, true);
                self.deferred_writebacks[shard].push_back(page);
            }
        }
    }

    fn on_write_done(&mut self, now: SimTime, shard: usize) {
        self.nics[shard].on_cqe(now, QpId(self.cfg.workers as u32));
        self.q_sq_cqe(shard, now);
        let outstanding = self.total_outstanding();
        self.metrics
            .gauge_set(self.ids.qp_outstanding, now, outstanding as f64);
        self.note_shard_outstanding(shard, now);
        if let Some(page) = self.deferred_writebacks[shard].pop_front() {
            self.q_wb(shard, now, false);
            self.writeback(now, page);
        }
    }

    /// An intermediate error CQE of a failover chain surfaced: consume
    /// it so the QP slot frees (the chain already continued elsewhere).
    fn on_cqe_retire(&mut self, now: SimTime, shard: usize, qp: QpId) {
        self.nics[shard].on_cqe(now, qp);
        self.q_sq_cqe(shard, now);
        let outstanding = self.total_outstanding();
        self.metrics
            .gauge_set(self.ids.qp_outstanding, now, outstanding as f64);
        self.note_shard_outstanding(shard, now);
        self.trace(now, "nic", "cqe_retire", qp.0 as u64, shard as u64);
    }
}

/// Evaluates a tenant's latency SLO rules over its window histogram:
/// a `lat<OBJ:BUDGET@WINDOW` rule allows at most a `BUDGET` fraction of
/// completions over `OBJ` — equivalently, the `(1 − BUDGET)`-quantile
/// must sit at or under the objective. Returns `None` when the spec
/// carries no latency rule or no completion landed in the window.
fn slo_verdict(rules: &[SloRule], latency: &desim::Histogram) -> Option<bool> {
    let mut verdict = None;
    for rule in rules {
        if let SloRule::LatencyBurn {
            objective, budget, ..
        } = rule
        {
            if latency.count() == 0 {
                continue;
            }
            let q = ((1.0 - budget) * 100.0).clamp(0.0, 100.0);
            let ok = latency.percentile(q) <= objective.as_nanos();
            verdict = Some(verdict.unwrap_or(true) && ok);
        }
    }
    verdict
}

/// Convenience: build and run one experiment.
pub fn run_one(cfg: SystemConfig, workload: &mut dyn Workload, params: RunParams) -> RunResult {
    Simulation::new(cfg, workload, params).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use crate::workload::ArrayIndexWorkload;

    /// A small working set so tests run fast: 16 Ki pages, 20 % local.
    fn small_workload() -> ArrayIndexWorkload {
        ArrayIndexWorkload::new(16_384)
    }

    fn quick_params(rps: f64) -> RunParams {
        RunParams {
            offered_rps: rps,
            seed: 42,
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(10),
            local_mem_fraction: 0.2,
            keep_breakdowns: false,
            burst: None,
            timeline_bucket: None,
            trace_capacity: None,
            spans: None,
            faults: None,
            telemetry: None,
            profile: None,
            memory: None,
            tenants: None,
        }
    }

    fn run(kind: SystemKind, rps: f64) -> RunResult {
        let mut w = small_workload();
        run_one(SystemConfig::for_kind(kind), &mut w, quick_params(rps))
    }

    fn run_faulty(cfg: SystemConfig, rps: f64, scenario: FaultScenario) -> RunResult {
        let mut w = small_workload();
        run_one(
            cfg,
            &mut w,
            RunParams {
                faults: Some(scenario),
                telemetry: None,
                ..quick_params(rps)
            },
        )
    }

    /// Every error CQE either fails over to the next replica or
    /// terminates its chain — no fetch can vanish in between. On
    /// sharded runs the same partition must hold shard by shard:
    /// failovers on one shard cannot paper over chain failures on
    /// another.
    fn assert_fault_invariant(res: &RunResult) {
        use desim::trace::shard_names as sn;
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert_eq!(
            c("fetch_cqe_errors"),
            c("fetch_failovers") + c("fetch_chain_failures"),
            "error CQEs must be exactly partitioned into failovers and chain failures"
        );
        for s in 0..sn::MAX_SHARDS {
            if let Some(errs) = res.metrics.counter(sn::CQE_ERRORS[s]) {
                assert_eq!(
                    errs,
                    c(sn::FAILOVERS[s]) + c(sn::CHAIN_FAILURES[s]),
                    "shard {s}: error CQEs must partition into failovers and chain failures"
                );
            }
        }
    }

    #[test]
    fn lossy_fabric_retransmits_but_conserves_every_request() {
        for kind in [SystemKind::Dilos, SystemKind::Adios] {
            let res = run_faulty(
                SystemConfig::for_kind(kind),
                400_000.0,
                FaultScenario::lossy(),
            );
            let c = |name| res.metrics.counter(name).unwrap_or(0);
            assert!(
                c("fetch_retransmits") > 0,
                "{}: 2% loss must trigger retransmissions",
                kind.name()
            );
            // 7 RC retries put retry exhaustion at ~loss^8: every fetch
            // eventually completes and nothing is dropped.
            assert_eq!(res.recorder.dropped(), 0, "{}", kind.name());
            assert_eq!(c("fetch_aborts"), 0, "{}", kind.name());
            assert_fault_invariant(&res);
            assert!(res.recorder.completed_in_window() > 500);
        }
    }

    #[test]
    fn memnode_crash_fails_over_to_replica() {
        let cfg = SystemConfig {
            memnode_replicas: 2,
            ..SystemConfig::adios()
        };
        let res = run_faulty(cfg, 400_000.0, FaultScenario::crash());
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert!(
            c("fetch_failovers") > 0,
            "outage fetches must divert to the secondary replica"
        );
        assert_eq!(res.recorder.dropped(), 0, "replica absorbs the outage");
        assert_fault_invariant(&res);
    }

    #[test]
    fn memnode_crash_without_replica_aborts_chains() {
        // A failed chain burns ~3.8 ms of RTO ladders before its error
        // CQE surfaces; keep measuring long enough to observe the
        // aborts the 10 ms outage provokes.
        let mut w = small_workload();
        let res = run_one(
            SystemConfig::adios(),
            &mut w,
            RunParams {
                faults: Some(FaultScenario::crash()),
                telemetry: None,
                measure: SimDuration::from_millis(20),
                ..quick_params(400_000.0)
            },
        );
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        // With a single replica the failover chain re-targets the same
        // dead node and exhausts its attempt budget.
        assert!(c("fetch_chain_failures") > 0);
        assert!(c("fetch_aborts") > 0);
        assert!(res.recorder.dropped() > 0);
        assert_fault_invariant(&res);
    }

    #[test]
    fn stall_episodes_inflate_busywait_spin() {
        let base = run(SystemKind::Dilos, 400_000.0);
        let stalled = run_faulty(SystemConfig::dilos(), 400_000.0, FaultScenario::stall());
        assert!(
            stalled.stats.spin_ns > base.stats.spin_ns,
            "stalled memnode must lengthen busy-wait spins: {} vs {}",
            stalled.stats.spin_ns,
            base.stats.spin_ns
        );
        assert_fault_invariant(&stalled);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let a = run_faulty(SystemConfig::adios(), 500_000.0, FaultScenario::lossy());
        let b = run_faulty(SystemConfig::adios(), 500_000.0, FaultScenario::lossy());
        assert_eq!(
            a.recorder.completed_in_window(),
            b.recorder.completed_in_window()
        );
        assert_eq!(
            a.recorder.overall().percentile(99.9),
            b.recorder.overall().percentile(99.9)
        );
        assert_eq!(
            a.metrics.counter("fetch_retransmits"),
            b.metrics.counter("fetch_retransmits")
        );
        assert_eq!(
            a.metrics.counter("faults.injected_losses"),
            b.metrics.counter("faults.injected_losses")
        );
    }

    #[test]
    fn low_load_latency_is_microsecond_scale() {
        for kind in [SystemKind::Dilos, SystemKind::Adios] {
            let res = run(kind, 100_000.0);
            let p50 = res.recorder.overall().percentile(50.0);
            assert!(
                (1_000..20_000).contains(&p50),
                "{}: p50 = {p50} ns",
                kind.name()
            );
            assert_eq!(res.recorder.dropped(), 0, "{}", kind.name());
            assert!(res.recorder.completed_in_window() > 500);
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let a = run(SystemKind::Adios, 500_000.0);
        let b = run(SystemKind::Adios, 500_000.0);
        assert_eq!(
            a.recorder.completed_in_window(),
            b.recorder.completed_in_window()
        );
        assert_eq!(
            a.recorder.overall().percentile(99.0),
            b.recorder.overall().percentile(99.0)
        );
        assert_eq!(a.stats.prefetches, b.stats.prefetches);
    }

    #[test]
    fn adios_beats_dilos_at_high_load() {
        // Past DiLOS' saturation point, Adios must deliver both more
        // throughput and a dramatically lower tail (the paper's headline
        // result).
        let dilos = run(SystemKind::Dilos, 2_200_000.0);
        let adios = run(SystemKind::Adios, 2_200_000.0);
        assert!(
            adios.recorder.achieved_rps() > dilos.recorder.achieved_rps() * 1.2,
            "throughput: adios {} vs dilos {}",
            adios.recorder.achieved_rps(),
            dilos.recorder.achieved_rps()
        );
    }

    #[test]
    fn adios_spin_time_is_negligible() {
        let dilos = run(SystemKind::Dilos, 1_200_000.0);
        let adios = run(SystemKind::Adios, 1_200_000.0);
        assert!(
            dilos.spin_fraction() > 0.2,
            "dilos spin fraction = {}",
            dilos.spin_fraction()
        );
        assert!(
            adios.spin_fraction() < 0.05,
            "adios spin fraction = {}",
            adios.spin_fraction()
        );
    }

    #[test]
    fn rdma_utilization_higher_for_adios() {
        let dilos = run(SystemKind::Dilos, 2_500_000.0);
        let adios = run(SystemKind::Adios, 2_500_000.0);
        assert!(
            adios.rdma_data_util > dilos.rdma_data_util * 1.2,
            "util: adios {} vs dilos {}",
            adios.rdma_data_util,
            dilos.rdma_data_util
        );
    }

    #[test]
    fn hermit_is_slowest() {
        let hermit = run(SystemKind::Hermit, 1_200_000.0);
        let dilos = run(SystemKind::Dilos, 1_200_000.0);
        assert!(
            hermit.recorder.achieved_rps() < dilos.recorder.achieved_rps(),
            "hermit {} vs dilos {}",
            hermit.recorder.achieved_rps(),
            dilos.recorder.achieved_rps()
        );
        assert!(
            hermit.recorder.overall().percentile(99.9) > dilos.recorder.overall().percentile(99.9),
            "hermit tail should be worse"
        );
    }

    #[test]
    fn all_local_memory_means_no_fetches() {
        let mut params = quick_params(500_000.0);
        params.local_mem_fraction = 1.0;
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, params);
        assert_eq!(res.cache.misses, 0);
        assert_eq!(res.stats.prefetches, 0);
        assert!(res.rdma_data_util < 1e-6);
        assert!(res.recorder.completed_in_window() > 1000);
    }

    #[test]
    fn overload_drops_requests_and_caps_throughput() {
        let res = run(SystemKind::Dilos, 5_000_000.0);
        assert!(res.recorder.dropped() > 0, "expected drops at 5 MRPS");
        let achieved = res.recorder.achieved_rps();
        assert!(
            achieved < 3_000_000.0,
            "achieved {achieved} should be capped by saturation"
        );
    }

    #[test]
    fn preemption_happens_only_in_dilos_p() {
        // A long-compute workload (SCAN-like) to give probes a chance.
        struct LongCompute;
        impl Workload for LongCompute {
            fn classes(&self) -> &'static [&'static str] {
                &["long"]
            }
            fn total_pages(&self) -> u64 {
                4096
            }
            fn next_request(&mut self, rng: &mut Rng) -> Trace {
                let steps = (0..20)
                    .map(|_| paging::trace::Step {
                        compute_ns: 1_000,
                        access: Some(paging::trace::Access {
                            page: rng.gen_range(4096),
                            write: false,
                        }),
                    })
                    .collect();
                Trace {
                    class: 0,
                    steps,
                    request_bytes: 64,
                    reply_bytes: 64,
                }
            }
        }
        let params = quick_params(50_000.0);
        let p = run_one(SystemConfig::dilos_p(), &mut LongCompute, params.clone());
        let d = run_one(SystemConfig::dilos(), &mut LongCompute, params);
        assert!(p.stats.preemptions > 0, "DiLOS-P must preempt long scans");
        assert_eq!(d.stats.preemptions, 0, "DiLOS never preempts");
    }

    #[test]
    fn breakdown_components_populated() {
        let mut params = quick_params(1_000_000.0);
        params.keep_breakdowns = true;
        let mut w = small_workload();
        let mut res = run_one(SystemConfig::dilos(), &mut w, params.clone());
        let p50 = res.recorder.breakdown_at(50.0);
        assert!(p50.mean.handling_ns > 0.0);
        // 80 % of requests fault; at P50 the fetch shows up.
        assert!(p50.mean.rdma_ns > 0.0);

        let mut w2 = small_workload();
        let mut adios = run_one(SystemConfig::adios(), &mut w2, params);
        let a99 = adios.breakdown99();
        assert!(a99.mean.busywait_ns < 100.0, "adios must not spin: {a99:?}");
    }

    impl RunResult {
        fn breakdown99(&mut self) -> loadgen::record::BreakdownAt {
            self.recorder.breakdown_at(99.0)
        }
    }

    #[test]
    fn writebacks_happen_with_dirty_pages() {
        struct WriteHeavy;
        impl Workload for WriteHeavy {
            fn classes(&self) -> &'static [&'static str] {
                &["write"]
            }
            fn total_pages(&self) -> u64 {
                8192
            }
            fn next_request(&mut self, rng: &mut Rng) -> Trace {
                Trace {
                    class: 0,
                    steps: vec![paging::trace::Step {
                        compute_ns: 300,
                        access: Some(paging::trace::Access {
                            page: rng.gen_range(8192),
                            write: true,
                        }),
                    }],
                    request_bytes: 64,
                    reply_bytes: 64,
                }
            }
        }
        let res = run_one(
            SystemConfig::adios(),
            &mut WriteHeavy,
            quick_params(500_000.0),
        );
        assert!(res.stats.writebacks > 0, "dirty evictions must write back");
        assert!(res.rdma_ctrl_util > 0.0);
    }

    #[test]
    fn qp_depth_one_forces_handler_pauses() {
        let mut cfg = SystemConfig::adios();
        cfg.fabric.qp_depth = 1;
        let mut w = small_workload();
        let res = run_one(cfg, &mut w, quick_params(1_500_000.0));
        assert!(
            res.stats.qp_stalls > 0,
            "depth-1 QPs must pause the fault handler (§5.2 mechanism)"
        );
        assert!(
            res.recorder.completed_in_window() > 1_000,
            "still makes progress"
        );
    }

    #[test]
    fn hot_page_faults_coalesce() {
        // Every request hits the same handful of pages: concurrent
        // faults must wait on the in-flight fetch, not duplicate it.
        struct HotPages;
        impl Workload for HotPages {
            fn classes(&self) -> &'static [&'static str] {
                &["hot"]
            }
            fn total_pages(&self) -> u64 {
                4096
            }
            fn next_request(&mut self, rng: &mut Rng) -> Trace {
                Trace {
                    class: 0,
                    steps: vec![paging::trace::Step {
                        compute_ns: 300,
                        access: Some(paging::trace::Access {
                            page: rng.gen_range(4), // 4 hot pages
                            write: false,
                        }),
                    }],
                    request_bytes: 32,
                    reply_bytes: 32,
                }
            }
            fn warm_pages(&self) -> Option<Vec<u64>> {
                Some(vec![4000, 4001]) // keep the hot pages cold initially
            }
        }
        let mut params = quick_params(2_000_000.0);
        params.local_mem_fraction = 0.05;
        // The hot set becomes resident within microseconds, so the
        // coalescing happens at the very start of the run: measure
        // from t = 0 or the windowed counters will miss it.
        params.warmup = SimDuration::ZERO;
        let res = run_one(SystemConfig::adios(), &mut HotPages, params);
        assert!(
            res.stats.coalesced > 0,
            "concurrent faults on hot pages must coalesce"
        );
        // Far fewer fetches than requests: the hot set stays resident.
        assert!(res.cache.misses < res.recorder.completed_in_window() / 10);
    }

    #[test]
    fn stealing_happens_and_is_counted() {
        let cfg = SystemConfig {
            queue_model: QueueModel::PerWorkerStealing,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let res = run_one(cfg, &mut w, quick_params(1_500_000.0));
        assert!(
            res.stats.steals > 0,
            "random steering must imbalance queues"
        );
    }

    #[test]
    fn infiniswap_resume_delay_slows_remote_requests() {
        let mut w = small_workload();
        let inf = run_one(SystemConfig::infiniswap(), &mut w, quick_params(150_000.0));
        let adios = run_one(SystemConfig::adios(), &mut w, quick_params(150_000.0));
        let (i50, a50) = (
            inf.recorder.overall().percentile(50.0),
            adios.recorder.overall().percentile(50.0),
        );
        assert!(
            i50 > a50 * 4,
            "kernel wake-up delay must dominate: infiniswap {i50} vs adios {a50}"
        );
        assert!(inf.spin_fraction() < 0.05, "infiniswap yields, never spins");
    }

    #[test]
    fn timeline_records_queue_dynamics() {
        let mut params = quick_params(1_800_000.0);
        params.timeline_bucket = Some(SimDuration::from_micros(100));
        let mut w = small_workload();
        let res = run_one(SystemConfig::dilos(), &mut w, params);
        let tl = res.timeline.expect("timeline requested");
        assert!(tl.queue_depth.samples() > 1_000);
        assert!(tl.inflight.global_max() >= 1.0);
        assert!(!tl.queue_depth.means().is_empty());
    }

    #[test]
    fn huge_page_fetches_inflate_latency() {
        let mut cfg = SystemConfig::adios();
        cfg.fetch_page_bytes = 2 * 1024 * 1024;
        cfg.speculative_readahead = 0.0;
        cfg.prefetcher = crate::config::PrefetcherKind::None;
        // Below the 2 MB variant's (tiny) link capacity, so remote
        // requests actually complete and dominate the median.
        let mut w = small_workload();
        let huge = run_one(cfg, &mut w, quick_params(8_000.0));
        let small = run_one(SystemConfig::adios(), &mut w, quick_params(8_000.0));
        assert!(
            huge.recorder.overall().percentile(50.0)
                > small.recorder.overall().percentile(50.0) * 10,
            "512x I/O amplification must show: {} vs {}",
            huge.recorder.overall().percentile(50.0),
            small.recorder.overall().percentile(50.0)
        );
    }

    #[test]
    fn near_zero_load_runs_cleanly() {
        // A window that may see zero or a handful of arrivals must not
        // wedge the event loop or the utilisation accounting.
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, quick_params(100.0));
        assert_eq!(res.recorder.dropped(), 0);
        assert!(res.rdma_data_util < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let cfg = SystemConfig {
            workers: 0,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let _ = run_one(cfg, &mut w, quick_params(1_000.0));
    }

    #[test]
    fn conservation_completed_plus_dropped() {
        let res = run(SystemKind::Adios, 800_000.0);
        // Within the measurement window, throughput ≈ offered − drops.
        let offered_in_window = res.offered_rps * res.window.as_secs_f64();
        let acc = res.recorder.completed_in_window() + res.recorder.dropped();
        let ratio = acc as f64 / offered_in_window;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "conservation ratio {ratio} (completed+dropped {acc} vs offered {offered_in_window})"
        );
    }

    #[test]
    fn warmup_activity_excluded_from_window_counters() {
        // A warmup longer than the measurement window: with cumulative
        // counters (the old bug) spin_ns would cover warmup + drain and
        // spin_fraction could exceed 1; windowed counters keep it sane.
        let mut params = quick_params(1_500_000.0);
        params.warmup = SimDuration::from_millis(8);
        params.measure = SimDuration::from_millis(4);
        let mut w = small_workload();
        let res = run_one(SystemConfig::dilos(), &mut w, params);
        assert!(res.stats.spin_ns > 0, "DiLOS busy-waits under load");
        assert!(
            res.spin_fraction() <= 1.0 + 1e-9,
            "spin fraction {} must not exceed total worker time",
            res.spin_fraction()
        );
        // The snapshot window covers the measurement phase only, not
        // warmup or the post-measure drain.
        let win = res.metrics.window_ns as f64;
        let measure = SimDuration::from_millis(4).as_nanos() as f64;
        assert!(
            win >= measure && win < measure * 1.5,
            "window {win} ns should be ≈ measure window {measure} ns"
        );
    }

    #[test]
    fn trace_records_virtual_time_events() {
        let mut params = quick_params(1_000_000.0);
        params.trace_capacity = Some(50_000);
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, params);
        let trace = res.trace.expect("trace requested");
        assert!(!trace.is_empty());
        assert!(
            trace.windows(2).all(|w| w[0].at <= w[1].at),
            "trace must be sorted by virtual time"
        );
        let names: std::collections::HashSet<_> =
            trace.iter().map(|e| (e.component, e.name)).collect();
        assert!(names.contains(&("dispatch", "arrival")));
        assert!(names.contains(&("fault", "miss")));
        assert!(names.contains(&("worker", "complete")));
    }

    #[test]
    fn metrics_registry_matches_stats_view() {
        let mut w = small_workload();
        let res = run_one(SystemConfig::dilos(), &mut w, quick_params(1_500_000.0));
        let m = &res.metrics;
        assert_eq!(m.counter("spin_ns"), Some(res.stats.spin_ns));
        assert_eq!(m.counter("preemptions"), Some(res.stats.preemptions));
        assert_eq!(m.counter("qp_stalls"), Some(res.stats.qp_stalls));
        assert_eq!(m.counter("coalesced"), Some(res.stats.coalesced));
        assert_eq!(m.counter("writebacks"), Some(res.stats.writebacks));
        assert_eq!(m.counter("steals"), Some(res.stats.steals));
        // Completions flow through both the recorder and the registry.
        // The recorder windows on each completion's rx timestamp while
        // the registry re-bases at the first *event* past each boundary
        // (and worker virtual clocks lead the event clock), so the two
        // may disagree by the couple of requests in flight at a
        // boundary — but no more.
        let reg = m.counter("completions").unwrap();
        let rec = res.recorder.completed_in_window();
        assert!(
            reg.abs_diff(rec) <= 8,
            "registry completions {reg} vs recorder {rec}"
        );
        // Gauges exist and saw activity.
        let qd = m.gauge("queue_depth").expect("queue_depth registered");
        assert!(qd.max >= 1.0);
        assert!(m.gauge("qp_outstanding").is_some());
    }

    // ----- memnode sharding ---------------------------------------------

    #[test]
    fn single_shard_runs_register_no_per_shard_counters() {
        use desim::trace::shard_names as sn;
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, quick_params(400_000.0));
        assert!(
            res.metrics.counter(sn::FETCHES[0]).is_none(),
            "per-shard counters must stay out of single-shard registries"
        );
        assert!(res.metrics.gauge(sn::QP_OUTSTANDING[0]).is_none());
        assert_eq!(
            res.shards.len(),
            1,
            "the lone shard still gets a window view"
        );
    }

    #[test]
    fn sharded_run_spreads_fetches_across_every_shard() {
        use desim::trace::shard_names as sn;
        let cfg = SystemConfig {
            memnode_shards: 4,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let res = run_one(cfg, &mut w, quick_params(400_000.0));
        assert_eq!(res.shards.len(), 4);
        for s in 0..4 {
            let fetched = res.metrics.counter(sn::FETCHES[s]).unwrap_or(0);
            assert!(fetched > 0, "shard {s} saw no fetches");
            assert!(
                res.shards[s].data_bytes > 0,
                "shard {s} moved no data on its rail"
            );
        }
        assert_eq!(res.recorder.dropped(), 0);
        assert_fault_invariant(&res);
    }

    #[test]
    fn sharded_crash_fails_over_one_shard_and_spares_the_rest() {
        use desim::trace::shard_names as sn;
        // Down global node 0 — shard 0's primary under the packed chain
        // layout — with no steady error rate (the canonical `crash`
        // scenario adds 0.1 % background CQE errors, which would touch
        // every shard). Shard 0's pages must walk its replica chain;
        // shards 1–3 must never see an error.
        let cfg = SystemConfig {
            memnode_shards: 4,
            memnode_replicas: 2,
            ..SystemConfig::adios()
        };
        let res = run_faulty(cfg, 400_000.0, FaultScenario::crash_node(0));
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert!(
            c(sn::FAILOVERS[0]) > 0,
            "shard 0's outage must divert onto its replica"
        );
        for s in 1..4 {
            assert_eq!(
                c(sn::CQE_ERRORS[s]),
                0,
                "shard {s} shares no fate with shard 0's dead primary"
            );
        }
        assert_eq!(res.recorder.dropped(), 0, "replica absorbs the outage");
        assert_fault_invariant(&res);
    }

    #[test]
    fn sharded_crash_of_a_non_primary_node_spares_shard_zero() {
        use desim::trace::shard_names as sn;
        // Down shard 1's primary (global node 2 when replicas = 2):
        // re-mapping must stay contained to shard 1.
        let cfg = SystemConfig {
            memnode_shards: 4,
            memnode_replicas: 2,
            ..SystemConfig::adios()
        };
        let res = run_faulty(cfg, 400_000.0, FaultScenario::crash_node(2));
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert!(c(sn::FAILOVERS[1]) > 0, "shard 1 must fail over");
        for s in [0usize, 2, 3] {
            assert_eq!(c(sn::CQE_ERRORS[s]), 0, "shard {s} must be untouched");
        }
        assert_eq!(res.recorder.dropped(), 0);
        assert_fault_invariant(&res);
    }

    #[test]
    #[should_panic(expected = "memnode_shards must be at least 1")]
    fn zero_shards_is_rejected_at_run_start() {
        let cfg = SystemConfig {
            memnode_shards: 0,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let _ = run_one(cfg, &mut w, quick_params(100_000.0));
    }

    // ----- tenant plane --------------------------------------------------

    use loadgen::{TenantPlane, TenantPriority, TenantSpec};

    fn tenant_params(plane: TenantPlane) -> RunParams {
        RunParams {
            offered_rps: plane.total_rate_rps(),
            tenants: Some(plane),
            ..quick_params(0.0)
        }
    }

    #[test]
    fn single_tenant_plane_registers_no_tenant_counters() {
        use desim::trace::tenant_names as tn;
        let plane = TenantPlane::new(vec![TenantSpec::new(
            400_000.0,
            "array",
            TenantPriority::High,
        )]);
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, tenant_params(plane));
        assert!(
            res.metrics.counter(tn::ARRIVALS[0]).is_none(),
            "tenantN.* counters must stay out of single-tenant registries"
        );
        assert_eq!(res.tenants.len(), 1, "the lone tenant still gets a window");
        let t = &res.tenants[0];
        assert_eq!(t.priority, "high");
        assert!(
            t.completed > 1_000,
            "tenant saw {} completions",
            t.completed
        );
        assert_eq!(t.completed, res.recorder.completed_in_window());
        assert_eq!(t.sheds + t.drops, 0);
        assert!(t.slo_ok.is_none(), "no SLO rule, no verdict");
        assert!(res.conservation.holds());
        assert!(res.conservation.sheds == 0 && res.conservation.aborts == 0);
    }

    #[test]
    fn overloaded_mix_sheds_low_priority_and_conserves_requests() {
        use desim::trace::tenant_names as tn;
        // A high-priority tenant comfortably inside capacity plus a
        // low-priority flood far past saturation, with the watermark
        // set low enough to engage: shedding must land entirely on the
        // flood while the partition identities hold.
        let plane = TenantPlane::new(vec![
            TenantSpec::new(300_000.0, "array", TenantPriority::High),
            TenantSpec::new(6_000_000.0, "array", TenantPriority::Low),
        ])
        .with_shed_watermark(64);
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, tenant_params(plane));
        assert_eq!(res.tenants.len(), 2);
        let (hi, lo) = (&res.tenants[0], &res.tenants[1]);
        assert_eq!(hi.sheds, 0, "watermark must never shed high priority");
        assert!(lo.sheds > 1_000, "the flood must shed (got {})", lo.sheds);
        assert!(hi.completed > 1_000 && lo.completed > 0);
        // Windowed per-tenant views partition the recorder's view.
        assert_eq!(
            hi.completed + lo.completed,
            res.recorder.completed_in_window()
        );
        assert_eq!(
            hi.sheds + lo.sheds + hi.drops + lo.drops,
            res.recorder.dropped()
        );
        // Registry counters partition the global ones (whole run, not
        // just the window).
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert_eq!(
            c(tn::COMPLETIONS[0]) + c(tn::COMPLETIONS[1]),
            res.metrics.counter("completions").unwrap_or(0)
        );
        assert!(c(tn::ARRIVALS[0]) > 0 && c(tn::ARRIVALS[1]) > 0);
        assert_eq!(c(tn::SHEDS[0]), 0);
        assert!(c(tn::SHEDS[1]) > 0);
        assert!(res.conservation.holds(), "{:?}", res.conservation);
        assert!(res.conservation.sheds > 0);
    }

    #[test]
    fn token_bucket_polices_a_tenant_to_its_configured_rate() {
        // One tenant offering 600k but policed to 200k: admitted
        // throughput must track the bucket, not the offered rate, and
        // the excess must surface as sheds.
        let plane = TenantPlane::new(vec![
            TenantSpec::new(600_000.0, "array", TenantPriority::High).with_bucket(200_000.0, 64),
            TenantSpec::new(100_000.0, "array", TenantPriority::High),
        ]);
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, tenant_params(plane));
        let t0 = &res.tenants[0];
        let window_s = SimDuration::from_millis(10).as_secs_f64();
        let admitted_rps = t0.admitted as f64 / window_s;
        assert!(
            (150_000.0..=210_000.0).contains(&admitted_rps),
            "policed tenant admitted {admitted_rps:.0} rps, want ~200k"
        );
        assert!(t0.sheds > 1_000, "policing must shed the excess");
        assert_eq!(res.tenants[1].sheds, 0, "unpoliced tenant is untouched");
        assert!(res.conservation.holds());
    }

    #[test]
    fn per_tenant_slo_verdicts_follow_the_latency_split() {
        // Same workload, wildly different objectives: a 1 s objective
        // must pass and a 1 ns objective must fail on the same run.
        let generous = desim::parse_slo_spec("lat<1s:0.01@1ms").unwrap();
        let impossible = desim::parse_slo_spec("lat<1ns:0.01@1ms").unwrap();
        let plane = TenantPlane::new(vec![
            TenantSpec::new(200_000.0, "array", TenantPriority::High).with_slo(generous),
            TenantSpec::new(200_000.0, "array", TenantPriority::High).with_slo(impossible),
        ]);
        let mut w = small_workload();
        let res = run_one(SystemConfig::adios(), &mut w, tenant_params(plane));
        assert_eq!(res.tenants[0].slo_ok, Some(true));
        assert_eq!(res.tenants[1].slo_ok, Some(false));
    }

    #[test]
    fn conservation_tracked_on_legacy_single_stream_runs() {
        let res = run(SystemKind::Adios, 400_000.0);
        assert!(res.conservation.holds(), "{:?}", res.conservation);
        assert!(res.conservation.arrivals > 0);
        assert_eq!(res.conservation.sheds, 0, "no plane, no sheds");
        assert!(res.tenants.is_empty(), "no plane, no tenant windows");
    }

    // ----- dispatcher scaling --------------------------------------------

    /// Scalar single-queue reference dispatcher: replays a charge log
    /// with the exact arithmetic the pre-scaling hot path used
    /// (`free = max(free, now) + cost`) and asserts the multi-queue
    /// implementation produced the identical admit/handoff sequence.
    fn assert_matches_scalar_reference(cfg: &SystemConfig, log: &[DispatchCharge]) {
        assert!(!log.is_empty(), "the oracle needs a non-empty charge log");
        let mut free = SimTime::ZERO;
        for (i, c) in log.iter().enumerate() {
            assert_eq!(c.disp, 0, "charge {i}: SingleFcfs must serve on core 0");
            let cost = match c.op {
                DispatchOp::Admit => cfg.dispatch_cost + cfg.client_stack,
                DispatchOp::PushHandoff | DispatchOp::PullHandoff => cfg.handoff_cost,
                DispatchOp::Recycle => cfg.recycle_cost,
            };
            let start = free.max(c.now);
            let end = start + cost;
            assert_eq!(
                (c.start, c.end),
                (start, end),
                "charge {i} ({:?} at {:?}) diverges from the scalar reference",
                c.op,
                c.now
            );
            free = end;
        }
    }

    #[test]
    fn single_fcfs_matches_scalar_reference_dispatcher() {
        // Lock-step differential oracle, at one dispatcher (the default
        // machine) and at four (extra cores must change nothing under
        // SingleFcfs — the shared queue head serialises on core 0).
        for ndisp in [1, 4] {
            let cfg = SystemConfig {
                dispatchers: ndisp,
                ..SystemConfig::adios()
            };
            let mut w = small_workload();
            let res = run_one(cfg.clone(), &mut w, quick_params(900_000.0));
            let kinds: std::collections::HashSet<_> =
                res.dispatcher_log.iter().map(|c| c.op).collect();
            assert!(
                kinds.contains(&DispatchOp::Admit) && kinds.contains(&DispatchOp::Recycle),
                "the run must exercise admits and delegated recycles"
            );
            assert_matches_scalar_reference(&cfg, &res.dispatcher_log);
        }
    }

    #[test]
    fn single_dispatcher_registers_no_per_dispatcher_counters() {
        use desim::trace::dispatcher_names as dn;
        let res = run(SystemKind::Adios, 400_000.0);
        for d in 0..dn::MAX_DISPATCHERS {
            assert_eq!(
                res.metrics.counter(dn::ADMITTED[d]),
                None,
                "dispatcher counters must not exist on single-dispatcher runs"
            );
        }
    }

    #[test]
    fn single_fcfs_extra_dispatchers_stay_idle() {
        use desim::trace::dispatcher_names as dn;
        let cfg = SystemConfig {
            dispatchers: 4,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let res = run_one(cfg, &mut w, quick_params(900_000.0));
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        assert!(c(dn::ADMITTED[0]) > 0, "core 0 serves every admission");
        for d in 1..4 {
            assert_eq!(c(dn::ADMITTED[d]), 0, "SingleFcfs keeps core {d} idle");
            assert_eq!(c(dn::STEALS[d]), 0);
            assert_eq!(c(dn::COMBINES[d]), 0);
        }
        assert!(res.conservation.holds(), "{:?}", res.conservation);
    }

    #[test]
    fn work_stealing_steals_under_skew_and_conserves() {
        use desim::trace::dispatcher_names as dn;
        let cfg = SystemConfig {
            dispatchers: 4,
            dispatch_policy: DispatchPolicy::WorkStealing,
            workers: 32,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let res = run_one(
            cfg,
            &mut w,
            RunParams {
                local_mem_fraction: 1.0,
                ..quick_params(5_000_000.0)
            },
        );
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        let admitted: u64 = (0..4).map(|d| c(dn::ADMITTED[d])).sum();
        assert!(admitted > 0);
        assert!(
            (0..4).all(|d| c(dn::ADMITTED[d]) > 0),
            "RSS fan-in plus stealing must spread admissions over every core"
        );
        let steals: u64 = (0..4).map(|d| c(dn::STEALS[d])).sum();
        assert!(steals > 0, "overload must trigger steals from hot slots");
        assert!(res.conservation.holds(), "{:?}", res.conservation);
    }

    #[test]
    fn flat_combining_amortises_admissions() {
        use desim::trace::dispatcher_names as dn;
        let cfg = SystemConfig {
            dispatchers: 4,
            dispatch_policy: DispatchPolicy::FlatCombining,
            workers: 32,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let res = run_one(
            cfg,
            &mut w,
            RunParams {
                local_mem_fraction: 1.0,
                ..quick_params(5_000_000.0)
            },
        );
        let c = |name| res.metrics.counter(name).unwrap_or(0);
        let admitted: u64 = (0..4).map(|d| c(dn::ADMITTED[d])).sum();
        let combines: u64 = (0..4).map(|d| c(dn::COMBINES[d])).sum();
        assert!(combines > 0, "a saturated combiner must batch admissions");
        assert!(
            combines < admitted,
            "every batch has an opener that pays full cost"
        );
        assert!(res.conservation.holds(), "{:?}", res.conservation);
    }

    #[test]
    fn work_stealing_scales_past_the_single_queue_knee() {
        // Dispatcher-bound regime: all-local requests on a wide worker
        // pool, offered far past the single-dispatcher admission rate.
        // Four stealing dispatchers must beat one shared FCFS queue by
        // a wide margin on the same machine.
        let params = || RunParams {
            local_mem_fraction: 1.0,
            ..quick_params(5_000_000.0)
        };
        let fcfs = {
            let cfg = SystemConfig {
                dispatchers: 4,
                workers: 32,
                ..SystemConfig::adios()
            };
            let mut w = small_workload();
            run_one(cfg, &mut w, params()).recorder.achieved_rps()
        };
        let ws = {
            let cfg = SystemConfig {
                dispatchers: 4,
                dispatch_policy: DispatchPolicy::WorkStealing,
                workers: 32,
                ..SystemConfig::adios()
            };
            let mut w = small_workload();
            run_one(cfg, &mut w, params()).recorder.achieved_rps()
        };
        assert!(
            ws > fcfs * 1.3,
            "work stealing {ws:.0} rps must clearly beat single FCFS {fcfs:.0} rps"
        );
    }

    /// Red-green regression for the shed watermark: the depth it
    /// compares must sum the admission backlog over *every* ingress
    /// slot. Under the old single-slot accounting, four slots of 10
    /// waiting admits each would read as depth 10 and the watermark at
    /// 32 would never trip.
    #[test]
    fn shed_watermark_sums_backlog_across_all_ingress_slots() {
        let plane = || {
            TenantPlane::new(vec![
                TenantSpec::new(100_000.0, "array", TenantPriority::High),
                TenantSpec::new(100_000.0, "array", TenantPriority::Low),
            ])
            .with_shed_watermark(32)
        };
        let cfg = SystemConfig {
            dispatchers: 4,
            dispatch_policy: DispatchPolicy::FlatCombining,
            ..SystemConfig::adios()
        };
        let mut w = small_workload();
        let mut sim = Simulation::new(
            cfg,
            &mut w,
            RunParams {
                tenants: Some(plane()),
                ..quick_params(100_000.0)
            },
        );
        // Every slot individually under the watermark, the machine as a
        // whole past it: the low-priority request must shed.
        sim.admission_backlog = vec![10, 10, 10, 10];
        let lo = sim.alloc_req(Trace::default(), SimTime::ZERO, 1);
        sim.cons.arrivals += 1;
        assert!(
            sim.tenant_admission(SimTime::ZERO, lo),
            "summed ingress backlog (40) must trip the watermark (32)"
        );
        // High priority is never watermark-shed, whatever the depth.
        let hi = sim.alloc_req(Trace::default(), SimTime::ZERO, 0);
        sim.cons.arrivals += 1;
        assert!(!sim.tenant_admission(SimTime::ZERO, hi));
        // And a genuinely shallow machine admits low priority.
        sim.admission_backlog = vec![10, 0, 0, 0];
        let lo2 = sim.alloc_req(Trace::default(), SimTime::ZERO, 1);
        sim.cons.arrivals += 1;
        assert!(!sim.tenant_admission(SimTime::ZERO, lo2));
    }
}
