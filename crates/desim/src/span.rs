//! Per-request span trees, critical-path attribution, and Perfetto export.
//!
//! A [`SpanBuilder`] records one request's life as a tree of spans:
//! a root `request` span covering arrival→reply, structural children
//! (`segment` per worker occupancy, `fault` per page fault, `fetch` per
//! RDMA read with `nic_queue`/`wire` sub-spans), and a gap-free tiling
//! of *phase* spans ([`stage`]) that partitions the whole end-to-end
//! interval. The tiling is enforced by construction: [`SpanBuilder::phase`]
//! always extends from the builder's cursor (the end of the previous
//! phase) to the given instant, so phase durations sum to the
//! end-to-end latency *exactly* — the invariant the critical-path
//! attribution ([`CriticalPath`]) and the figure-2c/7c breakdowns rest
//! on.
//!
//! The layer is zero-cost when disabled (the runtime holds an
//! `Option<SpanBuilder>` per request; `None` costs one branch per
//! site) and arena-backed when on: completed trees return their span
//! buffers to a pool inside [`SpanStore`], so steady-state recording
//! does not allocate.
//!
//! [`SpanStore`] aggregates completed trees three ways:
//!
//! - per-stage [`Histogram`]s ([`StageStats`]) for p50/p99/p99.9 per
//!   component on every sweep row;
//! - optional per-request [`CriticalPath`] rows (the exact-sum
//!   breakdown the recorder consumes);
//! - a bounded *tail exemplar* set: full span trees are retained only
//!   for requests whose end-to-end latency lands at or above a
//!   configurable percentile of the running distribution, evicting the
//!   fastest retained exemplar first, so memory stays bounded at
//!   saturation while the trees that explain the tail survive.
//!
//! Exporters: [`spans_to_json`] (raw schema, deterministic) and
//! [`perfetto_json`] (Chrome trace event format, loadable in
//! [Perfetto](https://ui.perfetto.dev) — see `docs/MODEL.md` §7).

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::time::SimTime;

/// Sentinel parent index meaning "no parent" (only the root uses it).
pub const NO_PARENT: u32 = u32::MAX;

/// Phase-span names: a gap-free partition of each request's
/// end-to-end interval. Every nanosecond of a request's latency is
/// covered by exactly one phase span, so these sum to the root span's
/// duration by construction.
pub mod stage {
    /// Client↔server network time (request delivery + reply flight).
    pub const NET: &str = "net";
    /// Dispatcher occupancy before the request is queued to a worker.
    pub const DISPATCH: &str = "dispatch";
    /// Waiting in a run queue for a worker (initial, resume, or retry).
    pub const QUEUE: &str = "queue";
    /// Handler compute on a worker (includes fault-entry kernel cost).
    pub const HANDLE: &str = "handle";
    /// Busy-wait polling for a fetch completion (wasted CPU).
    pub const SPIN: &str = "spin";
    /// Parked waiting for a fetch completion (worker reused elsewhere).
    pub const FETCH_WAIT: &str = "fetch_wait";
    /// Blocked on a full QP send queue before the fetch could post.
    pub const QP_STALL: &str = "qp_stall";
    /// Waiting for the reply doorbell/CQE after handler completion.
    pub const TX_WAIT: &str = "tx_wait";
    /// Context-switch cost (park + resume halves).
    pub const CTX: &str = "ctx";
    /// Reply construction and server-side network stack.
    pub const REPLY: &str = "reply";
}

/// Structural (non-phase) span names.
pub mod node {
    /// Root span: one per request, arrival→client reply receipt.
    pub const REQUEST: &str = "request";
    /// One contiguous occupancy of a worker core.
    pub const SEGMENT: &str = "segment";
    /// One page fault, entry→resume (or retry chain).
    pub const FAULT: &str = "fault";
    /// One RDMA read, post→completion. `b` is a [`super::shard_qp`]
    /// payload: the QP in the low word and the memnode shard the fetch
    /// routed to in the high word (zero on single-shard runs, which
    /// keeps their span JSON identical to pre-sharding output).
    pub const FETCH: &str = "fetch";
    /// Fetch sub-span: doorbell→NIC engine dispatch.
    pub const NIC_QUEUE: &str = "nic_queue";
    /// Fetch sub-span: NIC engine dispatch→DMA completion (of the
    /// final transmission attempt when the transport retransmitted).
    pub const WIRE: &str = "wire";
    /// Fetch sub-span: RC retransmission window, first dispatch→final
    /// attempt's send (`a` = retransmission count). Only present when
    /// the transport retransmitted.
    pub const RETRANS: &str = "retrans";
    /// Instant marker: the runtime re-issued a failed fetch on the
    /// failover QP (`a` = global memnode id the retry targets — equal
    /// to the replica index on single-shard runs — `b` = attempt).
    pub const FAILOVER: &str = "failover";
}

/// Packs a fetch span's `b` payload: the QP id in the low 32 bits and
/// the memnode shard in the high 32. Shard 0 leaves the payload equal
/// to the bare QP id, so single-shard runs serialise exactly as before
/// sharding existed.
#[inline]
pub fn shard_qp(shard: u64, qp: u64) -> u64 {
    debug_assert!(qp < (1 << 32), "QP id overflows the payload low word");
    (shard << 32) | qp
}

/// One node in a request's span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span name ([`stage`] or [`node`] constant).
    pub name: &'static str,
    /// Index of the parent span in the tree, or [`NO_PARENT`].
    pub parent: u32,
    /// Start instant.
    pub start: SimTime,
    /// End instant (`>= start`).
    pub end: SimTime,
    /// First payload word (meaning per name; `docs/MODEL.md` §7).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Span {
    /// Span length in nanoseconds.
    #[inline]
    pub fn dur_ns(&self) -> u64 {
        self.end.as_nanos() - self.start.as_nanos()
    }
}

/// A completed request's span tree. `spans[0]` is always the root
/// `request` span; children reference parents by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Monotonic per-run request sequence number (arrival order).
    pub request: u64,
    /// Workload-defined request class.
    pub class: u16,
    /// The spans, root first, in emission order.
    pub spans: Vec<Span>,
}

impl SpanTree {
    /// End-to-end latency (root span length) in nanoseconds.
    pub fn e2e_ns(&self) -> u64 {
        self.spans[0].dur_ns()
    }
}

/// Records one in-flight request's span tree.
///
/// The builder keeps a *cursor*: the end of the last phase span
/// emitted. [`SpanBuilder::phase`] tiles `[cursor, until]` with the
/// named phase and advances the cursor, clamping `until` up to the
/// cursor so time never runs backward; instants already covered
/// produce no span. This makes the phase tiling gap-free and
/// overlap-free regardless of emission-site ordering quirks, which is
/// what guarantees `Σ phases = e2e` exactly.
#[derive(Debug)]
pub struct SpanBuilder {
    request: u64,
    class: u16,
    spans: Vec<Span>,
    cursor: SimTime,
    open_segment: u32,
    open_fault: u32,
}

impl SpanBuilder {
    /// Starts a tree for request `request` of `class`, arriving
    /// (client transmit) at `tx`. `buf` is a recycled span buffer
    /// (pass `Vec::new()` when not pooling).
    pub fn new(request: u64, class: u16, tx: SimTime, mut buf: Vec<Span>) -> SpanBuilder {
        buf.clear();
        buf.push(Span {
            name: node::REQUEST,
            parent: NO_PARENT,
            start: tx,
            end: tx,
            a: class as u64,
            b: 0,
        });
        SpanBuilder {
            request,
            class,
            spans: buf,
            cursor: tx,
            open_segment: NO_PARENT,
            open_fault: NO_PARENT,
        }
    }

    /// The end of the last phase emitted (the tiling frontier).
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Parent for a new phase span: innermost open structural span.
    fn phase_parent(&self) -> u32 {
        if self.open_fault != NO_PARENT {
            self.open_fault
        } else if self.open_segment != NO_PARENT {
            self.open_segment
        } else {
            0
        }
    }

    /// Tiles `[cursor, until]` with phase `name` and advances the
    /// cursor. If `until` is not after the cursor, nothing is emitted.
    pub fn phase(&mut self, name: &'static str, until: SimTime) {
        if until <= self.cursor {
            return;
        }
        let parent = self.phase_parent();
        self.spans.push(Span {
            name,
            parent,
            start: self.cursor,
            end: until,
            a: 0,
            b: 0,
        });
        self.cursor = until;
    }

    /// Opens a worker-occupancy segment at `at` on worker `worker`.
    pub fn begin_segment(&mut self, at: SimTime, worker: usize) {
        debug_assert_eq!(self.open_segment, NO_PARENT, "segment already open");
        self.open_segment = self.spans.len() as u32;
        self.spans.push(Span {
            name: node::SEGMENT,
            parent: 0,
            start: at,
            end: at,
            a: worker as u64,
            b: 0,
        });
    }

    /// Closes the open segment at `at` (no-op when none is open).
    pub fn end_segment(&mut self, at: SimTime) {
        if self.open_segment != NO_PARENT {
            let s = &mut self.spans[self.open_segment as usize];
            s.end = at.max(s.start);
            self.open_segment = NO_PARENT;
        }
    }

    /// Opens a fault span at `at` for `page`. Re-entrant: if a fault is
    /// already open (QP-full retry re-enters the fault path), the
    /// existing span is kept.
    pub fn begin_fault(&mut self, at: SimTime, page: u64) {
        if self.open_fault != NO_PARENT {
            return;
        }
        let parent = if self.open_segment != NO_PARENT {
            self.open_segment
        } else {
            0
        };
        self.open_fault = self.spans.len() as u32;
        self.spans.push(Span {
            name: node::FAULT,
            parent,
            start: at,
            end: at,
            a: page,
            b: 0,
        });
    }

    /// Closes the open fault at `at` (no-op when none is open).
    pub fn end_fault(&mut self, at: SimTime) {
        if self.open_fault != NO_PARENT {
            let s = &mut self.spans[self.open_fault as usize];
            s.end = at.max(s.start);
            self.open_fault = NO_PARENT;
        }
    }

    /// Records one RDMA fetch: posted at `post`, dispatched by the NIC
    /// engine at `issued`, completed at `done`. Emits a `fetch` span
    /// (child of the open fault, segment, or root) with `nic_queue`
    /// and `wire` sub-spans split at `issued`.
    pub fn fetch(&mut self, post: SimTime, issued: SimTime, done: SimTime, page: u64, qp: u64) {
        self.fetch_with_retrans(post, issued, issued, done, page, qp, 0);
    }

    /// Like [`SpanBuilder::fetch`], but for a transfer the RC transport
    /// retransmitted: `wire_start` is the final attempt's send instant,
    /// and `[issued, wire_start]` becomes a `retrans` sub-span carrying
    /// the retransmission count.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_with_retrans(
        &mut self,
        post: SimTime,
        issued: SimTime,
        wire_start: SimTime,
        done: SimTime,
        page: u64,
        qp: u64,
        retransmits: u32,
    ) {
        let done = done.max(post);
        let issued = issued.clamp(post, done);
        let wire_start = wire_start.clamp(issued, done);
        let parent = self.phase_parent();
        let fetch_idx = self.spans.len() as u32;
        self.spans.push(Span {
            name: node::FETCH,
            parent,
            start: post,
            end: done,
            a: page,
            b: qp,
        });
        self.spans.push(Span {
            name: node::NIC_QUEUE,
            parent: fetch_idx,
            start: post,
            end: issued,
            a: page,
            b: qp,
        });
        if retransmits > 0 && wire_start > issued {
            self.spans.push(Span {
                name: node::RETRANS,
                parent: fetch_idx,
                start: issued,
                end: wire_start,
                a: retransmits as u64,
                b: qp,
            });
        }
        self.spans.push(Span {
            name: node::WIRE,
            parent: fetch_idx,
            start: wire_start,
            end: done,
            a: page,
            b: qp,
        });
    }

    /// Emits a zero-length `failover` marker at `at`: the runtime gave
    /// up on a fetch attempt and re-issued it targeting `replica`
    /// (`attempt` counts issues of this fetch, starting at 1).
    pub fn failover(&mut self, at: SimTime, replica: u64, attempt: u64) {
        let parent = self.phase_parent();
        self.spans.push(Span {
            name: node::FAILOVER,
            parent,
            start: at,
            end: at,
            a: replica,
            b: attempt,
        });
    }

    /// Completes the tree: the reply reached the client at `rx`. The
    /// caller must have tiled phases up to `rx`; any still-open
    /// segment or fault is closed defensively.
    pub fn finish(mut self, rx: SimTime) -> SpanTree {
        debug_assert_eq!(self.cursor, rx, "phase tiling must reach the reply instant");
        self.end_fault(rx);
        self.end_segment(rx);
        let root = &mut self.spans[0];
        root.end = rx.max(root.start);
        SpanTree {
            request: self.request,
            class: self.class,
            spans: self.spans,
        }
    }

    /// Abandons the tree (dropped request), returning the span buffer
    /// for recycling.
    pub fn into_buf(self) -> Vec<Span> {
        self.spans
    }
}

/// Exact attribution of one request's end-to-end latency.
///
/// The ten phase components sum to `e2e_ns` *exactly* (the phase
/// tiling is gap-free by construction — see [`SpanBuilder::phase`]).
/// `fetch_wall_ns`/`fetch_hidden_ns` are overlays, not components:
/// wall time of RDMA fetches and the part of it overlapped by useful
/// work (prefetch ahead of demand, or fetch racing handler compute)
/// rather than by a stall. `spin_ns + fetch_wait_ns` is the stalled
/// remainder — the critical-path fetch exposure the paper's figures
/// 2c/7c call "RDMA".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// End-to-end latency (root span), ns.
    pub e2e_ns: u64,
    /// [`stage::NET`] total, ns.
    pub net_ns: u64,
    /// [`stage::DISPATCH`] total, ns.
    pub dispatch_ns: u64,
    /// [`stage::QUEUE`] total, ns.
    pub queue_ns: u64,
    /// [`stage::HANDLE`] total, ns.
    pub handle_ns: u64,
    /// [`stage::SPIN`] total, ns.
    pub spin_ns: u64,
    /// [`stage::FETCH_WAIT`] total, ns.
    pub fetch_wait_ns: u64,
    /// [`stage::QP_STALL`] total, ns.
    pub qp_stall_ns: u64,
    /// [`stage::TX_WAIT`] total, ns.
    pub tx_wait_ns: u64,
    /// [`stage::CTX`] total, ns.
    pub ctx_ns: u64,
    /// [`stage::REPLY`] total, ns.
    pub reply_ns: u64,
    /// Overlay: summed wall time of all `fetch` spans, ns.
    pub fetch_wall_ns: u64,
    /// Overlay: fetch wall time overlapped by useful work (not by a
    /// spin or park stall), ns.
    pub fetch_hidden_ns: u64,
}

impl CriticalPath {
    /// Computes the attribution for one completed tree.
    pub fn of(tree: &SpanTree) -> CriticalPath {
        let mut cp = CriticalPath {
            e2e_ns: tree.e2e_ns(),
            ..CriticalPath::default()
        };
        // Stall intervals: the request is blocked on a fetch.
        let mut stalls: Vec<(u64, u64)> = Vec::new();
        let mut fetches: Vec<(u64, u64)> = Vec::new();
        for s in &tree.spans {
            let d = s.dur_ns();
            match s.name {
                stage::NET => cp.net_ns += d,
                stage::DISPATCH => cp.dispatch_ns += d,
                stage::QUEUE => cp.queue_ns += d,
                stage::HANDLE => cp.handle_ns += d,
                stage::SPIN => {
                    cp.spin_ns += d;
                    stalls.push((s.start.as_nanos(), s.end.as_nanos()));
                }
                stage::FETCH_WAIT => {
                    cp.fetch_wait_ns += d;
                    stalls.push((s.start.as_nanos(), s.end.as_nanos()));
                }
                stage::QP_STALL => cp.qp_stall_ns += d,
                stage::TX_WAIT => cp.tx_wait_ns += d,
                stage::CTX => cp.ctx_ns += d,
                stage::REPLY => cp.reply_ns += d,
                node::FETCH => fetches.push((s.start.as_nanos(), s.end.as_nanos())),
                _ => {}
            }
        }
        for &(fs, fe) in &fetches {
            cp.fetch_wall_ns += fe - fs;
            let stalled: u64 = stalls
                .iter()
                .map(|&(bs, be)| be.min(fe).saturating_sub(bs.max(fs)))
                .sum();
            cp.fetch_hidden_ns += (fe - fs).saturating_sub(stalled.min(fe - fs));
        }
        cp
    }

    /// The ten phase components as `(stage name, ns)` pairs, in
    /// canonical order.
    pub fn components(&self) -> [(&'static str, u64); 10] {
        [
            (stage::NET, self.net_ns),
            (stage::DISPATCH, self.dispatch_ns),
            (stage::QUEUE, self.queue_ns),
            (stage::HANDLE, self.handle_ns),
            (stage::SPIN, self.spin_ns),
            (stage::FETCH_WAIT, self.fetch_wait_ns),
            (stage::QP_STALL, self.qp_stall_ns),
            (stage::TX_WAIT, self.tx_wait_ns),
            (stage::CTX, self.ctx_ns),
            (stage::REPLY, self.reply_ns),
        ]
    }

    /// Sum of the ten phase components; equals `e2e_ns` for any tree
    /// built through [`SpanBuilder`].
    pub fn components_sum(&self) -> u64 {
        self.components().iter().map(|&(_, v)| v).sum()
    }
}

/// Canonical stage-histogram order: end-to-end first, then the ten
/// phase components, then the two fetch overlays.
pub const STAGES: [&str; 13] = [
    "e2e",
    stage::NET,
    stage::DISPATCH,
    stage::QUEUE,
    stage::HANDLE,
    stage::SPIN,
    stage::FETCH_WAIT,
    stage::QP_STALL,
    stage::TX_WAIT,
    stage::CTX,
    stage::REPLY,
    "fetch_wall",
    "fetch_hidden",
];

/// Per-stage latency histograms over measured requests, in
/// [`STAGES`] order.
#[derive(Debug, Clone)]
pub struct StageStats {
    hists: Vec<(&'static str, Histogram)>,
}

impl Default for StageStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StageStats {
    /// Creates empty histograms for every canonical stage.
    pub fn new() -> StageStats {
        StageStats {
            hists: STAGES.iter().map(|&n| (n, Histogram::new())).collect(),
        }
    }

    /// Records one request's attribution into every stage histogram.
    pub fn record(&mut self, cp: &CriticalPath) {
        let values = [
            cp.e2e_ns,
            cp.net_ns,
            cp.dispatch_ns,
            cp.queue_ns,
            cp.handle_ns,
            cp.spin_ns,
            cp.fetch_wait_ns,
            cp.qp_stall_ns,
            cp.tx_wait_ns,
            cp.ctx_ns,
            cp.reply_ns,
            cp.fetch_wall_ns,
            cp.fetch_hidden_ns,
        ];
        for ((_, h), v) in self.hists.iter_mut().zip(values) {
            h.record(v);
        }
    }

    /// Histogram for `name`, if it is a canonical stage.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Iterates `(stage name, histogram)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (*n, h))
    }

    /// Renders `{"stage":{"count":..,"mean":..,"p50":..,"p99":..,
    /// "p999":..,"max":..},..}` deterministically (canonical order,
    /// fixed float precision).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                name,
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.percentile(99.9),
                h.max()
            );
        }
        out.push('}');
        out
    }
}

/// Configuration for the per-run span layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanConfig {
    /// Keep one [`CriticalPath`] row per measured request (needed for
    /// percentile-window breakdowns; costs ~100 B/request).
    pub keep_attributions: bool,
    /// Retain full span trees for requests at or above this
    /// end-to-end percentile (`None` disables exemplar retention).
    pub exemplar_percentile: Option<f64>,
    /// Upper bound on retained exemplar trees.
    pub max_exemplars: usize,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            keep_attributions: true,
            exemplar_percentile: None,
            max_exemplars: 0,
        }
    }
}

impl SpanConfig {
    /// Stage histograms only: no per-request rows, no exemplars. The
    /// cheapest useful setting — what sweeps use.
    pub fn stats_only() -> SpanConfig {
        SpanConfig {
            keep_attributions: false,
            exemplar_percentile: None,
            max_exemplars: 0,
        }
    }

    /// Stats plus up to `max` full trees for requests at or above the
    /// `p`-th end-to-end percentile.
    pub fn with_exemplars(p: f64, max: usize) -> SpanConfig {
        SpanConfig {
            keep_attributions: false,
            exemplar_percentile: Some(p),
            max_exemplars: max,
        }
    }
}

/// Maximum recycled span buffers kept by a store.
const POOL_CAP: usize = 256;

/// Owns everything the span layer aggregates during a run.
#[derive(Debug)]
pub struct SpanStore {
    cfg: SpanConfig,
    stats: StageStats,
    e2e: Histogram,
    attributions: Vec<CriticalPath>,
    exemplars: Vec<SpanTree>,
    pool: Vec<Vec<Span>>,
    next_request: u64,
    measured: u64,
}

impl SpanStore {
    /// Creates an empty store.
    pub fn new(cfg: SpanConfig) -> SpanStore {
        SpanStore {
            cfg,
            stats: StageStats::new(),
            e2e: Histogram::new(),
            attributions: Vec::new(),
            exemplars: Vec::new(),
            pool: Vec::new(),
            next_request: 0,
            measured: 0,
        }
    }

    /// Starts a builder for the next request (sequence numbers are
    /// assigned in arrival order, so same-seed runs agree).
    pub fn builder(&mut self, class: u16, tx: SimTime) -> SpanBuilder {
        let request = self.next_request;
        self.next_request += 1;
        let buf = self.pool.pop().unwrap_or_default();
        SpanBuilder::new(request, class, tx, buf)
    }

    /// Reclaims an abandoned builder's buffer (dropped request).
    pub fn discard(&mut self, b: SpanBuilder) {
        self.recycle_buf(b.into_buf());
    }

    fn recycle_buf(&mut self, mut buf: Vec<Span>) {
        if self.pool.len() < POOL_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    fn recycle(&mut self, tree: SpanTree) {
        self.recycle_buf(tree.spans);
    }

    /// Completes a request at reply-receipt instant `rx` and returns
    /// its attribution. Aggregates (histograms, attribution rows,
    /// exemplars) only when `in_window` — warm-up and drain-phase
    /// completions still produce an attribution but leave no trace.
    pub fn complete(&mut self, b: SpanBuilder, rx: SimTime, in_window: bool) -> CriticalPath {
        let tree = b.finish(rx);
        let cp = CriticalPath::of(&tree);
        if !in_window {
            self.recycle(tree);
            return cp;
        }
        self.measured += 1;
        self.stats.record(&cp);
        self.e2e.record(cp.e2e_ns);
        if self.cfg.keep_attributions {
            self.attributions.push(cp);
        }
        match self.cfg.exemplar_percentile {
            Some(p) if self.cfg.max_exemplars > 0 => {
                // Online threshold over the measured e2e distribution:
                // a tree qualifies while it sits at/above the p-th
                // percentile seen so far.
                if cp.e2e_ns >= self.e2e.percentile(p) {
                    if self.exemplars.len() < self.cfg.max_exemplars {
                        self.exemplars.push(tree);
                    } else {
                        let (mi, min_e2e) = self
                            .exemplars
                            .iter()
                            .enumerate()
                            .map(|(i, t)| (i, t.e2e_ns()))
                            .min_by_key(|&(_, e)| e)
                            .expect("max_exemplars > 0");
                        if cp.e2e_ns > min_e2e {
                            let old = std::mem::replace(&mut self.exemplars[mi], tree);
                            self.recycle(old);
                        } else {
                            self.recycle(tree);
                        }
                    }
                } else {
                    self.recycle(tree);
                }
            }
            _ => self.recycle(tree),
        }
        cp
    }

    /// Freezes the store into the report carried on `RunResult`.
    /// Exemplars are sorted by request sequence so output is
    /// insertion-order independent.
    pub fn finish(mut self) -> SpanReport {
        self.exemplars.sort_by_key(|t| t.request);
        SpanReport {
            stats: self.stats,
            attributions: self.attributions,
            exemplars: self.exemplars,
            measured: self.measured,
        }
    }
}

/// Frozen span-layer output of one run.
#[derive(Debug, Clone)]
pub struct SpanReport {
    /// Per-stage histograms over measured requests.
    pub stats: StageStats,
    /// One attribution row per measured request (empty unless
    /// [`SpanConfig::keep_attributions`]).
    pub attributions: Vec<CriticalPath>,
    /// Retained tail exemplar trees, by request sequence.
    pub exemplars: Vec<SpanTree>,
    /// Measured-window completions seen by the store.
    pub measured: u64,
}

/// Renders span trees in the raw schema (`docs/MODEL.md` §7):
/// `[{"request":..,"class":..,"spans":[{"name":..,"parent":..,
/// "start":..,"end":..,"a":..,"b":..},..]},..]`. `parent` is `-1`
/// for the root. Deterministic for a deterministic tree list.
pub fn spans_to_json(trees: &[SpanTree]) -> String {
    let mut out = String::from("[");
    for (i, t) in trees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"request\":{},\"class\":{},\"spans\":[",
            t.request, t.class
        );
        for (j, s) in t.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let parent = if s.parent == NO_PARENT {
                -1
            } else {
                s.parent as i64
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"parent\":{},\"start\":{},\"end\":{},\"a\":{},\"b\":{}}}",
                s.name,
                parent,
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.a,
                s.b
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Timestamp in Chrome-trace microseconds, fixed precision.
fn us(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1_000.0)
}

/// Renders span trees as Chrome trace event JSON, loadable at
/// <https://ui.perfetto.dev>.
///
/// Layout: each request is a Perfetto *process* (`pid` = request
/// sequence) with four tracks — `tid` 0 the root `request` span,
/// `tid` 1 worker segments, `tid` 2 the phase tiling, `tid` 3 faults
/// — all as `"X"` complete events (each track is overlap-free by
/// construction). Fetches and their `nic_queue`/`wire` sub-spans are
/// async `"b"`/`"e"` pairs (category `"fetch"`, process-wide unique
/// ids) because concurrent prefetches overlap in time.
pub fn perfetto_json(trees: &[SpanTree]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut async_id: u64 = 0;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };
    for t in trees {
        let pid = t.request;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"request {} (class {})\"}}}}",
                t.request, t.class
            ),
        );
        for (tid, name) in [
            (0, "request"),
            (1, "segments"),
            (2, "phases"),
            (3, "faults"),
        ] {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for s in &t.spans {
            let tid = match s.name {
                node::REQUEST => 0,
                node::SEGMENT => 1,
                node::FAULT => 3,
                node::FAILOVER => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":3,\"ts\":{},\
                             \"name\":\"failover\",\"s\":\"t\",\
                             \"args\":{{\"a\":{},\"b\":{}}}}}",
                            us(s.start),
                            s.a,
                            s.b
                        ),
                    );
                    continue;
                }
                node::FETCH | node::NIC_QUEUE | node::WIRE | node::RETRANS => {
                    let id = async_id;
                    async_id += 1;
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"b\",\"cat\":\"fetch\",\"id\":{id},\"pid\":{pid},\
                             \"tid\":0,\"ts\":{},\"name\":\"{}\",\
                             \"args\":{{\"a\":{},\"b\":{}}}}}",
                            us(s.start),
                            s.name,
                            s.a,
                            s.b
                        ),
                    );
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"e\",\"cat\":\"fetch\",\"id\":{id},\"pid\":{pid},\
                             \"tid\":0,\"ts\":{},\"name\":\"{}\"}}",
                            us(s.end),
                            s.name
                        ),
                    );
                    continue;
                }
                _ => 2,
            };
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{:.3},\
                     \"name\":\"{}\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                    us(s.start),
                    s.dur_ns() as f64 / 1_000.0,
                    s.name,
                    s.a,
                    s.b
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// A representative tree: net→dispatch→queue→segment(handle,
    /// fault(handle, spin), handle)→reply→tx_wait→net.
    fn sample_tree(request: u64) -> SpanTree {
        let mut b = SpanBuilder::new(request, 1, t(0), Vec::new());
        b.phase(stage::NET, t(100));
        b.phase(stage::DISPATCH, t(150));
        b.phase(stage::QUEUE, t(200));
        b.begin_segment(t(200), 3);
        b.phase(stage::HANDLE, t(500));
        b.begin_fault(t(500), 42);
        b.phase(stage::HANDLE, t(600));
        b.fetch(t(600), t(620), t(900), 42, 7);
        b.phase(stage::SPIN, t(900));
        b.end_fault(t(900));
        b.phase(stage::HANDLE, t(1_100));
        b.phase(stage::REPLY, t(1_200));
        b.end_segment(t(1_200));
        b.phase(stage::TX_WAIT, t(1_250));
        b.phase(stage::NET, t(1_400));
        b.finish(t(1_400))
    }

    #[test]
    fn phase_tiling_sums_to_e2e_exactly() {
        let tree = sample_tree(0);
        let cp = CriticalPath::of(&tree);
        assert_eq!(tree.e2e_ns(), 1_400);
        assert_eq!(cp.components_sum(), cp.e2e_ns);
        assert_eq!(cp.net_ns, 100 + 150);
        assert_eq!(cp.handle_ns, 300 + 100 + 200);
        assert_eq!(cp.spin_ns, 300);
    }

    #[test]
    fn phase_clamps_backward_time_and_skips_empty() {
        let mut b = SpanBuilder::new(0, 0, t(1_000), Vec::new());
        b.phase(stage::NET, t(1_100));
        // An earlier instant (worker clock behind the cursor) emits
        // nothing and does not move the cursor back.
        b.phase(stage::QUEUE, t(1_050));
        assert_eq!(b.cursor(), t(1_100));
        b.phase(stage::QUEUE, t(1_100));
        let tree = b.finish(t(1_100));
        assert_eq!(tree.spans.len(), 2); // root + net
        assert_eq!(CriticalPath::of(&tree).components_sum(), tree.e2e_ns());
    }

    #[test]
    fn fetch_overlap_accounting_splits_hidden_from_stalled() {
        let mut b = SpanBuilder::new(0, 0, t(0), Vec::new());
        b.begin_segment(t(0), 0);
        b.begin_fault(t(0), 9);
        // Fetch [0, 400]; the request only stalls on it for [300, 400]
        // (100 ns); the first 300 ns are hidden under handler compute.
        b.fetch(t(0), t(40), t(400), 9, 0);
        b.phase(stage::HANDLE, t(300));
        b.phase(stage::SPIN, t(400));
        b.end_fault(t(400));
        b.end_segment(t(400));
        let tree = b.finish(t(400));
        let cp = CriticalPath::of(&tree);
        assert_eq!(cp.fetch_wall_ns, 400);
        assert_eq!(cp.spin_ns, 100);
        assert_eq!(cp.fetch_hidden_ns, 300);
        assert_eq!(cp.components_sum(), cp.e2e_ns);
    }

    #[test]
    fn fetch_fully_stalled_hides_nothing() {
        let mut b = SpanBuilder::new(0, 0, t(0), Vec::new());
        b.begin_fault(t(0), 1);
        b.fetch(t(0), t(10), t(200), 1, 0);
        b.phase(stage::FETCH_WAIT, t(200));
        b.end_fault(t(200));
        let tree = b.finish(t(200));
        let cp = CriticalPath::of(&tree);
        assert_eq!(cp.fetch_hidden_ns, 0);
        assert_eq!(cp.fetch_wait_ns, 200);
    }

    #[test]
    fn structural_tree_shape() {
        let tree = sample_tree(5);
        assert_eq!(tree.spans[0].name, node::REQUEST);
        assert_eq!(tree.spans[0].parent, NO_PARENT);
        let seg = tree
            .spans
            .iter()
            .position(|s| s.name == node::SEGMENT)
            .unwrap();
        assert_eq!(tree.spans[seg].parent, 0);
        assert_eq!(tree.spans[seg].a, 3);
        let fault = tree
            .spans
            .iter()
            .position(|s| s.name == node::FAULT)
            .unwrap();
        assert_eq!(tree.spans[fault].parent as usize, seg);
        let fetch = tree
            .spans
            .iter()
            .position(|s| s.name == node::FETCH)
            .unwrap();
        assert_eq!(tree.spans[fetch].parent as usize, fault);
        // nic_queue + wire tile the fetch span.
        let nq = &tree.spans[fetch + 1];
        let wire = &tree.spans[fetch + 2];
        assert_eq!(nq.name, node::NIC_QUEUE);
        assert_eq!(wire.name, node::WIRE);
        assert_eq!(nq.parent as usize, fetch);
        assert_eq!(nq.dur_ns() + wire.dur_ns(), tree.spans[fetch].dur_ns());
        // The spin after the fetch is a child of the fault.
        let spin = tree.spans.iter().find(|s| s.name == stage::SPIN).unwrap();
        assert_eq!(spin.parent as usize, fault);
    }

    #[test]
    fn retransmitted_fetch_gets_a_retrans_child() {
        let mut b = SpanBuilder::new(0, 0, t(0), Vec::new());
        b.begin_fault(t(0), 9);
        b.phase(stage::HANDLE, t(50));
        b.fetch_with_retrans(t(50), t(70), t(16_070), t(18_000), 9, 2, 1);
        b.failover(t(18_000), 1, 2);
        b.fetch_with_retrans(t(18_000), t(18_020), t(18_020), t(20_000), 9, 3, 0);
        b.phase(stage::SPIN, t(20_000));
        b.end_fault(t(20_000));
        let tree = b.finish(t(20_000));

        let retrans: Vec<&Span> = tree
            .spans
            .iter()
            .filter(|s| s.name == node::RETRANS)
            .collect();
        assert_eq!(retrans.len(), 1, "only the lossy fetch has one");
        assert_eq!(retrans[0].start, t(70));
        assert_eq!(retrans[0].end, t(16_070));
        assert_eq!(retrans[0].a, 1, "carries the retransmit count");

        // The first fetch's wire span starts at the final attempt.
        let wires: Vec<&Span> = tree.spans.iter().filter(|s| s.name == node::WIRE).collect();
        assert_eq!(wires[0].start, t(16_070));
        assert_eq!(wires[1].start, t(18_020));

        let fo = tree
            .spans
            .iter()
            .find(|s| s.name == node::FAILOVER)
            .expect("failover marker");
        assert_eq!((fo.start, fo.a, fo.b), (t(18_000), 1, 2));
        assert_eq!(fo.dur_ns(), 0);

        // Structural additions never disturb the phase-tiling identity.
        let cp = CriticalPath::of(&tree);
        assert_eq!(cp.components_sum(), tree.e2e_ns());
        // Both fetch walls are accounted.
        assert_eq!(cp.fetch_wall_ns, (18_000 - 50) + (20_000 - 18_000));

        // Perfetto export renders retrans as async pair and failover as
        // an instant event, deterministically.
        let json = perfetto_json(&[tree]);
        assert!(json.contains("\"name\":\"retrans\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"failover\""));
    }

    #[test]
    fn stage_stats_percentiles_monotone() {
        let mut stats = StageStats::new();
        for i in 0..500u64 {
            let mut b = SpanBuilder::new(i, 0, t(0), Vec::new());
            b.phase(stage::QUEUE, t(10 + i % 97));
            b.phase(stage::HANDLE, t(200 + 13 * (i % 31)));
            let tree = b.finish(t(200 + 13 * (i % 31)));
            stats.record(&CriticalPath::of(&tree));
        }
        for (name, h) in stats.iter() {
            let (p50, p99, p999) = (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
            assert!(p50 <= p99 && p99 <= p999, "{name}: {p50} {p99} {p999}");
        }
        assert_eq!(stats.get("e2e").unwrap().count(), 500);
    }

    #[test]
    fn store_counts_only_measured_window() {
        let mut store = SpanStore::new(SpanConfig::default());
        let mut b = store.builder(0, t(0));
        b.phase(stage::HANDLE, t(100));
        store.complete(b, t(100), false); // warm-up
        let mut b = store.builder(0, t(200));
        b.phase(stage::HANDLE, t(450));
        let cp = store.complete(b, t(450), true);
        assert_eq!(cp.e2e_ns, 250);
        let report = store.finish();
        assert_eq!(report.measured, 1);
        assert_eq!(report.attributions.len(), 1);
        assert_eq!(report.stats.get("e2e").unwrap().count(), 1);
    }

    #[test]
    fn exemplar_sampler_is_bounded_and_keeps_the_tail() {
        let mut store = SpanStore::new(SpanConfig::with_exemplars(0.0, 4));
        for i in 1..=100u64 {
            let mut b = store.builder(0, t(0));
            b.phase(stage::HANDLE, t(i * 10));
            store.complete(b, t(i * 10), true);
        }
        let report = store.finish();
        assert_eq!(report.exemplars.len(), 4);
        // The four slowest requests (970..=1000 ns) survive.
        let mut kept: Vec<u64> = report.exemplars.iter().map(|t| t.e2e_ns()).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![970, 980, 990, 1_000]);
        // Sorted by arrival sequence for deterministic export.
        let seqs: Vec<u64> = report.exemplars.iter().map(|t| t.request).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn exemplar_threshold_filters_the_fast_majority() {
        let mut store = SpanStore::new(SpanConfig::with_exemplars(99.0, 16));
        // 1000 fast requests and 5 slow ones; only the tail (and the
        // cold-start admissions before the histogram stabilizes)
        // should be retained.
        for i in 0..1_000u64 {
            let mut b = store.builder(0, t(0));
            b.phase(stage::HANDLE, t(100 + i % 7));
            store.complete(b, t(100 + i % 7), true);
        }
        for _ in 0..5 {
            let mut b = store.builder(0, t(0));
            b.phase(stage::HANDLE, t(10_000));
            store.complete(b, t(10_000), true);
        }
        let report = store.finish();
        assert!(report.exemplars.len() <= 16);
        let slow = report
            .exemplars
            .iter()
            .filter(|t| t.e2e_ns() == 10_000)
            .count();
        assert_eq!(slow, 5, "all tail trees retained");
    }

    #[test]
    fn store_recycles_buffers() {
        let mut store = SpanStore::new(SpanConfig::stats_only());
        for _ in 0..10 {
            let mut b = store.builder(0, t(0));
            b.phase(stage::HANDLE, t(50));
            store.complete(b, t(50), true);
        }
        assert!(!store.pool.is_empty() && store.pool.len() <= 10);
        let b = store.builder(0, t(0));
        store.discard(b);
        assert!(!store.pool.is_empty());
    }

    #[test]
    fn spans_json_is_deterministic_and_shaped() {
        let trees = [sample_tree(0), sample_tree(1)];
        let a = spans_to_json(&trees);
        let b = spans_to_json(&trees);
        assert_eq!(a, b);
        assert!(a.starts_with('[') && a.ends_with(']'));
        assert!(a.contains("\"name\":\"request\""));
        assert!(a.contains("\"parent\":-1"));
        assert!(a.contains("\"request\":1"));
    }

    #[test]
    fn perfetto_json_is_deterministic_and_pairs_async_events() {
        let trees = [sample_tree(0)];
        let a = perfetto_json(&trees);
        assert_eq!(a, perfetto_json(&trees));
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.ends_with("]}"));
        let begins = a.matches("\"ph\":\"b\"").count();
        let ends = a.matches("\"ph\":\"e\"").count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 3); // fetch + nic_queue + wire
                               // Phase spans land on the phases track with µs timestamps.
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"queue\""));
        assert!(a.contains("\"ts\":0.000"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "phase tiling must reach the reply instant")]
    fn finish_requires_complete_tiling() {
        let mut b = SpanBuilder::new(0, 0, t(0), Vec::new());
        b.phase(stage::NET, t(50));
        let _ = b.finish(t(100));
    }
}
