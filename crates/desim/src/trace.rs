//! Virtual-time tracing and per-component metrics.
//!
//! Two complementary observability primitives share this module:
//!
//! - [`Tracer`] — a sink for discrete [`TraceEvent`]s stamped with
//!   simulated time. The default [`NoopTracer`] reports itself disabled
//!   so instrumentation sites cost one branch; [`RingTracer`] keeps the
//!   most recent `capacity` events in a bounded ring and counts what it
//!   dropped, so a saturated run can still be traced with bounded
//!   memory.
//! - [`Metrics`] — a typed counter/gauge registry. Components register
//!   named counters ([`CounterId`]) and time-weighted gauges
//!   ([`GaugeId`]) once, then update them through copyable handles on
//!   the hot path (an indexed add — no hashing, no allocation).
//!   [`Metrics::reset`] re-bases every instrument at a window boundary,
//!   which is how the runtime scopes rates to the measurement window
//!   (warm-up activity is discarded at the warm-up→measure boundary).
//!
//! Snapshots serialize to JSON with a deterministic field order
//! (registration order), so two runs with the same seed produce
//! byte-identical output — the determinism suite relies on this.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::SimTime;

/// One traced occurrence at a simulated instant.
///
/// The payload is two bare `u64`s rather than a string map: trace
/// records are produced on the simulator's hot path, where formatting
/// or allocating per event would distort the very timings being
/// observed. The meaning of `a`/`b` is per event name and documented at
/// the emitting site (`docs/MODEL.md` lists the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the event.
    pub at: SimTime,
    /// Emitting component (e.g. `"dispatch"`, `"fault"`, `"reclaim"`).
    pub component: &'static str,
    /// Event name within the component.
    pub name: &'static str,
    /// First payload word (meaning depends on `name`).
    pub a: u64,
    /// Second payload word (meaning depends on `name`).
    pub b: u64,
}

impl TraceEvent {
    /// Renders the event as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\":{},\"c\":\"{}\",\"e\":\"{}\",\"a\":{},\"b\":{}}}",
            self.at.as_nanos(),
            self.component,
            self.name,
            self.a,
            self.b
        )
    }
}

/// A sink for trace events.
pub trait Tracer {
    /// Whether events should be produced at all. Instrumentation sites
    /// check this before building a [`TraceEvent`], so a disabled
    /// tracer costs one call per site.
    fn enabled(&self) -> bool;
    /// Records one event (ignored by disabled tracers).
    fn record(&mut self, ev: TraceEvent);
    /// Removes and returns every buffered event, oldest first.
    fn drain(&mut self) -> Vec<TraceEvent>;
    /// Events discarded because the buffer was full.
    fn dropped(&self) -> u64;
}

/// The zero-cost default: never enabled, never stores anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _ev: TraceEvent) {}
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
    fn dropped(&self) -> u64 {
        0
    }
}

/// A bounded ring of the most recent events.
#[derive(Debug)]
pub struct RingTracer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingTracer {
        assert!(capacity > 0, "tracer needs capacity");
        RingTracer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered time-weighted gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

#[derive(Debug, Clone)]
struct Counter {
    name: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct Gauge {
    name: &'static str,
    last: f64,
    max: f64,
    /// Time integral of the gauge value (value × ns) since the last
    /// reset, up to `since`.
    integral: f64,
    since: SimTime,
}

/// The counter/gauge registry one simulation owns.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    reset_at: SimTime,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Registers a counter; the returned handle is valid for the
    /// registry's lifetime.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        debug_assert!(
            self.counters.iter().all(|c| c.name != name),
            "duplicate counter {name}"
        );
        self.counters.push(Counter { name, value: 0 });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a time-weighted gauge starting at 0.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        debug_assert!(
            self.gauges.iter().all(|g| g.name != name),
            "duplicate gauge {name}"
        );
        self.gauges.push(Gauge {
            name,
            last: 0.0,
            max: 0.0,
            integral: 0.0,
            since: SimTime::ZERO,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Sets a gauge to `value` at simulated instant `now`, accumulating
    /// the time the previous value was held.
    ///
    /// Updates with `now` earlier than the gauge's last update are
    /// tolerated (worker virtual clocks run slightly ahead of the event
    /// clock): the value is adopted without accruing negative time.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, now: SimTime, value: f64) {
        let g = &mut self.gauges[id.0];
        if now > g.since {
            g.integral += g.last * now.since(g.since).as_nanos() as f64;
            g.since = now;
        }
        g.last = value;
        if value > g.max {
            g.max = value;
        }
    }

    /// Iterates `(name, value)` over every registered counter in
    /// registration order. Registration order is deterministic, so the
    /// telemetry flight recorder can index its per-counter series by
    /// position.
    pub fn counters_iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|c| (c.name, c.value))
    }

    /// Iterates `(name, current value)` over every registered gauge in
    /// registration order.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|g| (g.name, g.last))
    }

    /// Re-bases every instrument at `now`: counters return to zero,
    /// gauges keep their current value but forget their history (max
    /// and time integral restart). Called at the warm-up→measure
    /// boundary so every rate covers only the measurement window.
    pub fn reset(&mut self, now: SimTime) {
        for c in &mut self.counters {
            c.value = 0;
        }
        for g in &mut self.gauges {
            g.integral = 0.0;
            g.max = g.last;
            g.since = now;
        }
        self.reset_at = now;
    }

    /// Takes a snapshot at `now`; gauge means are time-weighted over
    /// the interval since the last [`Metrics::reset`] (or creation).
    pub fn snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let window = now.saturating_since(self.reset_at).as_nanos() as f64;
        MetricsSnapshot {
            counters: self.counters.iter().map(|c| (c.name, c.value)).collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| {
                    let extra = if now > g.since {
                        g.last * now.since(g.since).as_nanos() as f64
                    } else {
                        0.0
                    };
                    GaugeSnapshot {
                        name: g.name,
                        last: g.last,
                        max: g.max,
                        mean: if window > 0.0 {
                            (g.integral + extra) / window
                        } else {
                            g.last
                        },
                    }
                })
                .collect(),
            window_ns: window as u64,
        }
    }
}

/// Point-in-time view of one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub last: f64,
    /// Maximum value observed since the last reset.
    pub max: f64,
    /// Time-weighted mean since the last reset.
    pub mean: f64,
}

/// Frozen registry contents, in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per registered counter.
    pub counters: Vec<(&'static str, u64)>,
    /// One entry per registered gauge.
    pub gauges: Vec<GaugeSnapshot>,
    /// Length of the interval the snapshot covers, ns.
    pub window_ns: u64,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Looks a gauge up by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Renders the snapshot as one deterministic JSON object
    /// (registration order; floats at fixed precision).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"window_ns\":");
        let _ = write!(out, "{}", self.window_ns);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"last\":{:.3},\"max\":{:.3},\"mean\":{:.6}}}",
                g.name, g.last, g.max, g.mean
            );
        }
        out.push_str("}}");
        out
    }
}

/// Static per-shard metric names.
///
/// [`Metrics::counter`] and [`Metrics::gauge`] take `&'static str`, so
/// per-shard names cannot be formatted at run time; this table holds
/// them for up to [`shard_names::MAX_SHARDS`] shards. The schema is the
/// sharded simulation's contract with external consumers (CI smoke
/// checks parse these names out of the run JSON): per shard `N`, the
/// counters `shardN.fetches`, `shardN.fetch_retransmits`,
/// `shardN.fetch_cqe_errors`, `shardN.fetch_failovers` and
/// `shardN.fetch_chain_failures`, plus the `shardN.qp_outstanding`
/// gauge. Single-shard runs register none of them, keeping their
/// metrics JSON bit-identical to pre-sharding output.
pub mod shard_names {
    /// Highest shard count the static name tables cover.
    pub const MAX_SHARDS: usize = 8;

    /// READ posts (demand attempts + prefetches) routed to the shard.
    pub const FETCHES: [&str; MAX_SHARDS] = [
        "shard0.fetches",
        "shard1.fetches",
        "shard2.fetches",
        "shard3.fetches",
        "shard4.fetches",
        "shard5.fetches",
        "shard6.fetches",
        "shard7.fetches",
    ];

    /// RC retransmissions burned by the shard's fetches.
    pub const RETRANSMITS: [&str; MAX_SHARDS] = [
        "shard0.fetch_retransmits",
        "shard1.fetch_retransmits",
        "shard2.fetch_retransmits",
        "shard3.fetch_retransmits",
        "shard4.fetch_retransmits",
        "shard5.fetch_retransmits",
        "shard6.fetch_retransmits",
        "shard7.fetch_retransmits",
    ];

    /// Error CQEs surfaced by the shard's demand-fetch chains.
    pub const CQE_ERRORS: [&str; MAX_SHARDS] = [
        "shard0.fetch_cqe_errors",
        "shard1.fetch_cqe_errors",
        "shard2.fetch_cqe_errors",
        "shard3.fetch_cqe_errors",
        "shard4.fetch_cqe_errors",
        "shard5.fetch_cqe_errors",
        "shard6.fetch_cqe_errors",
        "shard7.fetch_cqe_errors",
    ];

    /// Fetches re-mapped onto the next replica of the shard's chain.
    pub const FAILOVERS: [&str; MAX_SHARDS] = [
        "shard0.fetch_failovers",
        "shard1.fetch_failovers",
        "shard2.fetch_failovers",
        "shard3.fetch_failovers",
        "shard4.fetch_failovers",
        "shard5.fetch_failovers",
        "shard6.fetch_failovers",
        "shard7.fetch_failovers",
    ];

    /// Chains that exhausted the shard's replicas or attempt budget.
    pub const CHAIN_FAILURES: [&str; MAX_SHARDS] = [
        "shard0.fetch_chain_failures",
        "shard1.fetch_chain_failures",
        "shard2.fetch_chain_failures",
        "shard3.fetch_chain_failures",
        "shard4.fetch_chain_failures",
        "shard5.fetch_chain_failures",
        "shard6.fetch_chain_failures",
        "shard7.fetch_chain_failures",
    ];

    /// Outstanding work requests on the shard's NIC rail.
    pub const QP_OUTSTANDING: [&str; MAX_SHARDS] = [
        "shard0.qp_outstanding",
        "shard1.qp_outstanding",
        "shard2.qp_outstanding",
        "shard3.qp_outstanding",
        "shard4.qp_outstanding",
        "shard5.qp_outstanding",
        "shard6.qp_outstanding",
        "shard7.qp_outstanding",
    ];

    /// Fraction of decayed page heat landing on the shard (memory
    /// observatory; registered only when the observatory is enabled).
    pub const HEAT_SHARE: [&str; MAX_SHARDS] = [
        "shard0.heat_share",
        "shard1.heat_share",
        "shard2.heat_share",
        "shard3.heat_share",
        "shard4.heat_share",
        "shard5.heat_share",
        "shard6.heat_share",
        "shard7.heat_share",
    ];

    /// Smoothed RTT estimate of the shard's NIC rail, microseconds.
    pub const SRTT_US: [&str; MAX_SHARDS] = [
        "shard0.srtt_us",
        "shard1.srtt_us",
        "shard2.srtt_us",
        "shard3.srtt_us",
        "shard4.srtt_us",
        "shard5.srtt_us",
        "shard6.srtt_us",
        "shard7.srtt_us",
    ];

    /// RTT variance estimate of the shard's NIC rail, microseconds.
    pub const RTTVAR_US: [&str; MAX_SHARDS] = [
        "shard0.rttvar_us",
        "shard1.rttvar_us",
        "shard2.rttvar_us",
        "shard3.rttvar_us",
        "shard4.rttvar_us",
        "shard5.rttvar_us",
        "shard6.rttvar_us",
        "shard7.rttvar_us",
    ];

    /// Base (un-backed-off) retransmission timeout the shard's rail
    /// would arm next, microseconds.
    pub const RTO_US: [&str; MAX_SHARDS] = [
        "shard0.rto_us",
        "shard1.rto_us",
        "shard2.rto_us",
        "shard3.rto_us",
        "shard4.rto_us",
        "shard5.rto_us",
        "shard6.rto_us",
        "shard7.rto_us",
    ];
}

/// Static per-tenant counter names. Same rationale as [`shard_names`]:
/// [`Metrics::counter`] takes `&'static str`, so the tenant plane
/// pre-bakes names for up to [`tenant_names::MAX_TENANTS`] tenants. The
/// schema is the multi-tenant simulation's contract with external
/// consumers (the CI multitenant smoke parses these out of the run
/// JSON): per tenant `N`, the counters `tenantN.arrivals`,
/// `tenantN.admitted`, `tenantN.completions`, `tenantN.sheds` and
/// `tenantN.drops`. Single-tenant runs register none of them, keeping
/// their metrics JSON bit-identical to pre-tenant output.
pub mod tenant_names {
    /// Highest tenant count the static name tables cover.
    pub const MAX_TENANTS: usize = 8;

    /// Requests generated for the tenant (offered load).
    pub const ARRIVALS: [&str; MAX_TENANTS] = [
        "tenant0.arrivals",
        "tenant1.arrivals",
        "tenant2.arrivals",
        "tenant3.arrivals",
        "tenant4.arrivals",
        "tenant5.arrivals",
        "tenant6.arrivals",
        "tenant7.arrivals",
    ];

    /// Requests that passed admission into the dispatcher queue.
    pub const ADMITTED: [&str; MAX_TENANTS] = [
        "tenant0.admitted",
        "tenant1.admitted",
        "tenant2.admitted",
        "tenant3.admitted",
        "tenant4.admitted",
        "tenant5.admitted",
        "tenant6.admitted",
        "tenant7.admitted",
    ];

    /// Requests the tenant completed with a reply.
    pub const COMPLETIONS: [&str; MAX_TENANTS] = [
        "tenant0.completions",
        "tenant1.completions",
        "tenant2.completions",
        "tenant3.completions",
        "tenant4.completions",
        "tenant5.completions",
        "tenant6.completions",
        "tenant7.completions",
    ];

    /// Requests rejected by admission control (token bucket empty or
    /// low-priority past the shed watermark).
    pub const SHEDS: [&str; MAX_TENANTS] = [
        "tenant0.sheds",
        "tenant1.sheds",
        "tenant2.sheds",
        "tenant3.sheds",
        "tenant4.sheds",
        "tenant5.sheds",
        "tenant6.sheds",
        "tenant7.sheds",
    ];

    /// Requests lost to queue overflow or fault aborts.
    pub const DROPS: [&str; MAX_TENANTS] = [
        "tenant0.drops",
        "tenant1.drops",
        "tenant2.drops",
        "tenant3.drops",
        "tenant4.drops",
        "tenant5.drops",
        "tenant6.drops",
        "tenant7.drops",
    ];
}

/// Static per-dispatcher metric names.
///
/// Same discipline as [`shard_names`]: [`Metrics::counter`] and
/// [`Metrics::gauge`] take `&'static str`, so per-dispatcher names live
/// in a static table covering up to
/// [`dispatcher_names::MAX_DISPATCHERS`] ingress cores. The schema is
/// the multi-dispatcher simulation's contract with external consumers
/// (the `dispatch-scaling-smoke` CI job parses these names out of the
/// run JSON): per dispatcher `N`, the counters `dispatcherN.admitted`,
/// `dispatcherN.steals` and `dispatcherN.combines`, plus the
/// `dispatcherN.busy_fraction` gauge. Single-dispatcher runs register
/// none of them (the lone core keeps the scalar
/// `dispatcher.busy_fraction` gauge), keeping their metrics JSON
/// bit-identical to pre-scaling output.
pub mod dispatcher_names {
    /// Highest dispatcher count the static name tables cover.
    pub const MAX_DISPATCHERS: usize = 16;

    /// Requests admitted by the dispatcher (steals included).
    pub const ADMITTED: [&str; MAX_DISPATCHERS] = [
        "dispatcher0.admitted",
        "dispatcher1.admitted",
        "dispatcher2.admitted",
        "dispatcher3.admitted",
        "dispatcher4.admitted",
        "dispatcher5.admitted",
        "dispatcher6.admitted",
        "dispatcher7.admitted",
        "dispatcher8.admitted",
        "dispatcher9.admitted",
        "dispatcher10.admitted",
        "dispatcher11.admitted",
        "dispatcher12.admitted",
        "dispatcher13.admitted",
        "dispatcher14.admitted",
        "dispatcher15.admitted",
    ];

    /// Arrivals this dispatcher admitted away from a busier sibling's
    /// ingress slot (`DispatchPolicy::WorkStealing`).
    pub const STEALS: [&str; MAX_DISPATCHERS] = [
        "dispatcher0.steals",
        "dispatcher1.steals",
        "dispatcher2.steals",
        "dispatcher3.steals",
        "dispatcher4.steals",
        "dispatcher5.steals",
        "dispatcher6.steals",
        "dispatcher7.steals",
        "dispatcher8.steals",
        "dispatcher9.steals",
        "dispatcher10.steals",
        "dispatcher11.steals",
        "dispatcher12.steals",
        "dispatcher13.steals",
        "dispatcher14.steals",
        "dispatcher15.steals",
    ];

    /// Arrivals absorbed into a batch this dispatcher opened as the
    /// combiner (`DispatchPolicy::FlatCombining`; the opener itself is
    /// not counted).
    pub const COMBINES: [&str; MAX_DISPATCHERS] = [
        "dispatcher0.combines",
        "dispatcher1.combines",
        "dispatcher2.combines",
        "dispatcher3.combines",
        "dispatcher4.combines",
        "dispatcher5.combines",
        "dispatcher6.combines",
        "dispatcher7.combines",
        "dispatcher8.combines",
        "dispatcher9.combines",
        "dispatcher10.combines",
        "dispatcher11.combines",
        "dispatcher12.combines",
        "dispatcher13.combines",
        "dispatcher14.combines",
        "dispatcher15.combines",
    ];

    /// Busy/idle square wave of the dispatcher core (mirrors the scalar
    /// `dispatcher.busy_fraction` gauge of single-dispatcher runs).
    pub const BUSY_FRACTION: [&str; MAX_DISPATCHERS] = [
        "dispatcher0.busy_fraction",
        "dispatcher1.busy_fraction",
        "dispatcher2.busy_fraction",
        "dispatcher3.busy_fraction",
        "dispatcher4.busy_fraction",
        "dispatcher5.busy_fraction",
        "dispatcher6.busy_fraction",
        "dispatcher7.busy_fraction",
        "dispatcher8.busy_fraction",
        "dispatcher9.busy_fraction",
        "dispatcher10.busy_fraction",
        "dispatcher11.busy_fraction",
        "dispatcher12.busy_fraction",
        "dispatcher13.busy_fraction",
        "dispatcher14.busy_fraction",
        "dispatcher15.busy_fraction",
    ];
}

/// Renders a slice of trace events as a deterministic JSON array.
pub fn trace_to_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ev.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            at: SimTime(t),
            component: "test",
            name,
            a: t,
            b: 0,
        }
    }

    #[test]
    fn noop_is_disabled_and_empty() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.record(ev(1, "x"));
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = RingTracer::new(3);
        assert!(t.enabled());
        for i in 0..5 {
            t.record(ev(i, "e"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let drained: Vec<u64> = t.drain().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(drained, vec![2, 3, 4]);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "tracer needs capacity")]
    fn zero_capacity_rejected() {
        RingTracer::new(0);
    }

    #[test]
    fn counters_add_and_reset() {
        let mut m = Metrics::new();
        let a = m.counter("a");
        let b = m.counter("b");
        m.add(a, 5);
        m.inc(b);
        assert_eq!(m.counter_value(a), 5);
        let snap = m.snapshot(SimTime(10));
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        m.reset(SimTime(10));
        assert_eq!(m.counter_value(a), 0);
    }

    #[test]
    fn gauge_mean_is_time_weighted() {
        let mut m = Metrics::new();
        let g = m.gauge("depth");
        // 0 for 10 ns, then 4 for 30 ns: mean = (0*10 + 4*30) / 40 = 3.
        m.gauge_set(g, SimTime(10), 4.0);
        let snap = m.snapshot(SimTime(40));
        let gs = snap.gauge("depth").unwrap();
        assert!((gs.mean - 3.0).abs() < 1e-9, "mean {}", gs.mean);
        assert_eq!(gs.max, 4.0);
        assert_eq!(gs.last, 4.0);
    }

    #[test]
    fn gauge_reset_rebases_window() {
        let mut m = Metrics::new();
        let g = m.gauge("q");
        m.gauge_set(g, SimTime(0), 100.0);
        // Warm-up holds 100; reset at t=50 must forget it.
        m.reset(SimTime(50));
        m.gauge_set(g, SimTime(60), 2.0);
        // 100 for 10 ns then 2 for 40 ns: mean = (1000 + 80) / 50 = 21.6.
        let snap = m.snapshot(SimTime(100));
        let gs = snap.gauge("q").unwrap();
        assert!((gs.mean - 21.6).abs() < 1e-9, "mean {}", gs.mean);
        // Max restarts from the value held at reset time.
        assert_eq!(gs.max, 100.0);
        m.reset(SimTime(100));
        assert_eq!(m.snapshot(SimTime(100)).gauge("q").unwrap().max, 2.0);
    }

    #[test]
    fn gauge_tolerates_time_regression() {
        let mut m = Metrics::new();
        let g = m.gauge("q");
        m.gauge_set(g, SimTime(100), 5.0);
        // A slightly-earlier update (worker virtual clock) must not
        // accrue negative time.
        m.gauge_set(g, SimTime(90), 7.0);
        let snap = m.snapshot(SimTime(200));
        assert_eq!(snap.gauge("q").unwrap().max, 7.0);
        assert!(snap.gauge("q").unwrap().mean > 0.0);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let build = || {
            let mut m = Metrics::new();
            let c = m.counter("faults");
            let g = m.gauge("outstanding");
            m.add(c, 3);
            m.gauge_set(g, SimTime(5), 2.0);
            m.snapshot(SimTime(10)).to_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"faults\":3"), "{a}");
        // Registration order, not alphabetical.
        assert!(a.find("faults").unwrap() < a.find("outstanding").unwrap());
    }

    #[test]
    fn trace_json_roundtrips_shape() {
        let events = [ev(1, "alpha"), ev(2, "beta")];
        let json = trace_to_json(&events);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"e\":\"alpha\""));
        assert!(json.contains("\"t\":2"));
        assert_eq!(json.matches('{').count(), 2);
    }
}
