//! A fast, deterministic hasher for hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the simulator does not need: keys are page
//! numbers and queue-pair ids from a deterministic run, and the map is
//! rebuilt from scratch every run. This is the Fx multiply-rotate hash
//! (as used by rustc's `FxHashMap`): one rotate, one xor and one
//! multiply per word, unkeyed and therefore also run-to-run stable —
//! iteration-order-independent code paths stay byte-deterministic.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i * 7919, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&i));
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn hash_is_stable_across_instances() {
        // Unkeyed: two hashers over the same input agree (and therefore
        // agree across runs and processes).
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn byte_writes_match_word_writes_for_full_words() {
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }
}
