//! HDR-style latency histogram.
//!
//! Values (nanoseconds) are binned into 64 sub-buckets per power of two,
//! giving a worst-case relative error of 1/64 ≈ 1.6 % — well inside the
//! resolution any latency figure in the paper needs. Recording is O(1);
//! percentile extraction walks the (fixed, small) bucket array.

/// Sub-buckets per octave; must be a power of two.
const SUB: u64 = 64;
/// log2(SUB).
const SUB_BITS: u32 = 6;
/// Total bucket count: values below `SUB` get exact unit buckets, each
/// higher octave gets `SUB` buckets; 64-bit values need at most
/// `(64 - SUB_BITS) * SUB` more.
const NBUCKETS: usize = (SUB + (64 - SUB_BITS) as u64 * SUB) as usize;

/// A log-bucketed histogram of nanosecond latencies.
///
/// # Examples
///
/// ```
/// use desim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((490..=515).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket index.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub
    }
}

/// Returns the largest value mapping to `bucket` (used when reporting
/// percentiles, so tails are never under-reported).
#[inline]
fn bucket_high(bucket: usize) -> u64 {
    if (bucket as u64) < SUB {
        bucket as u64
    } else {
        let octave = bucket as u64 / SUB - 1;
        let sub = bucket as u64 % SUB;
        let shift = octave as u32;
        // Bucket covers [ (SUB + sub) << shift, ((SUB + sub + 1) << shift) - 1 ].
        // Computed in u128: the top octave's upper bound exceeds u64.
        let high = ((SUB + sub + 1) as u128) << shift;
        u64::try_from(high - 1).unwrap_or(u64::MAX)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Returns the number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Returns the largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the value at percentile `p` (0–100).
    ///
    /// The returned value is the upper bound of the bucket containing
    /// the rank, clamped to the recorded maximum, so tail percentiles
    /// are conservative (never under-reported by bucketing).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the cumulative distribution as `(value, fraction ≤ value)`
    /// points over non-empty buckets, for CDF plots (Fig 2b).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                bucket_high(i).min(self.max),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("p999", &self.percentile(99.9))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_below_sub() {
        // Values below 64 are stored exactly.
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(50.0), 31);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(12_345);
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!((12_345..=12_544).contains(&v), "p{p} = {v}");
        }
        assert_eq!(h.max(), 12_345);
        assert_eq!(h.min(), 12_345);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 80, 3_000, 3_000, 3_000, 90_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn bucket_bounds_cover_value() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1_000, 1 << 20, 1 << 40] {
            let b = bucket_of(v);
            assert!(bucket_high(b) >= v, "bucket_high({b}) < {v}");
            if b > 0 {
                assert!(
                    bucket_high(b - 1) < v,
                    "value {v} should not fit in bucket {}",
                    b - 1
                );
            }
        }
    }

    /// Exact percentile on the raw sample for comparison.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    /// Draws `len` values in `[1, bound]` from the simulator's own
    /// seeded generator (deterministic stand-in for proptest inputs).
    fn random_values(rng: &mut Rng, len: usize, bound: u64) -> Vec<u64> {
        (0..len).map(|_| 1 + rng.gen_range(bound)).collect()
    }

    /// Histogram percentile is within the bucketing error bound of the
    /// exact sorted-sample percentile, over many random samples.
    #[test]
    fn percentile_accuracy() {
        let mut rng = Rng::new(0xACC);
        for _ in 0..64 {
            let len = 10 + rng.gen_range(490) as usize;
            let mut values = random_values(&mut rng, len, 1_000_000_000);
            let p = 1.0 + 99.0 * rng.gen_f64();
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let exact = exact_percentile(&values, p);
            let approx = h.percentile(p);
            // Upper-bound reporting: approx >= exact, within one bucket.
            assert!(approx >= exact, "approx {approx} < exact {exact}");
            assert!(
                approx as f64 <= exact as f64 * (1.0 + 2.0 / SUB as f64) + 1.0,
                "approx {approx} too far above exact {exact}"
            );
        }
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentile_monotone() {
        let mut rng = Rng::new(0x304);
        for _ in 0..64 {
            let len = 1 + rng.gen_range(199) as usize;
            let values = random_values(&mut rng, len, 1_000_000);
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
            for w in ps.windows(2) {
                assert!(h.percentile(w[0]) <= h.percentile(w[1]));
            }
        }
    }

    /// Merging equals recording the concatenation.
    #[test]
    fn merge_equivalence() {
        let mut rng = Rng::new(0x3E6);
        for _ in 0..64 {
            let nx = rng.gen_range(100) as usize;
            let xs = random_values(&mut rng, nx, 1_000_000);
            let ny = rng.gen_range(100) as usize;
            let ys = random_values(&mut rng, ny, 1_000_000);
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            let mut all = Histogram::new();
            for &x in &xs {
                a.record(x);
                all.record(x);
            }
            for &y in &ys {
                b.record(y);
                all.record(y);
            }
            a.merge(&b);
            assert_eq!(a.count(), all.count());
            for p in [50.0, 99.0, 100.0] {
                assert_eq!(a.percentile(p), all.percentile(p));
            }
        }
    }

    /// Bucket-boundary audit: at every octave boundary `SUB << k`
    /// (± 1), at `u64::MAX`, and for random values, the round-trip
    /// `bucket_high(bucket_of(v)) >= v` holds and both maps are
    /// monotone. Guards the off-by-one class of bugs in the log-bucket
    /// arithmetic.
    #[test]
    fn bucket_roundtrip_at_octave_boundaries() {
        let mut values: Vec<u64> = vec![0, 1, SUB - 1, SUB, SUB + 1, u64::MAX - 1, u64::MAX];
        for k in 0..(64 - SUB_BITS) {
            let base = SUB << k;
            values.push(base - 1);
            values.push(base);
            if let Some(v) = base.checked_add(1) {
                values.push(v);
            }
        }
        let mut rng = Rng::new(0xB0B);
        for _ in 0..4_096 {
            values.push(rng.next_u64());
        }
        values.sort_unstable();
        let mut prev: Option<(u64, usize)> = None;
        for &v in &values {
            let b = bucket_of(v);
            assert!(b < NBUCKETS, "bucket_of({v}) = {b} out of range");
            assert!(
                bucket_high(b) >= v,
                "bucket_high({b}) = {} < {v}",
                bucket_high(b)
            );
            if b > 0 {
                assert!(
                    bucket_high(b - 1) < v,
                    "value {v} also fits bucket {}",
                    b - 1
                );
            }
            if let Some((pv, pb)) = prev {
                assert!(b >= pb, "bucket_of not monotone: {pv}→{pb}, {v}→{b}");
            }
            prev = Some((v, b));
        }
        // bucket_high is monotone and itself round-trips.
        for b in 1..NBUCKETS {
            assert!(
                bucket_high(b) > bucket_high(b - 1),
                "bucket_high not monotone at {b}"
            );
            assert_eq!(
                bucket_of(bucket_high(b)),
                b,
                "bucket_high({b}) maps elsewhere"
            );
        }
    }
}
