//! Deterministic event queue.
//!
//! All simulated activity is driven by a single [`EventQueue`]. Events
//! scheduled for the same instant are delivered in insertion order
//! (FIFO), which makes every run a pure function of its inputs — a
//! property the integration tests rely on to compare systems under
//! identical arrival sequences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: reversed ordering so the `BinaryHeap` max-heap
/// behaves as a min-heap on `(time, seq)`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the earliest (time, seq) pair is the heap maximum.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A total-order discrete-event queue.
///
/// # Examples
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "b");
/// q.push(SimTime(10), "a");
/// q.push(SimTime(20), "c"); // same instant as "b": FIFO order
/// assert_eq!(q.pop(), Some((SimTime(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime(20), "b")));
/// assert_eq!(q.pop(), Some((SimTime(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the timestamp of the most
    /// recently popped event — scheduling into the past is always a
    /// simulation bug.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the next event, advancing the queue clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1u32);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(4), 4);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.push(SimTime(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(10));
        q.pop();
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), 'x');
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((SimTime(7), 'x')));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 0u8);
        q.pop();
        // Zero-delay follow-up events are common (e.g. immediate dispatch).
        q.push(q.now() + SimDuration::ZERO, 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }

    /// Popped timestamps are non-decreasing, and events with equal
    /// timestamps come out in insertion order, over random schedules.
    #[test]
    fn total_order() {
        let mut rng = Rng::new(0x701);
        for _ in 0..64 {
            let n = 1 + rng.gen_range(199) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(rng.gen_range(1_000)), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    assert!(t >= pt);
                    if t == pt {
                        assert!(i > pi, "FIFO violated at equal timestamps");
                    }
                }
                prev = Some((t, i));
            }
        }
    }

    /// Every pushed event is popped exactly once.
    #[test]
    fn conservation() {
        let mut rng = Rng::new(0xC02);
        for _ in 0..64 {
            let n = rng.gen_range(100) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(rng.gen_range(100)), i);
            }
            let mut seen = vec![false; n];
            while let Some((_, i)) = q.pop() {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
