//! Deterministic event queue.
//!
//! All simulated activity is driven by a single [`EventQueue`]. Events
//! scheduled for the same instant are delivered in insertion order
//! (FIFO), which makes every run a pure function of its inputs — a
//! property the integration tests rely on to compare systems under
//! identical arrival sequences.
//!
//! # Implementation: hierarchical timing wheel
//!
//! The queue is a hashed hierarchical timing wheel (Varghese & Lauck)
//! rather than a binary heap. µs-scale memory disaggregation produces
//! dense, near-sorted timestamps — fetch completions a few µs out,
//! telemetry ticks every 100 µs, retransmission timeouts a few ms out —
//! exactly the regime where O(1) wheel operations beat the heap's
//! O(log n) sift with its payload moves.
//!
//! Geometry:
//!
//! - 8 levels × 256 slots; level `L` slots are `2^(8L)` ns wide, so the
//!   eight levels tile the full 64-bit nanosecond timeline (8 × 8 = 64
//!   bits) with no overflow list.
//! - Level 0 slots are **1 ns** wide: every entry in a level-0 slot has
//!   the exact same timestamp, so FIFO delivery within a slot *is*
//!   insertion order — no per-slot sort, and the `(time, seq)` total
//!   order of the previous heap implementation is reproduced exactly.
//! - An event at time `t` lives at the level of the highest byte in
//!   which `t` differs from the current cursor, in slot
//!   `(t >> 8·L) & 0xff`. When the cursor crosses into an upper-level
//!   slot, that slot *cascades*: its entries re-place themselves one or
//!   more levels lower, preserving their relative (insertion) order.
//! - A 256-bit occupancy bitmap per level makes "find the earliest
//!   non-empty slot" a handful of trailing-zero scans.
//!
//! Slot deques retain their capacity across reuse, so steady-state
//! operation performs no allocation per event: the wheel doubles as the
//! event-payload arena.

use std::collections::VecDeque;

use crate::time::SimTime;

/// log2(slots per level); 256 slots → one byte of the timestamp.
const SLOT_BITS: usize = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; 8 levels × 8 bits cover the whole u64 ns timeline.
const LEVELS: usize = 8;
/// Words of the per-level occupancy bitmap.
const BITMAP_WORDS: usize = SLOTS / 64;

/// A total-order discrete-event queue.
///
/// # Examples
///
/// ```
/// use desim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "b");
/// q.push(SimTime(10), "a");
/// q.push(SimTime(20), "c"); // same instant as "b": FIFO order
/// assert_eq!(q.pop(), Some((SimTime(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime(20), "b")));
/// assert_eq!(q.pop(), Some((SimTime(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` deques, indexed `level * SLOTS + slot`. Entries
    /// carry their absolute timestamp so cascades can re-place them.
    slots: Vec<VecDeque<(u64, E)>>,
    /// Per-level occupancy bitmaps.
    occ: [[u64; BITMAP_WORDS]; LEVELS],
    /// Pending-event count.
    len: usize,
    /// Timestamp of the most recently popped event; also the placement
    /// cursor for the wheel.
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn first_set(words: &[u64; BITMAP_WORDS]) -> Option<usize> {
    for (w, word) in words.iter().enumerate() {
        if *word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [[0; BITMAP_WORDS]; LEVELS],
            len: 0,
            now: SimTime::ZERO,
        }
    }

    /// Places `(t, payload)` into the wheel relative to the current
    /// cursor. Does not touch `len`.
    #[inline]
    fn place(&mut self, t: u64, payload: E) {
        // Highest differing byte between t and the cursor picks the
        // level; `| 1` maps the t == now case onto level 0.
        let x = (t ^ self.now.0) | 1;
        let level = ((63 - x.leading_zeros()) >> 3) as usize;
        let slot = ((t >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        self.occ[level][slot / 64] |= 1u64 << (slot % 64);
        self.slots[level * SLOTS + slot].push_back((t, payload));
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the timestamp of the most
    /// recently popped event — scheduling into the past is always a
    /// simulation bug.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        self.place(time.0, payload);
        self.len += 1;
    }

    /// Removes and returns the next event, advancing the queue clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // All pending level-0 entries lie in the cursor's current
            // 256 ns window, so the first occupied slot holds the
            // globally earliest timestamp, FIFO within the deque.
            if let Some(slot) = first_set(&self.occ[0]) {
                let q = &mut self.slots[slot];
                let (t, payload) = q.pop_front().expect("occupancy bit set on empty slot");
                if q.is_empty() {
                    self.occ[0][slot / 64] &= !(1u64 << (slot % 64));
                }
                self.len -= 1;
                debug_assert!(t >= self.now.0);
                self.now = SimTime(t);
                return Some((SimTime(t), payload));
            }
            // Level 0 exhausted: cascade the earliest occupied slot of
            // the lowest occupied level down one or more levels.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let Some(slot) = first_set(&self.occ[level]) else {
                    continue;
                };
                let shift = SLOT_BITS * level;
                // Absolute start of that slot: the cursor's bytes above
                // `level` are unchanged since placement (crossing them
                // would have cascaded this slot first).
                let high = if shift + SLOT_BITS >= 64 {
                    0
                } else {
                    (self.now.0 >> (shift + SLOT_BITS)) << (shift + SLOT_BITS)
                };
                let slot_start = high | ((slot as u64) << shift);
                debug_assert!(slot_start >= self.now.0);
                self.now = SimTime(slot_start);
                self.occ[level][slot / 64] &= !(1u64 << (slot % 64));
                let mut moved = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                for (t, payload) in moved.drain(..) {
                    debug_assert!(t >= slot_start);
                    self.place(t, payload);
                }
                // Hand the drained deque's capacity back to the slot.
                self.slots[level * SLOTS + slot] = moved;
                cascaded = true;
                break;
            }
            debug_assert!(cascaded, "len > 0 but no occupied slot");
            if !cascaded {
                return None;
            }
        }
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Level 0: first occupied slot is the earliest instant.
        if let Some(slot) = first_set(&self.occ[0]) {
            let window = self.now.0 & !(SLOTS as u64 - 1);
            return Some(SimTime(window | slot as u64));
        }
        // Otherwise the minimum lives in the first occupied slot of the
        // lowest occupied level; slots above level 0 are not ordered
        // internally, so scan the deque.
        for level in 1..LEVELS {
            if let Some(slot) = first_set(&self.occ[level]) {
                let t = self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|(t, _)| *t)
                    .min()
                    .expect("occupancy bit set on empty slot");
                return Some(SimTime(t));
            }
        }
        None
    }

    /// Returns the timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original `BinaryHeap`-backed queue, retained as a differential
/// oracle: it defines the reference `(time, seq)` total order that the
/// timing wheel must reproduce exactly.
#[cfg(test)]
pub(crate) mod oracle {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: the earliest (time, seq) pair is the heap maximum.
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    pub(crate) struct HeapEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> HeapEventQueue<E> {
        pub(crate) fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub(crate) fn push(&mut self, time: SimTime, payload: E) {
            assert!(time >= self.now, "oracle: event scheduled in the past");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, payload });
        }

        pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
            let entry = self.heap.pop()?;
            self.now = entry.time;
            Some((entry.time, entry.payload))
        }

        pub(crate) fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::HeapEventQueue;
    use super::*;
    use crate::rng::Rng;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1u32);
        q.push(SimTime(3), 2);
        q.push(SimTime(5), 3);
        q.push(SimTime(4), 4);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.push(SimTime(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(10));
        q.pop();
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), 'x');
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((SimTime(7), 'x')));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 0u8);
        q.pop();
        // Zero-delay follow-up events are common (e.g. immediate dispatch).
        q.push(q.now() + SimDuration::ZERO, 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }

    /// Popped timestamps are non-decreasing, and events with equal
    /// timestamps come out in insertion order, over random schedules.
    #[test]
    fn total_order() {
        let mut rng = Rng::new(0x701);
        for _ in 0..64 {
            let n = 1 + rng.gen_range(199) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(rng.gen_range(1_000)), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    assert!(t >= pt);
                    if t == pt {
                        assert!(i > pi, "FIFO violated at equal timestamps");
                    }
                }
                prev = Some((t, i));
            }
        }
    }

    /// Every pushed event is popped exactly once.
    #[test]
    fn conservation() {
        let mut rng = Rng::new(0xC02);
        for _ in 0..64 {
            let n = rng.gen_range(100) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(SimTime(rng.gen_range(100)), i);
            }
            let mut seen = vec![false; n];
            while let Some((_, i)) = q.pop() {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    /// Differential test against the retained heap oracle: random
    /// interleavings of pushes and pops, including zero-delay
    /// self-pushes issued mid-drain, must yield byte-identical pop
    /// sequences.
    #[test]
    fn wheel_matches_heap_oracle_on_random_schedules() {
        let mut rng = Rng::new(0xD1FF);
        for round in 0..48 {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut next_id = 0usize;
            let ops = 400 + rng.gen_range(400) as usize;
            for _ in 0..ops {
                // Bias towards pushes early, pops late; always keep the
                // two queues in lock-step.
                if wheel.is_empty() || rng.gen_range(3) > 0 {
                    let base = wheel.now().0;
                    // Mix of near (µs-scale), far (ms-scale) and
                    // zero-delay events, like the simulator emits.
                    let delta = match rng.gen_range(10) {
                        0 => 0,
                        1..=6 => rng.gen_range(8_000),
                        7 | 8 => rng.gen_range(4_000_000),
                        _ => rng.gen_range(60_000_000),
                    };
                    let t = SimTime(base + delta);
                    wheel.push(t, next_id);
                    heap.push(t, next_id);
                    next_id += 1;
                } else {
                    let w = wheel.pop();
                    let h = heap.pop();
                    assert_eq!(w, h, "divergence in round {round}");
                    // Occasionally emulate a handler scheduling a
                    // zero-delay follow-up during the drain.
                    if rng.gen_range(4) == 0 {
                        let t = wheel.now();
                        wheel.push(t, next_id);
                        heap.push(t, next_id);
                        next_id += 1;
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain to empty; sequences must stay identical.
            loop {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "drain divergence in round {round}");
                if w.is_none() {
                    break;
                }
            }
        }
    }

    /// FIFO holds for equal instants even when the earlier push had to
    /// traverse more cascade hops than the later one (pushed closer to
    /// delivery time).
    #[test]
    fn equal_instant_fifo_across_cascade_levels() {
        let mut q = EventQueue::new();
        let t = SimTime(3_000_000); // lands at level 2 relative to t = 0
        q.push(t, 0u32); // placed far from the target: cascades twice
        q.push(SimTime(2_999_000), 99);
        assert_eq!(q.pop(), Some((SimTime(2_999_000), 99)));
        q.push(t, 1); // placed ~1 µs out: one level lower
        q.push(SimTime(2_999_900), 98);
        assert_eq!(q.pop(), Some((SimTime(2_999_900), 98)));
        q.push(t, 2); // placed 100 ns out: level 0 directly
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert!(q.is_empty());
    }

    /// A handler that keeps re-scheduling at `now` during a drain sees
    /// its events delivered after everything already pending at that
    /// instant, in push order.
    #[test]
    fn zero_delay_self_pushes_during_drain() {
        let mut q = EventQueue::new();
        for i in 0..4u32 {
            q.push(SimTime(50), i);
        }
        let mut order = Vec::new();
        let mut extra = 4u32;
        while let Some((t, i)) = q.pop() {
            order.push(i);
            // First three pops chain a new same-instant event each.
            if i < 3 {
                q.push(t, extra);
                extra += 1;
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    /// Far-future timestamps that overflow the lower wheel levels —
    /// up to and including `u64::MAX` — are stored and delivered in
    /// order, against the oracle.
    #[test]
    fn far_future_timestamps_span_all_levels() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let times = [
            0u64,
            1,
            255,
            256,
            65_535,
            65_536,
            1 << 24,
            (1 << 24) + 1,
            1 << 32,
            1 << 40,
            1 << 48,
            1 << 56,
            u64::MAX - 1,
            u64::MAX,
            u64::MAX, // duplicate at the very top: FIFO there too
        ];
        for (i, &t) in times.iter().enumerate() {
            wheel.push(SimTime(t), i);
            heap.push(SimTime(t), i);
        }
        let mut popped = 0usize;
        loop {
            let w = wheel.pop();
            assert_eq!(w, heap.pop());
            if w.is_none() {
                break;
            }
            popped += 1;
        }
        assert_eq!(popped, times.len());
    }

    /// Conservation under cascade-heavy schedules: every event pushed
    /// across widely-spaced timestamps is popped exactly once.
    #[test]
    fn conservation_across_levels() {
        let mut rng = Rng::new(0xCAFE);
        for _ in 0..16 {
            let n = 200 + rng.gen_range(200) as usize;
            let mut q = EventQueue::new();
            let mut seen = vec![false; n];
            for i in 0..n {
                // Spread across ~6 orders of magnitude so every level
                // below the top sees traffic.
                let magnitude = 1u64 << (rng.gen_range(40) as u32);
                q.push(SimTime(rng.gen_range(magnitude.max(2))), i);
            }
            while let Some((_, i)) = q.pop() {
                assert!(!seen[i], "event {i} delivered twice");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s), "events lost in the wheel");
        }
    }

    /// peek_time always agrees with the subsequent pop, including when
    /// the next event sits in an upper level awaiting a cascade.
    #[test]
    fn peek_agrees_with_pop_across_levels() {
        let mut rng = Rng::new(0xBEEF);
        let mut q = EventQueue::new();
        for i in 0..300usize {
            let delta = match rng.gen_range(3) {
                0 => rng.gen_range(200),
                1 => rng.gen_range(100_000),
                _ => rng.gen_range(50_000_000),
            };
            q.push(SimTime(q.now().0 + delta), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            assert_eq!(peeked, t);
        }
    }
}
