//! Discrete-event simulation kernel for the Adios reproduction.
//!
//! This crate provides the deterministic building blocks every simulated
//! component is made of:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//!   with conversions to CPU cycles at the testbed clock rate (2 GHz, the
//!   Intel Xeon Gold 6330 of the paper's compute node).
//! - [`EventQueue`] — a total-order event queue backed by a hierarchical
//!   timing wheel. Ties in timestamps are broken by insertion order, so
//!   a simulation run is a pure function of its inputs and seed.
//! - [`fxhash`] — an unkeyed, deterministic hasher ([`FxHashMap`]) for
//!   hot-path lookups that don't need SipHash's DoS resistance.
//! - [`Rng`] — a small, seedable xoshiro256** generator (no external
//!   dependency, so results never change under a dependency bump), with
//!   samplers for the distributions the experiments need (uniform,
//!   exponential for Poisson arrival processes, normal).
//! - [`Histogram`] — an HDR-style log-bucketed latency histogram with
//!   ~1.5 % relative error, used for every P50/P99/P99.9 figure.
//! - [`trace`] — virtual-time tracing ([`Tracer`], [`RingTracer`]) and
//!   the typed counter/gauge registry ([`Metrics`]) every component
//!   reports through.
//! - [`span`] — per-request span trees ([`SpanBuilder`], [`SpanStore`])
//!   with exact critical-path attribution ([`CriticalPath`]), per-stage
//!   histograms, tail exemplars, and Perfetto export.
//! - [`telemetry`] — continuous telemetry: a virtual-time
//!   [`FlightRecorder`] sampling every counter/gauge into
//!   [`TimeSeries`] buckets, per-entity health scores, and an SLO
//!   burn-rate engine emitting typed [`SloEvent`]s into the trace ring.
//! - [`profile`] — virtual-time core profiler ([`CoreProfiler`]) tiling
//!   every core's timeline exhaustively into typed [`CoreState`]s, plus
//!   queue probes ([`QueueProbe`]) with a Little's-law cross-check and
//!   folded-stack flamegraph export.

pub mod event;
pub mod fxhash;
pub mod hist;
pub mod profile;
pub mod rng;
pub mod series;
pub mod span;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use fxhash::{FxHashMap, FxHashSet};
pub use hist::Histogram;
pub use profile::{
    CoreProfiler, CoreReport, CoreState, ProfileConfig, ProfileReport, QueueProbe, QueueReport,
    PERFETTO_PROFILE_PID,
};
pub use rng::Rng;
pub use series::TimeSeries;
pub use span::{
    CriticalPath, Span, SpanBuilder, SpanConfig, SpanReport, SpanStore, SpanTree, StageStats,
};
pub use telemetry::{
    health_score, parse_slo_spec, EpisodeNote, FlightRecorder, HealthInput, SloEvent, SloEventKind,
    SloRule, TelemetryConfig, TelemetryReport,
};
pub use time::{SimDuration, SimTime, CYCLES_PER_SEC, NS_PER_SEC};
pub use trace::{
    CounterId, GaugeId, Metrics, MetricsSnapshot, NoopTracer, RingTracer, TraceEvent, Tracer,
};
