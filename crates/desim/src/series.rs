//! Time-bucketed series sampling.
//!
//! A [`TimeSeries`] aggregates samples of a fluctuating quantity (queue
//! depth, in-flight fetches) into fixed simulated-time buckets, so
//! experiments can show *dynamics* — e.g. the queue oscillation under
//! bursty arrivals — instead of only end-of-run percentiles.

use crate::time::{SimDuration, SimTime};

/// A mean-per-bucket time series.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
    maxima: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> TimeSeries {
        assert!(bucket > SimDuration::ZERO, "zero bucket width");
        TimeSeries {
            bucket,
            sums: Vec::new(),
            counts: Vec::new(),
            maxima: Vec::new(),
        }
    }

    /// Records one sample of the quantity at time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
            self.maxima.resize(idx + 1, f64::NEG_INFINITY);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
        self.maxima[idx] = self.maxima[idx].max(value);
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Returns `(bucket start, mean)` for every non-empty bucket.
    pub fn means(&self) -> Vec<(SimTime, f64)> {
        self.iter_stat(|i| self.sums[i] / self.counts[i] as f64)
    }

    /// Returns `(bucket start, max)` for every non-empty bucket.
    pub fn maxima(&self) -> Vec<(SimTime, f64)> {
        self.iter_stat(|i| self.maxima[i])
    }

    fn iter_stat(&self, f: impl Fn(usize) -> f64) -> Vec<(SimTime, f64)> {
        (0..self.sums.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (SimTime(i as u64 * self.bucket.as_nanos()), f(i)))
            .collect()
    }

    /// The largest sample across the whole run.
    pub fn global_max(&self) -> f64 {
        self.maxima
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of per-bucket means (ignores empty buckets).
    pub fn overall_mean(&self) -> f64 {
        let means = self.means();
        if means.is_empty() {
            return 0.0;
        }
        means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_aggregate_means_and_maxima() {
        let mut s = TimeSeries::new(SimDuration::from_micros(10));
        s.record(SimTime(1_000), 2.0);
        s.record(SimTime(9_000), 4.0); // same bucket
        s.record(SimTime(25_000), 10.0); // bucket 2
        let means = s.means();
        assert_eq!(means.len(), 2);
        assert_eq!(means[0], (SimTime(0), 3.0));
        assert_eq!(means[1], (SimTime(20_000), 10.0));
        assert_eq!(s.maxima()[0].1, 4.0);
        assert_eq!(s.global_max(), 10.0);
        assert_eq!(s.samples(), 3);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(SimDuration::from_micros(1));
        assert!(s.means().is_empty());
        assert_eq!(s.samples(), 0);
        assert_eq!(s.overall_mean(), 0.0);
    }

    #[test]
    fn sparse_buckets_skip_gaps() {
        let mut s = TimeSeries::new(SimDuration::from_nanos(100));
        s.record(SimTime(50), 1.0);
        s.record(SimTime(1_050), 5.0);
        let means = s.means();
        assert_eq!(means.len(), 2, "gap buckets are not reported");
        assert!((s.overall_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero bucket")]
    fn zero_bucket_panics() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
