//! Time-bucketed series sampling.
//!
//! A [`TimeSeries`] aggregates samples of a fluctuating quantity (queue
//! depth, in-flight fetches) into fixed simulated-time buckets, so
//! experiments can show *dynamics* — e.g. the queue oscillation under
//! bursty arrivals — instead of only end-of-run percentiles.

use crate::time::{SimDuration, SimTime};

/// A mean-per-bucket time series.
///
/// Each bucket also keeps the maximum and the *last* sample it
/// received, so one series serves both aggregation modes: mean/max for
/// rate-like quantities and last-value for gauges (where the most
/// recent observation, not the average of observations, is the state).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u64>,
    maxima: Vec<f64>,
    lasts: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> TimeSeries {
        assert!(bucket > SimDuration::ZERO, "zero bucket width");
        TimeSeries {
            bucket,
            sums: Vec::new(),
            counts: Vec::new(),
            maxima: Vec::new(),
            lasts: Vec::new(),
        }
    }

    /// Records one sample of the quantity at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite: a NaN would poison every
    /// aggregate of its bucket, and an infinity would make the
    /// serialised output non-portable — both are recording bugs at the
    /// sampling site, not data.
    pub fn record(&mut self, t: SimTime, value: f64) {
        assert!(value.is_finite(), "non-finite sample {value}");
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
            self.maxima.resize(idx + 1, f64::NEG_INFINITY);
            self.lasts.resize(idx + 1, 0.0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
        self.maxima[idx] = self.maxima[idx].max(value);
        self.lasts[idx] = value;
    }

    /// Folds `other` into `self` bucket by bucket: sums and counts add,
    /// maxima take the larger value, and `other`'s last sample wins in
    /// every bucket it touched (merge order is "self, then other" — the
    /// argument is the later recording).
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ (the bucket grids would not
    /// align, so per-bucket aggregation is meaningless).
    pub fn merge(&mut self, other: &TimeSeries) {
        assert!(
            self.bucket == other.bucket,
            "bucket width mismatch: {} vs {}",
            self.bucket,
            other.bucket
        );
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.sums.len(), 0);
            self.maxima.resize(other.sums.len(), f64::NEG_INFINITY);
            self.lasts.resize(other.sums.len(), 0.0);
        }
        for i in 0..other.sums.len() {
            if other.counts[i] == 0 {
                continue;
            }
            self.sums[i] += other.sums[i];
            self.counts[i] += other.counts[i];
            self.maxima[i] = self.maxima[i].max(other.maxima[i]);
            self.lasts[i] = other.lasts[i];
        }
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Returns `(bucket start, mean)` for every non-empty bucket.
    pub fn means(&self) -> Vec<(SimTime, f64)> {
        self.iter_stat(|i| self.sums[i] / self.counts[i] as f64)
    }

    /// Returns `(bucket start, max)` for every non-empty bucket.
    pub fn maxima(&self) -> Vec<(SimTime, f64)> {
        self.iter_stat(|i| self.maxima[i])
    }

    /// Returns `(bucket start, last sample)` for every non-empty bucket
    /// — the gauge view: each bucket reports the state it ended in,
    /// not the average of its observations.
    pub fn lasts(&self) -> Vec<(SimTime, f64)> {
        self.iter_stat(|i| self.lasts[i])
    }

    fn iter_stat(&self, f: impl Fn(usize) -> f64) -> Vec<(SimTime, f64)> {
        (0..self.sums.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (SimTime(i as u64 * self.bucket.as_nanos()), f(i)))
            .collect()
    }

    /// The largest sample across the whole run.
    pub fn global_max(&self) -> f64 {
        self.maxima
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of per-bucket means (ignores empty buckets).
    pub fn overall_mean(&self) -> f64 {
        let means = self.means();
        if means.is_empty() {
            return 0.0;
        }
        means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_aggregate_means_and_maxima() {
        let mut s = TimeSeries::new(SimDuration::from_micros(10));
        s.record(SimTime(1_000), 2.0);
        s.record(SimTime(9_000), 4.0); // same bucket
        s.record(SimTime(25_000), 10.0); // bucket 2
        let means = s.means();
        assert_eq!(means.len(), 2);
        assert_eq!(means[0], (SimTime(0), 3.0));
        assert_eq!(means[1], (SimTime(20_000), 10.0));
        assert_eq!(s.maxima()[0].1, 4.0);
        assert_eq!(s.global_max(), 10.0);
        assert_eq!(s.samples(), 3);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(SimDuration::from_micros(1));
        assert!(s.means().is_empty());
        assert_eq!(s.samples(), 0);
        assert_eq!(s.overall_mean(), 0.0);
    }

    #[test]
    fn sparse_buckets_skip_gaps() {
        let mut s = TimeSeries::new(SimDuration::from_nanos(100));
        s.record(SimTime(50), 1.0);
        s.record(SimTime(1_050), 5.0);
        let means = s.means();
        assert_eq!(means.len(), 2, "gap buckets are not reported");
        assert!((s.overall_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero bucket")]
    fn zero_bucket_panics() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
