//! Simulated time.
//!
//! Time is kept in integer nanoseconds. The paper reports many costs in
//! CPU cycles measured with `rdtsc` on a 2.00 GHz Xeon Gold 6330, so this
//! module also provides cycle conversions at that clock rate.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per simulated second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// CPU cycles per second of the simulated compute node (2.00 GHz).
pub const CYCLES_PER_SEC: u64 = 2_000_000_000;

/// An absolute point in simulated time, in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// simulation logic bug (an effect observed before its cause).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: negative duration"),
        )
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Creates a duration from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(secs >= 0.0, "negative duration");
        SimDuration((secs * NS_PER_SEC as f64).round() as u64)
    }

    /// Creates a duration from CPU cycles at the 2 GHz testbed clock.
    ///
    /// One cycle is 0.5 ns; odd cycle counts round up so that durations
    /// are never silently shortened.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> SimDuration {
        // ceil(cycles * NS_PER_SEC / CYCLES_PER_SEC) with the 2 GHz ratio
        // of exactly 2 cycles per ns.
        SimDuration(cycles.div_ceil(2))
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this duration expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Returns this duration expressed in CPU cycles at 2 GHz.
    #[inline]
    pub fn as_cycles(self) -> u64 {
        self.0 * 2
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;

    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_round_trip() {
        assert_eq!(SimDuration::from_cycles(40).as_nanos(), 20);
        assert_eq!(SimDuration::from_cycles(191).as_nanos(), 96); // rounds up
        assert_eq!(SimDuration::from_nanos(850).as_cycles(), 1_700);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime(1_000) + SimDuration::from_nanos(500);
        assert_eq!(t, SimTime(1_500));
        assert_eq!(t.since(SimTime(1_000)).as_nanos(), 500);
        assert_eq!(t - SimTime(250), SimDuration(1_250));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime(5).since(SimTime(10));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(
            SimTime(10).saturating_since(SimTime(5)),
            SimDuration::from_nanos(5)
        );
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(999).to_string(), "999ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
    }
}
