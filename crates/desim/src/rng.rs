//! Deterministic random number generation.
//!
//! The simulator carries its own xoshiro256** implementation instead of
//! depending on an external crate: simulation results must be bit-stable
//! across dependency upgrades so that `EXPERIMENTS.md` stays
//! reproducible. Seeding uses SplitMix64, the initialisation function
//! recommended by the xoshiro authors.

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** pseudo-random generator.
///
/// # Examples
///
/// ```
/// use desim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Components (load generator, workload, interference process, …)
    /// each fork their own stream so that adding a consumer of
    /// randomness in one component does not perturb another.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits scaled to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times in the open-loop load
    /// generator, exactly as the paper's mutilate-like generator does.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // 1 - U is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Samples a standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_order() {
        let mut root1 = Rng::new(99);
        let fork_a = root1.fork(1).next_u64();
        let mut root2 = Rng::new(99);
        let fork_a2 = root2.fork(1).next_u64();
        assert_eq!(fork_a, fork_a2);
    }

    #[test]
    fn exp_mean_converges() {
        let mut rng = Rng::new(5);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = Rng::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Rng::new(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((hits as f64 / 100_000.0 - 0.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Rng::new(0).gen_range(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    /// `gen_range(b)` always returns a value below `b`, across random
    /// seeds and bounds (including extreme bounds).
    #[test]
    fn range_in_bounds() {
        let mut meta = Rng::new(0x5EED);
        for _ in 0..64 {
            let seed = meta.next_u64();
            let bound = 1 + meta.gen_range(u64::MAX - 1);
            let mut rng = Rng::new(seed);
            for _ in 0..32 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
        for bound in [1u64, 2, 3, u64::MAX - 1, u64::MAX] {
            let mut rng = Rng::new(9);
            for _ in 0..32 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    /// `gen_f64` stays in [0, 1).
    #[test]
    fn f64_in_unit_interval() {
        let mut meta = Rng::new(0xF64);
        for _ in 0..64 {
            let mut rng = Rng::new(meta.next_u64());
            for _ in 0..64 {
                let x = rng.gen_f64();
                assert!((0.0..1.0).contains(&x));
            }
        }
    }

    /// `exp` samples are non-negative and finite for any mean.
    #[test]
    fn exp_non_negative() {
        let mut meta = Rng::new(0xE4B);
        for _ in 0..64 {
            let mut rng = Rng::new(meta.next_u64());
            let mean = 0.001 + meta.gen_f64() * 1e6;
            for _ in 0..32 {
                let x = rng.exp(mean);
                assert!(x.is_finite());
                assert!(x >= 0.0);
            }
        }
    }
}
