//! Continuous telemetry: a virtual-time flight recorder, an SLO
//! burn-rate engine, and derived health scores.
//!
//! Everything the simulator exports today is end-of-run (window-scoped
//! counters, span percentiles). This module adds the *dynamics*: a
//! [`FlightRecorder`] samples every registered counter and gauge from a
//! [`Metrics`] registry on a fixed virtual-time tick into
//! [`TimeSeries`] buckets, computes per-entity health scores
//! ([`health_score`]), and evaluates declarative [`SloRule`]s —
//! latency-objective burn rate, error-budget exhaustion, queue-growth
//! detection — over sliding windows, emitting typed [`SloEvent`]s into
//! the trace ring the moment an objective starts (or stops) burning.
//!
//! The whole plane is deterministic: sampling happens on the event
//! queue in virtual time, every aggregate is a pure fold over samples,
//! and serialisation uses fixed-precision formatting, so two
//! identically-seeded runs produce byte-identical telemetry JSON.

use crate::series::TimeSeries;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Metrics, TraceEvent, Tracer};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Synthetic pid under which Perfetto counter tracks and SLO instants
/// are emitted, far above any request id used by the span exporter so
/// the telemetry process gets its own lane in the UI.
pub const PERFETTO_TELEMETRY_PID: u64 = 1_000_000;

/// Configuration for the telemetry plane.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampling period in virtual time.
    pub tick: SimDuration,
    /// SLO rules to evaluate each tick.
    pub rules: Vec<SloRule>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            tick: SimDuration::from_micros(100),
            rules: default_rules(),
        }
    }
}

/// The default rule set: a 50 µs latency objective with a 1 % error
/// budget over 1 ms, a 1 % drop budget over 1 ms, and 2× queue growth
/// detection over 500 µs.
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule::LatencyBurn {
            objective: SimDuration::from_micros(50),
            budget: 0.01,
            window: SimDuration::from_millis(1),
        },
        SloRule::ErrorBudget {
            budget: 0.01,
            window: SimDuration::from_millis(1),
        },
        SloRule::QueueGrowth {
            factor: 2.0,
            window: SimDuration::from_micros(500),
        },
    ]
}

/// One declarative service-level objective, evaluated every tick over a
/// sliding window of ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum SloRule {
    /// Fraction of completions slower than `objective`, averaged over
    /// `window`, divided by `budget`: the classic burn rate. Burn ≥ 1
    /// means the error budget is being spent faster than it accrues.
    LatencyBurn {
        /// Latency objective per completion.
        objective: SimDuration,
        /// Tolerated fraction of completions over the objective.
        budget: f64,
        /// Sliding window the fraction is averaged over.
        window: SimDuration,
    },
    /// Fraction of dropped requests (drops / (drops + completions)),
    /// averaged over `window`, divided by `budget`.
    ErrorBudget {
        /// Tolerated drop fraction.
        budget: f64,
        /// Sliding window the fraction is averaged over.
        window: SimDuration,
    },
    /// Mean queue depth over the last `window` compared to the mean
    /// over the window before it; burning when the ratio reaches
    /// `factor` (and the current mean is at least one request).
    QueueGrowth {
        /// Growth ratio that constitutes a breach.
        factor: f64,
        /// Width of each of the two compared windows.
        window: SimDuration,
    },
}

impl SloRule {
    /// Name of the series the rule derives its signal from.
    pub fn series(&self) -> &'static str {
        match self {
            SloRule::LatencyBurn { .. } => "latency",
            SloRule::ErrorBudget { .. } => "drops",
            SloRule::QueueGrowth { .. } => "queue_depth",
        }
    }

    /// Short kind tag used in JSON and CSV output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SloRule::LatencyBurn { .. } => "latency_burn",
            SloRule::ErrorBudget { .. } => "error_budget",
            SloRule::QueueGrowth { .. } => "queue_growth",
        }
    }

    /// The rule's sliding window.
    pub fn window(&self) -> SimDuration {
        match self {
            SloRule::LatencyBurn { window, .. }
            | SloRule::ErrorBudget { window, .. }
            | SloRule::QueueGrowth { window, .. } => *window,
        }
    }

    fn to_json(&self) -> String {
        match self {
            SloRule::LatencyBurn {
                objective,
                budget,
                window,
            } => format!(
                "{{\"kind\":\"latency_burn\",\"objective_ns\":{},\"budget\":{:.6},\"window_ns\":{}}}",
                objective.as_nanos(),
                budget,
                window.as_nanos()
            ),
            SloRule::ErrorBudget { budget, window } => format!(
                "{{\"kind\":\"error_budget\",\"budget\":{:.6},\"window_ns\":{}}}",
                budget,
                window.as_nanos()
            ),
            SloRule::QueueGrowth { factor, window } => format!(
                "{{\"kind\":\"queue_growth\",\"factor\":{:.6},\"window_ns\":{}}}",
                factor,
                window.as_nanos()
            ),
        }
    }
}

/// Parses a comma-separated SLO spec string into rules.
///
/// Grammar (durations take `ns`/`us`/`ms`/`s` suffixes):
///
/// - `lat<OBJ:BUDGET@WINDOW` — latency burn rate, e.g. `lat<20us:0.05@1ms`
/// - `err<BUDGET@WINDOW` — error budget, e.g. `err<0.01@1ms`
/// - `qgrow>FACTOR@WINDOW` — queue growth, e.g. `qgrow>2@500us`
pub fn parse_slo_spec(spec: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(rest) = part.strip_prefix("lat<") {
            let (head, window) = split_window(rest)?;
            let (obj, budget) = head
                .split_once(':')
                .ok_or_else(|| format!("`{part}`: expected lat<OBJ:BUDGET@WINDOW"))?;
            rules.push(SloRule::LatencyBurn {
                objective: parse_duration(obj)?,
                budget: parse_fraction(budget)?,
                window,
            });
        } else if let Some(rest) = part.strip_prefix("err<") {
            let (head, window) = split_window(rest)?;
            rules.push(SloRule::ErrorBudget {
                budget: parse_fraction(head)?,
                window,
            });
        } else if let Some(rest) = part.strip_prefix("qgrow>") {
            let (head, window) = split_window(rest)?;
            let factor = head
                .parse::<f64>()
                .map_err(|_| format!("`{head}`: bad growth factor"))?;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(format!("`{head}`: growth factor must be positive"));
            }
            rules.push(SloRule::QueueGrowth { factor, window });
        } else {
            return Err(format!(
                "`{part}`: expected lat<…, err<… or qgrow>… (see --slo grammar)"
            ));
        }
    }
    if rules.is_empty() {
        return Err("empty SLO spec".to_string());
    }
    Ok(rules)
}

fn split_window(s: &str) -> Result<(&str, SimDuration), String> {
    let (head, w) = s
        .split_once('@')
        .ok_or_else(|| format!("`{s}`: missing @WINDOW"))?;
    Ok((head, parse_duration(w)?))
}

fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("`{s}`: duration needs a ns/us/ms/s suffix"));
    };
    let v = num
        .parse::<f64>()
        .map_err(|_| format!("`{s}`: bad duration"))?;
    if !(v.is_finite() && v > 0.0) {
        return Err(format!("`{s}`: duration must be positive"));
    }
    Ok(SimDuration((v * mult) as u64))
}

fn parse_fraction(s: &str) -> Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|_| format!("`{s}`: bad fraction"))?;
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(format!("`{s}`: fraction must be in (0, 1]"));
    }
    Ok(v)
}

/// Whether an [`SloEvent`] opens or closes a breach interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloEventKind {
    /// The rule's burn rate crossed 1 from below.
    BreachBegin,
    /// The rule's burn rate fell back under 1.
    BreachEnd,
}

impl SloEventKind {
    /// Short tag used in JSON/CSV output and trace event names.
    pub fn name(&self) -> &'static str {
        match self {
            SloEventKind::BreachBegin => "begin",
            SloEventKind::BreachEnd => "end",
        }
    }
}

/// A breach transition emitted by the SLO engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloEvent {
    /// Index into the configured rule list.
    pub rule: usize,
    /// Begin or end of a breach interval.
    pub kind: SloEventKind,
    /// Tick instant the transition was observed at.
    pub at: SimTime,
    /// Name of the series the rule derives its signal from.
    pub series: &'static str,
    /// The rule's sliding window.
    pub window: SimDuration,
    /// Burn rate at the transition, in thousandths (1000 = burn 1.0).
    pub value_milli: u64,
}

/// Raw inputs for one entity's health score at one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthInput {
    /// Outstanding fetches currently posted for the entity.
    pub outstanding: f64,
    /// Capacity those fetches are posted against (QP depth × rails).
    pub capacity: f64,
    /// Error chains currently unresolved (failovers in progress).
    pub error_chains: f64,
    /// Retransmissions per fetch over the last tick (0 when no fetches).
    pub retransmit_rate: f64,
    /// Requests parked in degraded-mode queues (resume/deferred work).
    pub degraded_queue: f64,
}

/// Deterministic 0–100 health score.
///
/// `100 − 40·min(1, outstanding/capacity) − min(30, 10·error_chains)
/// − min(20, 40·retransmit_rate) − min(10, degraded_queue)`, clamped
/// at 0. Full marks mean an idle, error-free entity; the weights put
/// queue-pressure (40) above error chains (30), retransmissions (20),
/// and degraded-queue depth (10).
pub fn health_score(h: &HealthInput) -> f64 {
    let occupancy = if h.capacity > 0.0 {
        (h.outstanding / h.capacity).min(1.0)
    } else {
        0.0
    };
    let score = 100.0
        - 40.0 * occupancy
        - (10.0 * h.error_chains).min(30.0)
        - (40.0 * h.retransmit_rate).min(20.0)
        - h.degraded_queue.min(10.0);
    score.max(0.0)
}

/// A fault episode annotation carried into the telemetry report so
/// breaches can be read against the injected disturbance.
#[derive(Debug, Clone)]
pub struct EpisodeNote {
    /// Episode start (inclusive).
    pub start: SimTime,
    /// Episode end (exclusive).
    pub end: SimTime,
    /// Episode kind tag (e.g. `"link_degraded"`, `"node_down"`).
    pub kind: &'static str,
    /// Series the episode affects (`"*"` for fabric-wide episodes,
    /// `"shardN"` for node-scoped ones).
    pub affected: Vec<String>,
}

struct RuleState {
    /// Per-tick signal samples; latency/error rules keep `window/tick`
    /// entries, queue-growth keeps twice that (two compared windows).
    ring: VecDeque<f64>,
    ring_cap: usize,
    active: bool,
    burn: TimeSeries,
    /// Completions over the latency objective this tick (latency rules).
    lat_over: u64,
    /// Completions observed this tick (latency rules).
    lat_total: u64,
}

/// The flight recorder: samples a [`Metrics`] registry every tick,
/// maintains health-score trajectories, and runs the SLO engine.
pub struct FlightRecorder {
    tick: SimDuration,
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    counter_names: Vec<&'static str>,
    counter_prev: Vec<u64>,
    /// Counts banked by [`FlightRecorder::bank`] across a registry
    /// reset, folded into the next tick's deltas so the partial period
    /// before the reset is not dropped from the rate series.
    counter_carry: Vec<u64>,
    counter_series: Vec<TimeSeries>,
    gauge_names: Vec<&'static str>,
    gauge_series: Vec<TimeSeries>,
    health_names: Vec<String>,
    health_series: Vec<TimeSeries>,
    /// Position of the `drops` / `completions` counters and the
    /// `queue_depth` gauge, when the registry has them (the error and
    /// queue rules read these well-known names).
    drops_idx: Option<usize>,
    completions_idx: Option<usize>,
    queue_idx: Option<usize>,
    events: Vec<SloEvent>,
    ticks: u64,
}

impl FlightRecorder {
    /// Builds a recorder over the registry's current instrument set.
    /// Instruments registered *after* construction are not sampled, so
    /// construct the recorder once the simulation has registered
    /// everything (registration order is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero.
    pub fn new(cfg: TelemetryConfig, metrics: &Metrics) -> FlightRecorder {
        assert!(cfg.tick > SimDuration::ZERO, "zero telemetry tick");
        let tick = cfg.tick;
        let counter_names: Vec<_> = metrics.counters_iter().map(|(n, _)| n).collect();
        let counter_prev: Vec<_> = metrics.counters_iter().map(|(_, v)| v).collect();
        let gauge_names: Vec<_> = metrics.gauges_iter().map(|(n, _)| n).collect();
        let states = cfg
            .rules
            .iter()
            .map(|r| {
                let w = (r.window().as_nanos() / tick.as_nanos()).max(1) as usize;
                let cap = match r {
                    SloRule::QueueGrowth { .. } => 2 * w,
                    _ => w,
                };
                RuleState {
                    ring: VecDeque::with_capacity(cap),
                    ring_cap: cap,
                    active: false,
                    burn: TimeSeries::new(tick),
                    lat_over: 0,
                    lat_total: 0,
                }
            })
            .collect();
        FlightRecorder {
            tick,
            counter_series: counter_names
                .iter()
                .map(|_| TimeSeries::new(tick))
                .collect(),
            gauge_series: gauge_names.iter().map(|_| TimeSeries::new(tick)).collect(),
            drops_idx: counter_names.iter().position(|&n| n == "drops"),
            completions_idx: counter_names.iter().position(|&n| n == "completions"),
            queue_idx: gauge_names.iter().position(|&n| n == "queue_depth"),
            counter_names,
            counter_carry: vec![0; counter_prev.len()],
            counter_prev,
            gauge_names,
            health_names: Vec::new(),
            health_series: Vec::new(),
            rules: cfg.rules,
            states,
            events: Vec::new(),
            ticks: 0,
        }
    }

    /// Sampling period.
    pub fn tick_period(&self) -> SimDuration {
        self.tick
    }

    /// Registers a health-score entity (e.g. `"qp3"`, `"shard1"`) and
    /// returns its index; [`FlightRecorder::tick`] then expects one
    /// [`HealthInput`] per registered entity, in registration order.
    pub fn register_health(&mut self, name: String) -> usize {
        self.health_names.push(name);
        self.health_series.push(TimeSeries::new(self.tick));
        self.health_names.len() - 1
    }

    /// Feeds one request completion into the latency-burn rules. Call
    /// for every completion between ticks; the per-tick fraction is
    /// folded into each latency rule's sliding window at the next tick.
    pub fn on_completion(&mut self, latency: SimDuration) {
        for (rule, st) in self.rules.iter().zip(self.states.iter_mut()) {
            if let SloRule::LatencyBurn { objective, .. } = rule {
                st.lat_total += 1;
                if latency > *objective {
                    st.lat_over += 1;
                }
            }
        }
    }

    /// Banks the not-yet-sampled counter deltas (everything accrued
    /// since the previous tick). Call immediately **before** a
    /// [`Metrics::reset`]: the reset lowers every counter below the
    /// recorder's baseline, and without banking, `tick`'s saturating
    /// subtraction would silently clamp the partial period to zero —
    /// under-reporting every rate series at the warm-up boundary.
    /// The banked counts are folded into the next tick's deltas.
    pub fn bank(&mut self, metrics: &Metrics) {
        for (i, (_, v)) in metrics.counters_iter().enumerate() {
            self.counter_carry[i] += v.saturating_sub(self.counter_prev[i]);
        }
    }

    /// Re-synchronises counter baselines after a [`Metrics::reset`]
    /// (the warm-up → measure boundary), so the first post-reset tick
    /// does not read a bogus delta. Pair with [`FlightRecorder::bank`]
    /// before the reset, or the partial tick period preceding the
    /// boundary is lost.
    pub fn rebase(&mut self, metrics: &Metrics) {
        for (i, (_, v)) in metrics.counters_iter().enumerate() {
            self.counter_prev[i] = v;
        }
    }

    /// Takes one sample: counter deltas and gauge values land in their
    /// series, health inputs are scored, and every SLO rule is
    /// evaluated. Breach transitions are appended to the event log and
    /// recorded into `tracer` (component `"slo"`, names
    /// `"breach_begin"`/`"breach_end"`, payload `a` = rule index,
    /// `b` = burn in thousandths).
    ///
    /// # Panics
    ///
    /// Panics if `health` does not have one entry per registered
    /// health entity.
    pub fn tick(
        &mut self,
        now: SimTime,
        metrics: &Metrics,
        health: &[HealthInput],
        tracer: &mut dyn Tracer,
    ) {
        self.ticks += 1;
        let mut drops_delta = 0u64;
        let mut completions_delta = 0u64;
        for (i, (_, v)) in metrics.counters_iter().enumerate() {
            let d =
                v.saturating_sub(self.counter_prev[i]) + std::mem::take(&mut self.counter_carry[i]);
            self.counter_prev[i] = v;
            self.counter_series[i].record(now, d as f64);
            if Some(i) == self.drops_idx {
                drops_delta = d;
            }
            if Some(i) == self.completions_idx {
                completions_delta = d;
            }
        }
        let mut queue_now = 0.0;
        for (i, (_, v)) in metrics.gauges_iter().enumerate() {
            self.gauge_series[i].record(now, v);
            if Some(i) == self.queue_idx {
                queue_now = v;
            }
        }
        assert_eq!(
            health.len(),
            self.health_series.len(),
            "one HealthInput per registered entity"
        );
        for (i, h) in health.iter().enumerate() {
            self.health_series[i].record(now, health_score(h));
        }

        for (ri, (rule, st)) in self.rules.iter().zip(self.states.iter_mut()).enumerate() {
            let burn = match rule {
                SloRule::LatencyBurn { budget, .. } => {
                    let frac = if st.lat_total > 0 {
                        st.lat_over as f64 / st.lat_total as f64
                    } else {
                        0.0
                    };
                    st.lat_over = 0;
                    st.lat_total = 0;
                    push_ring(&mut st.ring, st.ring_cap, frac);
                    ring_mean(&st.ring) / budget
                }
                SloRule::ErrorBudget { budget, .. } => {
                    let total = drops_delta + completions_delta;
                    let frac = if total > 0 {
                        drops_delta as f64 / total as f64
                    } else {
                        0.0
                    };
                    push_ring(&mut st.ring, st.ring_cap, frac);
                    ring_mean(&st.ring) / budget
                }
                SloRule::QueueGrowth { factor, .. } => {
                    push_ring(&mut st.ring, st.ring_cap, queue_now);
                    if st.ring.len() == st.ring_cap {
                        let half = st.ring_cap / 2;
                        let prev: f64 = st.ring.iter().take(half).sum::<f64>() / half as f64;
                        let cur: f64 =
                            st.ring.iter().skip(half).sum::<f64>() / (st.ring_cap - half) as f64;
                        if cur >= 1.0 {
                            (cur / prev.max(1.0)) / factor
                        } else {
                            0.0
                        }
                    } else {
                        0.0
                    }
                }
            };
            // Burn is quantised to thousandths *before* the breach
            // decision, so the event log and the exported burn series
            // agree exactly: in-breach ⇔ series value ≥ 1.0.
            let value_milli = (burn * 1000.0).round() as u64;
            st.burn.record(now, value_milli as f64 / 1000.0);
            let breaching = value_milli >= 1000;
            if breaching != st.active {
                st.active = breaching;
                let kind = if breaching {
                    SloEventKind::BreachBegin
                } else {
                    SloEventKind::BreachEnd
                };
                self.events.push(SloEvent {
                    rule: ri,
                    kind,
                    at: now,
                    series: rule.series(),
                    window: rule.window(),
                    value_milli,
                });
                if tracer.enabled() {
                    tracer.record(TraceEvent {
                        at: now,
                        component: "slo",
                        name: match kind {
                            SloEventKind::BreachBegin => "breach_begin",
                            SloEventKind::BreachEnd => "breach_end",
                        },
                        a: ri as u64,
                        b: value_milli,
                    });
                }
            }
        }
    }

    /// Finalises the recording into a report, annotated with the fault
    /// episodes that ran during the window. A breach still open at the
    /// last tick stays open (no synthetic end event).
    pub fn finish(self, episodes: Vec<EpisodeNote>) -> TelemetryReport {
        TelemetryReport {
            tick: self.tick,
            ticks: self.ticks,
            rules: self.rules,
            events: self.events,
            episodes,
            counters: self
                .counter_names
                .into_iter()
                .zip(self.counter_series)
                .collect(),
            gauges: self
                .gauge_names
                .into_iter()
                .zip(self.gauge_series)
                .collect(),
            burn: self.states.into_iter().map(|s| s.burn).collect(),
            health: self
                .health_names
                .into_iter()
                .zip(self.health_series)
                .collect(),
        }
    }
}

fn push_ring(ring: &mut VecDeque<f64>, cap: usize, v: f64) {
    if ring.len() == cap {
        ring.pop_front();
    }
    ring.push_back(v);
}

fn ring_mean(ring: &VecDeque<f64>) -> f64 {
    if ring.is_empty() {
        return 0.0;
    }
    ring.iter().sum::<f64>() / ring.len() as f64
}

/// The finished recording: bucketed series, the SLO event log, health
/// trajectories, and episode annotations, with deterministic JSON/CSV
/// and Perfetto serialisations.
pub struct TelemetryReport {
    /// Sampling period.
    pub tick: SimDuration,
    /// Ticks taken.
    pub ticks: u64,
    /// The rules that were evaluated (index = `SloEvent::rule`).
    pub rules: Vec<SloRule>,
    /// Breach transitions, in tick order.
    pub events: Vec<SloEvent>,
    /// Fault episodes that ran during the recording.
    pub episodes: Vec<EpisodeNote>,
    counters: Vec<(&'static str, TimeSeries)>,
    gauges: Vec<(&'static str, TimeSeries)>,
    burn: Vec<TimeSeries>,
    health: Vec<(String, TimeSeries)>,
}

impl TelemetryReport {
    /// Looks a counter-rate series up by name (values are deltas per
    /// tick).
    pub fn counter_series(&self, name: &str) -> Option<&TimeSeries> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// Looks a gauge series up by name (values are last-at-tick).
    pub fn gauge_series(&self, name: &str) -> Option<&TimeSeries> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Burn-rate series of rule `i` (values quantised to thousandths,
    /// exactly as the breach decision saw them).
    pub fn burn_series(&self, i: usize) -> &TimeSeries {
        &self.burn[i]
    }

    /// `(entity name, score series)` per registered health entity.
    pub fn health_series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.health.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Serialises the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * 1024);
        let _ = write!(
            out,
            "{{\"tick_ns\":{},\"ticks\":{},\"rules\":[",
            self.tick.as_nanos(),
            self.ticks
        );
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"kind\":\"{}\",\"t_ns\":{},\"series\":\"{}\",\"window_ns\":{},\"value_milli\":{}}}",
                e.rule,
                e.kind.name(),
                e.at.as_nanos(),
                e.series,
                e.window.as_nanos(),
                e.value_milli
            );
        }
        out.push_str("],\"episodes\":[");
        for (i, ep) in self.episodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"start_ns\":{},\"end_ns\":{},\"kind\":\"{}\",\"affected\":[",
                ep.start.as_nanos(),
                ep.end.as_nanos(),
                ep.kind
            );
            for (j, a) in ep.affected.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{a}\"");
            }
            out.push_str("]}");
        }
        out.push_str("],\"series\":{");
        let mut first = true;
        for (name, s) in &self.counters {
            series_json(&mut out, &mut first, name, &s.means());
        }
        for (name, s) in &self.gauges {
            series_json(&mut out, &mut first, name, &s.lasts());
        }
        for (i, s) in self.burn.iter().enumerate() {
            series_json(&mut out, &mut first, &format!("slo{i}.burn"), &s.lasts());
        }
        out.push_str("},\"health\":{");
        let mut first = true;
        for (name, s) in &self.health {
            series_json(&mut out, &mut first, name, &s.lasts());
        }
        out.push_str("}}");
        out
    }

    /// `series,t_ns,value` CSV over every counter, gauge and burn
    /// series.
    pub fn series_csv(&self) -> String {
        let mut out = String::from("series,t_ns,value\n");
        for (name, s) in &self.counters {
            for (t, v) in s.means() {
                let _ = writeln!(out, "{},{},{:.3}", name, t.as_nanos(), v);
            }
        }
        for (name, s) in &self.gauges {
            for (t, v) in s.lasts() {
                let _ = writeln!(out, "{},{},{:.3}", name, t.as_nanos(), v);
            }
        }
        for (i, s) in self.burn.iter().enumerate() {
            for (t, v) in s.lasts() {
                let _ = writeln!(out, "slo{}.burn,{},{:.3}", i, t.as_nanos(), v);
            }
        }
        out
    }

    /// `entity,t_ns,score` CSV over every health trajectory.
    pub fn health_csv(&self) -> String {
        let mut out = String::from("entity,t_ns,score\n");
        for (name, s) in &self.health {
            for (t, v) in s.lasts() {
                let _ = writeln!(out, "{},{},{:.3}", name, t.as_nanos(), v);
            }
        }
        out
    }

    /// `rule,kind,t_ns,series,window_ns,value_milli` CSV of the SLO
    /// event log.
    pub fn events_csv(&self) -> String {
        let mut out = String::from("rule,kind,t_ns,series,window_ns,value_milli\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                e.rule,
                e.kind.name(),
                e.at.as_nanos(),
                e.series,
                e.window.as_nanos(),
                e.value_milli
            );
        }
        out
    }

    /// Perfetto (Chrome trace format) events for the telemetry process:
    /// one `"C"` counter track per series under
    /// [`PERFETTO_TELEMETRY_PID`], plus an instant per SLO transition —
    /// each event serialised as one JSON object string. Splice these
    /// into a span export's `traceEvents` to see counters and spans on
    /// one timeline.
    pub fn perfetto_counter_events(&self) -> Vec<String> {
        fn us(t: SimTime) -> String {
            format!("{:.3}", t.as_nanos() as f64 / 1000.0)
        }
        let pid = PERFETTO_TELEMETRY_PID;
        let mut evs = vec![format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"telemetry\"}}}}"
        )];
        let mut counter = |name: &str, pts: Vec<(SimTime, f64)>| {
            for (t, v) in pts {
                evs.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"{}\",\"ts\":{},\"args\":{{\"value\":{:.3}}}}}",
                    name,
                    us(t),
                    v
                ));
            }
        };
        for (name, s) in &self.counters {
            counter(name, s.means());
        }
        for (name, s) in &self.gauges {
            counter(name, s.lasts());
        }
        for (i, s) in self.burn.iter().enumerate() {
            counter(&format!("slo{i}.burn"), s.lasts());
        }
        for (name, s) in &self.health {
            counter(&format!("health.{name}"), s.lasts());
        }
        for e in &self.events {
            evs.push(format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"slo{} breach {}\",\"s\":\"p\"}}",
                us(e.at),
                e.rule,
                e.kind.name()
            ));
        }
        evs
    }

    /// Standalone Perfetto JSON document of the counter tracks.
    pub fn perfetto_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.perfetto_counter_events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }
}

fn series_json(out: &mut String, first: &mut bool, name: &str, pts: &[(SimTime, f64)]) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "\"{name}\":[");
    for (i, (t, v)) in pts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{:.3}]", t.as_nanos(), v);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NoopTracer;

    #[test]
    fn spec_grammar_round_trips() {
        let rules = parse_slo_spec("lat<20us:0.05@1ms, err<0.01@1ms,qgrow>2@500us").unwrap();
        assert_eq!(
            rules,
            vec![
                SloRule::LatencyBurn {
                    objective: SimDuration::from_micros(20),
                    budget: 0.05,
                    window: SimDuration::from_millis(1),
                },
                SloRule::ErrorBudget {
                    budget: 0.01,
                    window: SimDuration::from_millis(1),
                },
                SloRule::QueueGrowth {
                    factor: 2.0,
                    window: SimDuration::from_micros(500),
                },
            ]
        );
    }

    #[test]
    fn spec_grammar_rejects_nonsense() {
        for bad in [
            "",
            "lat<20us@1ms",           // missing budget
            "lat<20us:0.05",          // missing window
            "err<1.5@1ms",            // fraction out of range
            "qgrow>-2@1ms",           // negative factor
            "foo<1@1ms",              // unknown rule
            "lat<20parsecs:0.05@1ms", // bad unit
        ] {
            assert!(parse_slo_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn health_score_weights_and_clamp() {
        let idle = HealthInput::default();
        assert_eq!(health_score(&idle), 100.0);
        let busy = HealthInput {
            outstanding: 32.0,
            capacity: 64.0,
            ..HealthInput::default()
        };
        assert_eq!(health_score(&busy), 80.0); // 40·0.5
        let dying = HealthInput {
            outstanding: 1000.0,
            capacity: 1.0,
            error_chains: 50.0,
            retransmit_rate: 10.0,
            degraded_queue: 1000.0,
        };
        assert_eq!(health_score(&dying), 0.0); // every term saturates
        let zero_capacity = HealthInput {
            outstanding: 5.0,
            capacity: 0.0,
            ..HealthInput::default()
        };
        assert_eq!(health_score(&zero_capacity), 100.0);
    }

    #[test]
    fn latency_burn_opens_and_closes_a_breach() {
        let mut m = Metrics::new();
        let _c = m.counter("completions");
        let cfg = TelemetryConfig {
            tick: SimDuration::from_micros(10),
            rules: vec![SloRule::LatencyBurn {
                objective: SimDuration::from_micros(5),
                budget: 0.1,
                window: SimDuration::from_micros(20), // 2 ticks
            }],
        };
        let mut rec = FlightRecorder::new(cfg, &m);
        let mut tracer = NoopTracer;
        let mut now = SimTime::ZERO;
        let mut step = |rec: &mut FlightRecorder, over: bool| {
            now += SimDuration::from_micros(10);
            for _ in 0..10 {
                rec.on_completion(if over {
                    SimDuration::from_micros(50)
                } else {
                    SimDuration::from_micros(1)
                });
            }
            rec.tick(now, &m, &[], &mut tracer);
        };
        step(&mut rec, false);
        step(&mut rec, false);
        step(&mut rec, true); // window frac 0.5 ⇒ burn 5 ⇒ breach
        step(&mut rec, true);
        step(&mut rec, false);
        step(&mut rec, false); // window clean ⇒ burn 0 ⇒ clear
        let rep = rec.finish(Vec::new());
        let kinds: Vec<_> = rep.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![SloEventKind::BreachBegin, SloEventKind::BreachEnd]
        );
        assert_eq!(rep.events[0].at, SimTime(30_000));
        assert_eq!(rep.events[1].at, SimTime(60_000));
        assert_eq!(rep.events[0].series, "latency");
        assert!(rep.events[0].value_milli >= 1000);
        assert!(rep.events[1].value_milli < 1000);
        // The burn series agrees with the decisions it produced.
        for (t, v) in rep.burn_series(0).lasts() {
            let inside = t >= rep.events[0].at && t < rep.events[1].at;
            assert_eq!(v >= 1.0, inside, "burn series disagrees at {t}");
        }
    }

    #[test]
    fn counter_deltas_and_rebase() {
        let mut m = Metrics::new();
        let c = m.counter("work");
        let cfg = TelemetryConfig {
            tick: SimDuration::from_micros(10),
            rules: default_rules(),
        };
        let mut rec = FlightRecorder::new(cfg, &m);
        let mut tracer = NoopTracer;
        m.add(c, 7);
        rec.tick(SimTime(10_000), &m, &[], &mut tracer);
        m.add(c, 3);
        // Warm-up boundary: bank the 3 not-yet-sampled counts, zero
        // the registry, re-sync the baselines.
        rec.bank(&m);
        m.reset(SimTime(15_000));
        rec.rebase(&m);
        m.add(c, 4);
        rec.tick(SimTime(20_000), &m, &[], &mut tracer);
        let rep = rec.finish(Vec::new());
        let pts = rep.counter_series("work").unwrap().means();
        // Second tick: 4 counted after the reset + the 3 banked across
        // it — the full period, not a clamped partial.
        assert_eq!(pts, vec![(SimTime(10_000), 7.0), (SimTime(20_000), 7.0)]);
    }

    /// Regression: a `Metrics::reset` between ticks lowers every
    /// counter below the recorder's baseline; the saturating delta
    /// then silently clamps the pre-reset tail to zero unless it is
    /// banked. Conservation must hold across the boundary: the series
    /// total equals every count ever added.
    #[test]
    fn rebase_boundary_conserves_counts() {
        let mut m = Metrics::new();
        let c = m.counter("work");
        let cfg = TelemetryConfig {
            tick: SimDuration::from_micros(10),
            rules: default_rules(),
        };
        let mut rec = FlightRecorder::new(cfg, &m);
        let mut tracer = NoopTracer;
        let mut added = 0u64;
        for i in 0..10u64 {
            m.add(c, 5 + i);
            added += 5 + i;
            // Reset mid-stream every third tick, like the warm-up
            // boundary does (but misaligned with the tick grid).
            if i == 3 || i == 7 {
                m.add(c, 2);
                added += 2;
                rec.bank(&m);
                m.reset(SimTime(i * 10_000 + 5_000));
                rec.rebase(&m);
            }
            rec.tick(SimTime((i + 1) * 10_000), &m, &[], &mut tracer);
        }
        let rep = rec.finish(Vec::new());
        let total: f64 = rep
            .counter_series("work")
            .unwrap()
            .means()
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total as u64, added, "counts lost across rebase");
    }

    #[test]
    fn queue_growth_detects_a_ramp() {
        let mut m = Metrics::new();
        let q = m.gauge("queue_depth");
        let cfg = TelemetryConfig {
            tick: SimDuration::from_micros(10),
            rules: vec![SloRule::QueueGrowth {
                factor: 2.0,
                window: SimDuration::from_micros(20), // 2-tick halves
            }],
        };
        let mut rec = FlightRecorder::new(cfg, &m);
        let mut tracer = NoopTracer;
        let depths = [2.0, 2.0, 2.0, 2.0, 8.0, 8.0, 8.0, 8.0];
        for (i, &d) in depths.iter().enumerate() {
            let t = SimTime((i as u64 + 1) * 10_000);
            m.gauge_set(q, t, d);
            rec.tick(t, &m, &[], &mut tracer);
        }
        let rep = rec.finish(Vec::new());
        assert!(
            rep.events
                .iter()
                .any(|e| e.kind == SloEventKind::BreachBegin && e.series == "queue_depth"),
            "ramp from 2 to 8 must trip the 2x growth rule: {:?}",
            rep.events
        );
    }

    #[test]
    fn report_json_shape() {
        let m = Metrics::new();
        let cfg = TelemetryConfig::default();
        let mut rec = FlightRecorder::new(cfg, &m);
        rec.register_health("qp0".to_string());
        let mut tracer = NoopTracer;
        rec.tick(SimTime(100_000), &m, &[HealthInput::default()], &mut tracer);
        let rep = rec.finish(vec![EpisodeNote {
            start: SimTime(0),
            end: SimTime(50_000),
            kind: "link_degraded",
            affected: vec!["*".to_string()],
        }]);
        let json = rep.to_json();
        assert!(json.starts_with("{\"tick_ns\":100000,\"ticks\":1,"));
        assert!(json.contains("\"episodes\":[{\"start_ns\":0,\"end_ns\":50000,\"kind\":\"link_degraded\",\"affected\":[\"*\"]}]"));
        assert!(json.contains("\"health\":{\"qp0\":[[100000,100.000]]}"));
        assert!(json.contains("\"slo0.burn\":[[100000,0.000]]"));
        assert!(rep.health_csv().contains("qp0,100000,100.000"));
        assert!(rep.perfetto_json().contains("\"ph\":\"C\""));
    }
}
