//! Virtual-time core profiler and queueing observatory.
//!
//! The span layer (PR 2) answers "where did *this request's* latency
//! go"; this module answers the dual question: "where did *each core's*
//! time go". A [`CoreProfiler`] tiles every core's timeline exhaustively
//! into typed [`CoreState`]s with the same cursor discipline spans use —
//! each accrual covers exactly the interval between the core's cursor
//! and the new instant, clamped to the measurement window — so per-core
//! state durations sum to the window *exactly*: no gaps, no overlaps.
//!
//! On top of it, [`QueueProbe`]s watch every software and hardware queue
//! (dispatcher ingress, per-worker runnable, per-shard send queues,
//! deferred write-backs): depth over time, per-element waits, and a
//! Little's-law cross-check (`mean_depth ≈ arrival_rate × mean_wait`)
//! that scores each queue's own bookkeeping for consistency.
//!
//! Everything is deterministic: accruals are integer nanosecond
//! arithmetic, reports serialise with fixed-precision formatting, and
//! the profiler schedules no events of its own — enabling it never
//! perturbs a run.

use crate::hist::Histogram;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Synthetic pid under which per-core state tracks are emitted into
/// Perfetto documents — above the telemetry pid so the profiler gets
/// its own process lane in the UI.
pub const PERFETTO_PROFILE_PID: u64 = 2_000_000;

/// Number of [`CoreState`] variants (array dimension of every tile).
pub const NUM_STATES: usize = 9;

/// What a core is doing at an instant of virtual time. The nine states
/// partition each core's timeline exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreState {
    /// Dispatcher admission / delegated-TX recycle work.
    Dispatch,
    /// Handing a request between dispatcher and worker (either side),
    /// including work-steal transfers.
    Handoff,
    /// Useful request work: setup, compute, fault-handler entry/issue,
    /// page map, reply build.
    Work,
    /// Busy-waiting on a fetch completion (the paper's enemy).
    Spin,
    /// Idle with parked unithreads — yielded work is outstanding and
    /// the core waits for a completion to wake it.
    Park,
    /// Context switching: unithread switches, CQ polls bundled with
    /// them, and preemption costs.
    CtxSwitch,
    /// Stalled on the fetch path without spinning: paused on a full QP
    /// or waiting for a free frame (fault retry backoff).
    FetchWait,
    /// Spinning on a reply-TX completion (no polling delegation).
    TxWait,
    /// Nothing to do and nothing outstanding.
    Idle,
}

impl CoreState {
    /// Every state, in the order reports serialise them.
    pub const ALL: [CoreState; NUM_STATES] = [
        CoreState::Dispatch,
        CoreState::Handoff,
        CoreState::Work,
        CoreState::Spin,
        CoreState::Park,
        CoreState::CtxSwitch,
        CoreState::FetchWait,
        CoreState::TxWait,
        CoreState::Idle,
    ];

    /// Stable lower-case name used in JSON, folded stacks and Perfetto.
    pub fn name(self) -> &'static str {
        match self {
            CoreState::Dispatch => "dispatch",
            CoreState::Handoff => "handoff",
            CoreState::Work => "work",
            CoreState::Spin => "spin",
            CoreState::Park => "park",
            CoreState::CtxSwitch => "ctx_switch",
            CoreState::FetchWait => "fetch_wait",
            CoreState::TxWait => "tx_wait",
            CoreState::Idle => "idle",
        }
    }

    fn idx(self) -> usize {
        match self {
            CoreState::Dispatch => 0,
            CoreState::Handoff => 1,
            CoreState::Work => 2,
            CoreState::Spin => 3,
            CoreState::Park => 4,
            CoreState::CtxSwitch => 5,
            CoreState::FetchWait => 6,
            CoreState::TxWait => 7,
            CoreState::Idle => 8,
        }
    }
}

/// Configuration of the profiler.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Number of equal sub-windows the measurement window is split into
    /// for the folded-stack flamegraph and the Perfetto state tracks
    /// (per-core state *totals* are always window-exact regardless).
    pub flame_windows: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig { flame_windows: 8 }
    }
}

/// Static metric names for the queue-depth gauges the observatory
/// registers (the registry requires `&'static str` names, so dynamic
/// indices need name tables — same scheme as `trace::shard_names`).
pub mod queue_names {
    /// Workers with a dedicated runnable-queue gauge (larger worker
    /// counts are still profiled; they just lose the per-tick series).
    pub const MAX_WORKERS: usize = 16;
    /// Shard rails with dedicated send-queue / write-back gauges.
    pub const MAX_SHARDS: usize = 8;

    /// Dispatcher cores with a dedicated per-ingress depth gauge
    /// (matches `trace::dispatcher_names::MAX_DISPATCHERS`).
    pub const MAX_DISPATCHERS: usize = 16;

    /// Central dispatcher ingress queue depth.
    pub const INGRESS: &str = "q.ingress.depth";
    /// Per-dispatcher ingress slot depth (arrivals published to the
    /// dispatcher that it has not yet admitted). Registered only when
    /// the ingress plane has more than one dispatcher core.
    pub const D_INGRESS: [&str; MAX_DISPATCHERS] = [
        "q.d0.ingress.depth",
        "q.d1.ingress.depth",
        "q.d2.ingress.depth",
        "q.d3.ingress.depth",
        "q.d4.ingress.depth",
        "q.d5.ingress.depth",
        "q.d6.ingress.depth",
        "q.d7.ingress.depth",
        "q.d8.ingress.depth",
        "q.d9.ingress.depth",
        "q.d10.ingress.depth",
        "q.d11.ingress.depth",
        "q.d12.ingress.depth",
        "q.d13.ingress.depth",
        "q.d14.ingress.depth",
        "q.d15.ingress.depth",
    ];
    /// Per-worker runnable (resumed unithread) queue depth.
    pub const RUNNABLE: [&str; MAX_WORKERS] = [
        "q.w0.runnable.depth",
        "q.w1.runnable.depth",
        "q.w2.runnable.depth",
        "q.w3.runnable.depth",
        "q.w4.runnable.depth",
        "q.w5.runnable.depth",
        "q.w6.runnable.depth",
        "q.w7.runnable.depth",
        "q.w8.runnable.depth",
        "q.w9.runnable.depth",
        "q.w10.runnable.depth",
        "q.w11.runnable.depth",
        "q.w12.runnable.depth",
        "q.w13.runnable.depth",
        "q.w14.runnable.depth",
        "q.w15.runnable.depth",
    ];
    /// Per-shard outstanding send-queue entries (all QPs on the rail).
    pub const SQ: [&str; MAX_SHARDS] = [
        "q.shard0.sq.depth",
        "q.shard1.sq.depth",
        "q.shard2.sq.depth",
        "q.shard3.sq.depth",
        "q.shard4.sq.depth",
        "q.shard5.sq.depth",
        "q.shard6.sq.depth",
        "q.shard7.sq.depth",
    ];
    /// Per-shard deferred write-back queue depth.
    pub const WRITEBACK: [&str; MAX_SHARDS] = [
        "q.shard0.writeback.depth",
        "q.shard1.writeback.depth",
        "q.shard2.writeback.depth",
        "q.shard3.writeback.depth",
        "q.shard4.writeback.depth",
        "q.shard5.writeback.depth",
        "q.shard6.writeback.depth",
        "q.shard7.writeback.depth",
    ];
}

struct CoreSlot {
    label: String,
    /// Counts toward worker aggregates (`worker_spin_fraction`).
    is_worker: bool,
    /// Everything before this instant has been accrued to some state.
    cursor: SimTime,
    /// State accrued for open-ended intervals (idle/parked/stalled gaps
    /// closed by the next `flush`).
    gap: CoreState,
    /// ns per state per flame sub-window, measurement-window scoped.
    tiles: Vec<[u64; NUM_STATES]>,
}

/// Exhaustive per-core state accounting over the measurement window.
///
/// Discipline (mirrors `SpanBuilder::phase`):
///
/// - [`CoreProfiler::phase`] accrues `[cursor, until]` to a state and
///   advances the cursor — for *closed* intervals whose length is known
///   when they start (compute, context switches, spins).
/// - [`CoreProfiler::set_gap`] marks the state of an *open* interval
///   (idle, parked, QP-stalled); the next [`CoreProfiler::flush`]
///   accrues `[cursor, now]` to it.
/// - Accruals are clamped to `[window_start, window_end]` and the
///   cursor never moves backwards (worker virtual clocks run slightly
///   ahead of the event clock), so per-core totals tile the window
///   exactly by construction.
pub struct CoreProfiler {
    w_start: SimTime,
    w_end: SimTime,
    flame_windows: usize,
    cores: Vec<CoreSlot>,
}

impl CoreProfiler {
    /// Creates a profiler for the measurement window
    /// `[w_start, w_end]`.
    ///
    /// # Panics
    ///
    /// Panics when the window is inverted or `flame_windows` is zero.
    pub fn new(w_start: SimTime, w_end: SimTime, cfg: &ProfileConfig) -> CoreProfiler {
        assert!(w_end >= w_start, "inverted measurement window");
        assert!(cfg.flame_windows >= 1, "flame_windows must be positive");
        CoreProfiler {
            w_start,
            w_end,
            flame_windows: cfg.flame_windows,
            cores: Vec::new(),
        }
    }

    /// Registers a core and returns its index. Cores start idle with
    /// their cursor at t = 0.
    pub fn add_core(&mut self, label: String, is_worker: bool) -> usize {
        self.cores.push(CoreSlot {
            label,
            is_worker,
            cursor: SimTime::ZERO,
            gap: CoreState::Idle,
            tiles: vec![[0; NUM_STATES]; self.flame_windows],
        });
        self.cores.len() - 1
    }

    /// Number of registered cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Accrues the window-clamped part of `[from, to]` to `state`,
    /// split exactly across flame sub-windows.
    fn accrue(&mut self, core: usize, state: CoreState, from: SimTime, to: SimTime) {
        let a = from.max(self.w_start).as_nanos();
        let b = to.min(self.w_end).as_nanos();
        if b <= a {
            return;
        }
        let ws = self.w_start.as_nanos();
        let win = self.w_end.as_nanos() - ws;
        let nb = self.flame_windows as u64;
        let s = state.idx();
        let tiles = &mut self.cores[core].tiles;
        // Sub-window k covers [ws + win*k/nb, ws + win*(k+1)/nb).
        let mut lo = a;
        let mut k = if win == 0 {
            0
        } else {
            (((a - ws) as u128 * nb as u128 / win as u128) as u64).min(nb - 1)
        };
        while lo < b {
            let hi = if k + 1 >= nb {
                self.w_end.as_nanos()
            } else {
                ws + (win as u128 * (k as u128 + 1) / nb as u128) as u64
            };
            let end = b.min(hi);
            tiles[k as usize][s] += end - lo;
            lo = end;
            k += 1;
        }
    }

    /// Closes the interval `[cursor, until]` as `state` and advances
    /// the cursor. A stale `until` (behind the cursor) accrues nothing
    /// and leaves the cursor in place.
    pub fn phase(&mut self, core: usize, state: CoreState, until: SimTime) {
        let cursor = self.cores[core].cursor;
        if until <= cursor {
            return;
        }
        self.accrue(core, state, cursor, until);
        self.cores[core].cursor = until;
    }

    /// Accrues the open gap `[cursor, now]` to the core's gap state.
    /// Call when the core re-enters execution after idling, parking or
    /// stalling.
    pub fn flush(&mut self, core: usize, now: SimTime) {
        let gap = self.cores[core].gap;
        self.phase(core, gap, now);
    }

    /// Sets the state accrued for the core's current open interval.
    pub fn set_gap(&mut self, core: usize, state: CoreState) {
        self.cores[core].gap = state;
    }

    /// The core's current gap state.
    pub fn gap(&self, core: usize) -> CoreState {
        self.cores[core].gap
    }

    /// Closes every core's tail gap at the window end and freezes the
    /// tilings into a report. In debug builds, asserts the tiling
    /// invariant: each core's state durations sum to the window
    /// exactly.
    pub fn finish(mut self, queues: Vec<QueueReport>, frame_wait_ns: u64) -> ProfileReport {
        let w_end = self.w_end;
        for c in 0..self.cores.len() {
            self.flush(c, w_end);
        }
        let window = self.w_end.since(self.w_start);
        let cores: Vec<CoreReport> = self
            .cores
            .into_iter()
            .map(|slot| {
                let mut states = [0u64; NUM_STATES];
                for tile in &slot.tiles {
                    for (acc, v) in states.iter_mut().zip(tile) {
                        *acc += v;
                    }
                }
                debug_assert_eq!(
                    states.iter().sum::<u64>(),
                    window.as_nanos(),
                    "core `{}` tiling must sum to the measurement window",
                    slot.label
                );
                CoreReport {
                    label: slot.label,
                    is_worker: slot.is_worker,
                    states,
                    tiles: slot.tiles,
                }
            })
            .collect();
        ProfileReport {
            window,
            w_start: self.w_start,
            flame_windows: self.flame_windows,
            cores,
            queues,
            frame_wait_ns,
        }
    }
}

/// Depth / wait instrumentation of one queue, measurement-window
/// scoped. Two usage modes:
///
/// - **FIFO** ([`QueueProbe::enqueue`] / [`QueueProbe::dequeue`]): the
///   probe keeps enqueue stamps and derives each element's wait at
///   dequeue. Valid for strictly FIFO queues.
/// - **Tracked** ([`QueueProbe::inc`] / [`QueueProbe::dec`] +
///   [`QueueProbe::wait`]): depth is counted and waits are reported by
///   the caller — for queues drained out of order (hardware send
///   queues, whose residence is known analytically at post time).
pub struct QueueProbe {
    name: String,
    w_start: SimTime,
    w_end: SimTime,
    stamps: VecDeque<SimTime>,
    depth: u64,
    max_depth: u64,
    /// Depth integral bookmark (clamped monotone).
    last: SimTime,
    /// ns·elements accumulated inside the window.
    depth_integral: u128,
    arrivals: u64,
    departures: u64,
    wait_sum_ns: u128,
    wait_hist: Histogram,
}

impl QueueProbe {
    /// Creates a probe scoped to the measurement window.
    pub fn new(name: String, w_start: SimTime, w_end: SimTime) -> QueueProbe {
        QueueProbe {
            name,
            w_start,
            w_end,
            stamps: VecDeque::new(),
            depth: 0,
            max_depth: 0,
            last: SimTime::ZERO,
            depth_integral: 0,
            arrivals: 0,
            departures: 0,
            wait_sum_ns: 0,
            wait_hist: Histogram::new(),
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.w_start && t < self.w_end
    }

    /// Integrates the depth held since the last change over the part of
    /// `[last, now]` inside the window.
    fn advance(&mut self, now: SimTime) {
        let a = self.last.max(self.w_start);
        let b = now.min(self.w_end);
        if b > a {
            self.depth_integral += self.depth as u128 * b.since(a).as_nanos() as u128;
        }
        self.last = self.last.max(now);
    }

    /// FIFO mode: an element entered the queue.
    pub fn enqueue(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.stamps.push_back(now);
        if self.in_window(now) {
            self.arrivals += 1;
        }
        self.depth
    }

    /// FIFO mode: the head element left the queue; its wait is derived
    /// from the stored enqueue stamp.
    pub fn dequeue(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        if let Some(at) = self.stamps.pop_front() {
            self.depth = self.depth.saturating_sub(1);
            if self.in_window(now) {
                self.departures += 1;
                let w = now.saturating_since(at).as_nanos();
                self.wait_sum_ns += w as u128;
                self.wait_hist.record(w);
            }
        }
        self.depth
    }

    /// Tracked mode: depth grew by one (wait reported separately).
    pub fn inc(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        if self.in_window(now) {
            self.arrivals += 1;
        }
        self.depth
    }

    /// Tracked mode: depth shrank by one.
    pub fn dec(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        self.depth = self.depth.saturating_sub(1);
        if self.in_window(now) {
            self.departures += 1;
        }
        self.depth
    }

    /// Tracked mode: an element that entered at `at` will reside in the
    /// queue for `wait` (known analytically at post time).
    pub fn wait(&mut self, at: SimTime, wait: SimDuration) {
        if self.in_window(at) {
            self.wait_sum_ns += wait.as_nanos() as u128;
            self.wait_hist.record(wait.as_nanos());
        }
    }

    /// Current depth.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Freezes the probe into a report.
    pub fn report(&self) -> QueueReport {
        let win_ns = self.w_end.since(self.w_start).as_nanos();
        let mean_depth = if win_ns > 0 {
            self.depth_integral as f64 / win_ns as f64
        } else {
            0.0
        };
        let arrival_rate_hz = if win_ns > 0 {
            self.arrivals as f64 / (win_ns as f64 / 1e9)
        } else {
            0.0
        };
        let wait_samples = self.wait_hist.count();
        let mean_wait_ns = if wait_samples > 0 {
            self.wait_sum_ns as f64 / wait_samples as f64
        } else {
            0.0
        };
        // Little's law: L = λW. The predicted mean depth from arrival
        // rate × mean wait against the directly integrated depth; the
        // consistency score is the smaller ratio of the two (1.0 =
        // books balance perfectly). Near-empty queues score 1.0
        // vacuously — there is nothing to cross-check.
        let predicted = arrival_rate_hz * (mean_wait_ns / 1e9);
        let littles_consistency = if mean_depth < 1e-3 && predicted < 1e-3 {
            1.0
        } else if mean_depth <= 0.0 || predicted <= 0.0 {
            0.0
        } else {
            (mean_depth / predicted).min(predicted / mean_depth)
        };
        QueueReport {
            name: self.name.clone(),
            arrivals: self.arrivals,
            departures: self.departures,
            max_depth: self.max_depth,
            mean_depth,
            arrival_rate_hz,
            mean_wait_ns,
            wait_p50_ns: self.wait_hist.percentile(50.0),
            wait_p99_ns: self.wait_hist.percentile(99.0),
            wait_samples,
            littles_consistency,
        }
    }
}

/// One queue's measurement-window summary.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Queue name (matches its depth-gauge name minus the suffix).
    pub name: String,
    /// Elements entering the queue inside the window.
    pub arrivals: u64,
    /// Elements leaving the queue inside the window.
    pub departures: u64,
    /// Peak depth observed (whole run).
    pub max_depth: u64,
    /// Time-averaged depth over the window (the L of Little's law).
    pub mean_depth: f64,
    /// Arrival rate over the window (the λ).
    pub arrival_rate_hz: f64,
    /// Mean per-element wait (the W).
    pub mean_wait_ns: f64,
    /// Median wait.
    pub wait_p50_ns: u64,
    /// Tail wait.
    pub wait_p99_ns: u64,
    /// Waits sampled inside the window.
    pub wait_samples: u64,
    /// `min(L/λW, λW/L)` — 1.0 when the queue's books balance.
    pub littles_consistency: f64,
}

/// One core's tiled timeline.
#[derive(Debug, Clone)]
pub struct CoreReport {
    /// Display label (`dispatcher`, `worker0`, …).
    pub label: String,
    /// Counts toward worker aggregates.
    pub is_worker: bool,
    /// ns per state over the whole window (sums to the window exactly).
    pub states: [u64; NUM_STATES],
    /// ns per state per flame sub-window (each row sums to its
    /// sub-window).
    pub tiles: Vec<[u64; NUM_STATES]>,
}

impl CoreReport {
    /// ns accrued to `state` over the window.
    pub fn ns(&self, state: CoreState) -> u64 {
        self.states[state.idx()]
    }

    /// Total tiled ns (equals the window by the tiling invariant).
    pub fn total_ns(&self) -> u64 {
        self.states.iter().sum()
    }

    /// Fraction of the core's time in `state`.
    pub fn fraction(&self, state: CoreState) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.ns(state) as f64 / total as f64
        }
    }
}

/// The profiler's end-of-run report: per-core tilings plus the queueing
/// observatory.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Measurement window length.
    pub window: SimDuration,
    /// Window start (virtual time).
    pub w_start: SimTime,
    /// Flame sub-windows per core.
    pub flame_windows: usize,
    /// Per-core tilings, dispatcher first.
    pub cores: Vec<CoreReport>,
    /// Per-queue summaries, fixed registration order.
    pub queues: Vec<QueueReport>,
    /// Window-clamped ns workers spent waiting for a free frame
    /// (`fetch_wait` minus this is the QP-stall share — the part the
    /// legacy `spin_ns` counter also books).
    pub frame_wait_ns: u64,
}

impl ProfileReport {
    /// Fraction of worker-core time burned in spin-class states (busy
    /// spins, TX-completion spins, QP-stall pauses — the same set the
    /// legacy `spin_ns` counter books), over the *tiled* worker time.
    /// Unlike the legacy ratio this denominator is proven by the tiling
    /// invariant rather than assumed.
    pub fn worker_spin_fraction(&self) -> f64 {
        let mut spin = 0u64;
        let mut total = 0u64;
        for c in self.cores.iter().filter(|c| c.is_worker) {
            spin += c.ns(CoreState::Spin) + c.ns(CoreState::TxWait) + c.ns(CoreState::FetchWait);
            total += c.total_ns();
        }
        let spin = spin.saturating_sub(self.frame_wait_ns);
        if total == 0 {
            0.0
        } else {
            spin as f64 / total as f64
        }
    }

    /// Folded-stack flamegraph text: one line per
    /// core × state × sub-window, weighted in nanoseconds —
    /// `speedscope flame.folded` or
    /// `inferno-flamegraph < flame.folded > flame.svg` render it
    /// directly.
    pub fn folded(&self) -> String {
        let mut out = String::with_capacity(4096);
        for core in &self.cores {
            for state in CoreState::ALL {
                for (k, tile) in core.tiles.iter().enumerate() {
                    let ns = tile[state.idx()];
                    if ns > 0 {
                        let _ = writeln!(out, "{};{};w{} {}", core.label, state.name(), k, ns);
                    }
                }
            }
        }
        out
    }

    /// Perfetto events for the per-core state tracks: each core is a
    /// thread under the profiler's synthetic process, each sub-window
    /// is tiled by one `"X"` span per non-empty state (states laid out
    /// in [`CoreState::ALL`] order inside the sub-window, so each track
    /// is gap-free exactly like the underlying tiling).
    pub fn perfetto_events(&self) -> Vec<String> {
        let pid = PERFETTO_PROFILE_PID;
        let mut evs = Vec::new();
        evs.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"core profiler\"}}}}"
        ));
        for (tid, core) in self.cores.iter().enumerate() {
            evs.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                core.label
            ));
            let win = self.window.as_nanos();
            let nb = self.flame_windows as u64;
            for (k, tile) in core.tiles.iter().enumerate() {
                // Sub-window origin, exact to the accrual boundaries.
                let base = self.w_start.as_nanos() + (win as u128 * k as u128 / nb as u128) as u64;
                let mut off = 0u64;
                for state in CoreState::ALL {
                    let ns = tile[state.idx()];
                    if ns == 0 {
                        continue;
                    }
                    evs.push(format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\
                         \"dur\":{:.3},\"name\":\"{}\"}}",
                        (base + off) as f64 / 1e3,
                        ns as f64 / 1e3,
                        state.name()
                    ));
                    off += ns;
                }
            }
        }
        evs
    }

    /// Deterministic JSON object (embedded under `"profile"` in the
    /// per-run JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"window_ns\":{},\"flame_windows\":{},\"worker_spin_fraction\":{:.6},\
             \"frame_wait_ns\":{},\"cores\":[",
            self.window.as_nanos(),
            self.flame_windows,
            self.worker_spin_fraction(),
            self.frame_wait_ns
        );
        for (i, core) in self.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"total_ns\":{},\"states\":{{",
                core.label,
                core.total_ns()
            );
            for (j, state) in CoreState::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", state.name(), core.ns(*state));
            }
            out.push_str("}}");
        }
        out.push_str("],\"queues\":[");
        for (i, q) in self.queues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"arrivals\":{},\"departures\":{},\"max_depth\":{},\
                 \"mean_depth\":{:.6},\"arrival_rate_hz\":{:.3},\"mean_wait_ns\":{:.3},\
                 \"wait_p50_ns\":{},\"wait_p99_ns\":{},\"wait_samples\":{},\
                 \"littles_consistency\":{:.6}}}",
                q.name,
                q.arrivals,
                q.departures,
                q.max_depth,
                q.mean_depth,
                q.arrival_rate_hz,
                q.mean_wait_ns,
                q.wait_p50_ns,
                q.wait_p99_ns,
                q.wait_samples,
                q.littles_consistency
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn tiling_is_exhaustive_and_exact() {
        let cfg = ProfileConfig { flame_windows: 4 };
        let mut p = CoreProfiler::new(t(1_000), t(9_000), &cfg);
        let c = p.add_core("worker0".into(), true);
        // Pre-window activity clamps to nothing.
        p.phase(c, CoreState::Work, t(500));
        // Straddles the window start.
        p.phase(c, CoreState::Work, t(2_000));
        // Open gap: park until 4 µs.
        p.set_gap(c, CoreState::Park);
        p.flush(c, t(4_000));
        // Backwards timestamp (worker clock skew): accrues nothing.
        p.phase(c, CoreState::Spin, t(3_500));
        p.phase(c, CoreState::Spin, t(6_000));
        // Runs past the window end; clamped.
        p.phase(c, CoreState::Work, t(12_000));
        let rep = p.finish(Vec::new(), 0);
        let core = &rep.cores[0];
        assert_eq!(core.total_ns(), 8_000);
        assert_eq!(core.ns(CoreState::Work), 1_000 + 3_000);
        assert_eq!(core.ns(CoreState::Park), 2_000);
        assert_eq!(core.ns(CoreState::Spin), 2_000);
        assert_eq!(core.ns(CoreState::Idle), 0);
        // Every flame sub-window tiles too.
        for tile in &core.tiles {
            assert_eq!(tile.iter().sum::<u64>(), 2_000);
        }
    }

    #[test]
    fn untouched_cores_are_all_idle() {
        let mut p = CoreProfiler::new(t(0), t(5_000), &ProfileConfig::default());
        p.add_core("dispatcher".into(), false);
        let rep = p.finish(Vec::new(), 0);
        assert_eq!(rep.cores[0].ns(CoreState::Idle), 5_000);
        assert_eq!(rep.cores[0].total_ns(), 5_000);
    }

    #[test]
    fn flame_subwindows_split_accruals_exactly() {
        let cfg = ProfileConfig { flame_windows: 3 };
        let mut p = CoreProfiler::new(t(0), t(10), &cfg);
        let c = p.add_core("w".into(), true);
        // One accrual spanning all three uneven sub-windows
        // ([0,3), [3,6), [6,10)).
        p.phase(c, CoreState::Work, t(10));
        let rep = p.finish(Vec::new(), 0);
        let tiles = &rep.cores[0].tiles;
        assert_eq!(tiles[0][CoreState::Work.idx()], 3);
        assert_eq!(tiles[1][CoreState::Work.idx()], 3);
        assert_eq!(tiles[2][CoreState::Work.idx()], 4);
    }

    #[test]
    fn fifo_probe_balances_littles_law() {
        // Deterministic D/D/1: arrivals every 100 ns, service 50 ns.
        let mut q = QueueProbe::new("q".into(), t(0), t(100_000));
        let mut at = 0u64;
        while at < 100_000 {
            q.enqueue(t(at));
            q.dequeue(t(at + 50));
            at += 100;
        }
        let r = q.report();
        assert_eq!(r.arrivals, 1_000);
        assert_eq!(r.wait_samples, 1_000);
        assert!((r.mean_wait_ns - 50.0).abs() < 3.0, "{}", r.mean_wait_ns);
        assert!(
            r.littles_consistency > 0.95,
            "consistency {}",
            r.littles_consistency
        );
    }

    #[test]
    fn near_empty_probe_scores_vacuously() {
        let q = QueueProbe::new("q".into(), t(0), t(1_000));
        let r = q.report();
        assert_eq!(r.littles_consistency, 1.0);
        assert_eq!(r.wait_samples, 0);
    }

    #[test]
    fn tracked_probe_integrates_depth() {
        let mut q = QueueProbe::new("sq".into(), t(0), t(1_000));
        q.inc(t(0));
        q.wait(t(0), SimDuration::from_nanos(400));
        q.inc(t(200));
        q.wait(t(200), SimDuration::from_nanos(300));
        q.dec(t(400));
        q.dec(t(500));
        let r = q.report();
        // Depth 1 over [0,200), 2 over [200,400), 1 over [400,500).
        let expect = (200.0 + 2.0 * 200.0 + 100.0) / 1_000.0;
        assert!((r.mean_depth - expect).abs() < 1e-9);
        assert_eq!(r.max_depth, 2);
        assert_eq!(r.departures, 2);
    }

    #[test]
    fn report_serialisations_are_wellformed() {
        let cfg = ProfileConfig { flame_windows: 2 };
        let mut p = CoreProfiler::new(t(0), t(1_000), &cfg);
        let d = p.add_core("dispatcher".into(), false);
        let w = p.add_core("worker0".into(), true);
        p.phase(d, CoreState::Dispatch, t(600));
        p.phase(w, CoreState::Spin, t(1_000));
        let mut q = QueueProbe::new("ingress".into(), t(0), t(1_000));
        q.enqueue(t(10));
        q.dequeue(t(20));
        let rep = p.finish(vec![q.report()], 0);
        assert!((rep.worker_spin_fraction() - 1.0).abs() < 1e-9);

        let json = rep.to_json();
        assert!(json.starts_with("{\"window_ns\":1000,"));
        assert!(json.contains("\"label\":\"dispatcher\""));
        assert!(json.contains("\"littles_consistency\""));

        let folded = rep.folded();
        assert!(folded.contains("dispatcher;dispatch;w0 500"));
        assert!(folded.contains("worker0;spin;w1 500"));

        let evs = rep.perfetto_events();
        assert!(evs.iter().any(|e| e.contains("\"thread_name\"")));
        assert!(evs.iter().any(|e| e.contains("\"name\":\"spin\"")));
    }
}
