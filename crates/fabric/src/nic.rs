//! The RDMA NIC model.
//!
//! A [`RdmaNic`] owns the two directions of the compute↔memory link and
//! a set of queue pairs. Posting a verb walks the request through every
//! FIFO resource analytically — doorbell, shared WQE engine, outbound
//! wire, remote NIC, inbound wire, local DMA — and returns the completion
//! time. Because each resource is first-come-first-served, computing
//! completion times at post time in event order is exact.
//!
//! Two behaviours matter for the paper's results:
//!
//! - **Bounded send queues.** `post` fails with [`PostError::QpFull`]
//!   when a QP already has `qp_depth` outstanding requests; the Adios
//!   page fault handler must then pause (§5.2, the Memcached ceiling).
//! - **Per-QP outstanding counts** are exposed so the dispatcher can run
//!   PF-aware dispatching (Algorithm 1): "the user-level scheduler
//!   directly accesses the kernel-level QP information exposed by the
//!   unikernel".

use desim::SimTime;

use crate::link::Link;
use crate::memnode::MemNode;
use crate::params::FabricParams;

/// Identifies a queue pair on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpId(pub u32);

/// Identifies a completion queue on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// One-sided verbs supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Fetch a page from the memory node (page-fault path).
    Read,
    /// Write a dirty page back to the memory node (reclaim path).
    Write,
}

/// Why a post was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP's send queue is at `qp_depth` outstanding requests.
    QpFull,
}

/// A successfully posted work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// QP the work request was posted on.
    pub qp: QpId,
    /// CQ the completion will be raised on (the QP's associated CQ).
    pub cq: CqId,
    /// Simulated instant the shared WQE engine dispatched the work
    /// request (doorbell + engine queueing paid; wire not yet). The
    /// span layer splits each fetch into `nic_queue` (post→issue) and
    /// `wire` (issue→completion) at this instant.
    pub issued_at: SimTime,
    /// Simulated instant the CQE becomes pollable.
    pub done_at: SimTime,
}

#[derive(Debug, Clone)]
struct Qp {
    outstanding: u32,
    cq: CqId,
}

/// Aggregate QP-occupancy accounting at one instant, for computing
/// time-weighted mean occupancy over a measurement window (diff two
/// snapshots and divide by the window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Time integral of total outstanding work requests, in WR × ns.
    pub weighted_ns: u128,
    /// Maximum total outstanding observed since NIC creation.
    pub max: u32,
}

/// The compute-node RNIC together with the RDMA link to the memory node.
#[derive(Debug, Clone)]
pub struct RdmaNic {
    params: FabricParams,
    engine_free: SimTime,
    qps: Vec<Qp>,
    /// Compute → memory direction (READ requests, WRITE data).
    to_remote: Link,
    /// Memory → compute direction (READ data, WRITE acks).
    from_remote: Link,
    /// Size of the control messages (READ request / WRITE ack).
    ctrl_bytes: u32,
    posted_reads: u64,
    posted_writes: u64,
    /// Time integral of total outstanding WRs (WR × ns), up to
    /// `occ_since`.
    occ_weighted: u128,
    occ_since: SimTime,
    occ_max: u32,
}

impl RdmaNic {
    /// Creates a NIC with `num_qps` queue pairs; QP *i* initially
    /// completes into CQ *i*.
    pub fn new(params: FabricParams, num_qps: u32) -> RdmaNic {
        RdmaNic {
            to_remote: Link::new(&params),
            from_remote: Link::new(&params),
            qps: (0..num_qps)
                .map(|i| Qp {
                    outstanding: 0,
                    cq: CqId(i),
                })
                .collect(),
            engine_free: SimTime::ZERO,
            ctrl_bytes: 16,
            posted_reads: 0,
            posted_writes: 0,
            occ_weighted: 0,
            occ_since: SimTime::ZERO,
            occ_max: 0,
            params,
        }
    }

    /// Accrues occupancy-time up to `now`. Non-monotone timestamps
    /// (worker virtual clocks run slightly ahead of the event clock)
    /// are tolerated by never accruing negative intervals.
    fn advance_occupancy(&mut self, now: SimTime) {
        if now > self.occ_since {
            let held = self.total_outstanding() as u128;
            self.occ_weighted += held * now.since(self.occ_since).as_nanos() as u128;
            self.occ_since = now;
        }
    }

    /// Re-associates a QP's completions with a different CQ.
    ///
    /// This is the CQ/QP semantic Adios leverages for polling delegation
    /// (§3.4): a CQ can manage multiple QPs.
    pub fn associate_cq(&mut self, qp: QpId, cq: CqId) {
        self.qps[qp.0 as usize].cq = cq;
    }

    /// Posts a one-sided verb of `bytes` payload on `qp` at `now`.
    ///
    /// On success, the QP's outstanding count rises by one; the caller
    /// must call [`RdmaNic::on_cqe`] when simulated time reaches
    /// `done_at` (i.e. when it processes the completion event).
    pub fn post(
        &mut self,
        now: SimTime,
        qp: QpId,
        verb: Verb,
        page: u64,
        bytes: u32,
        mem: &mut MemNode,
    ) -> Result<Completion, PostError> {
        if self.qps[qp.0 as usize].outstanding >= self.params.qp_depth {
            return Err(PostError::QpFull);
        }
        self.advance_occupancy(now);
        let q = &mut self.qps[qp.0 as usize];
        q.outstanding += 1;
        let cq = q.cq;
        self.occ_max = self.occ_max.max(self.total_outstanding());

        // Doorbell + shared WQE engine (single FIFO server).
        let ready = now + self.params.doorbell;
        self.engine_free = self.engine_free.max(ready) + self.params.nic_engine;
        let dispatched = self.engine_free;

        let done_at = match verb {
            Verb::Read => {
                self.posted_reads += 1;
                let req_at_remote = self.to_remote.transmit(dispatched, self.ctrl_bytes);
                mem.serve_read(page);
                let data_ready = req_at_remote + self.params.remote_processing;
                let data_here = self.from_remote.transmit(data_ready, bytes);
                data_here + self.params.local_dma
            }
            Verb::Write => {
                self.posted_writes += 1;
                let data_at_remote = self.to_remote.transmit(dispatched, bytes);
                mem.serve_write(page);
                let ack_ready = data_at_remote + self.params.remote_processing;
                let ack_here = self.from_remote.transmit(ack_ready, self.ctrl_bytes);
                ack_here + self.params.local_dma
            }
        };
        Ok(Completion {
            qp,
            cq,
            issued_at: dispatched,
            done_at,
        })
    }

    /// Consumes a completion at `now`: decrements the QP's outstanding
    /// count and accrues occupancy-time.
    ///
    /// Must be called in completion-time order (the runtime processes
    /// completion events through its time-ordered queue, which
    /// guarantees this).
    ///
    /// # Panics
    ///
    /// Panics if the QP has no outstanding request.
    pub fn on_cqe(&mut self, now: SimTime, qp: QpId) {
        self.advance_occupancy(now);
        let q = &mut self.qps[qp.0 as usize];
        assert!(q.outstanding > 0, "CQE for idle QP {qp:?}");
        q.outstanding -= 1;
    }

    /// Takes an occupancy snapshot at `now` (see [`OccupancySnapshot`]).
    pub fn occupancy(&self, now: SimTime) -> OccupancySnapshot {
        let mut weighted = self.occ_weighted;
        if now > self.occ_since {
            weighted +=
                self.total_outstanding() as u128 * now.since(self.occ_since).as_nanos() as u128;
        }
        OccupancySnapshot {
            weighted_ns: weighted,
            max: self.occ_max,
        }
    }

    /// Outstanding work requests on `qp` (the PF-aware dispatch signal).
    pub fn outstanding(&self, qp: QpId) -> u32 {
        self.qps[qp.0 as usize].outstanding
    }

    /// Total outstanding work requests across all QPs.
    pub fn total_outstanding(&self) -> u32 {
        self.qps.iter().map(|q| q.outstanding).sum()
    }

    /// The memory→compute direction (carries fetched pages); its
    /// utilisation is "RDMA link utilisation" in Figures 2e / 7e.
    pub fn data_link(&self) -> &Link {
        &self.from_remote
    }

    /// The compute→memory direction (carries write-backs + requests).
    pub fn ctrl_link(&self) -> &Link {
        &self.to_remote
    }

    /// READ work requests posted so far.
    pub fn posted_reads(&self) -> u64 {
        self.posted_reads
    }

    /// WRITE work requests posted so far.
    pub fn posted_writes(&self) -> u64 {
        self.posted_writes
    }

    /// Number of queue pairs.
    pub fn num_qps(&self) -> u32 {
        self.qps.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn setup() -> (RdmaNic, MemNode) {
        (
            RdmaNic::new(FabricParams::default(), 8),
            MemNode::new(1 << 20, 4096),
        )
    }

    #[test]
    fn unloaded_read_completes_in_paper_window() {
        let (mut nic, mut mem) = setup();
        let c = nic
            .post(SimTime(0), QpId(0), Verb::Read, 7, 4096, &mut mem)
            .unwrap();
        let us = c.done_at.as_nanos() as f64 / 1000.0;
        assert!((1.9..=3.1).contains(&us), "fetch = {us} us");
        assert_eq!(c.cq, CqId(0));
        assert_eq!(mem.reads(), 1);
    }

    #[test]
    fn outstanding_tracks_posts_and_cqes() {
        let (mut nic, mut mem) = setup();
        nic.post(SimTime(0), QpId(2), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        nic.post(SimTime(0), QpId(2), Verb::Read, 1, 4096, &mut mem)
            .unwrap();
        assert_eq!(nic.outstanding(QpId(2)), 2);
        assert_eq!(nic.total_outstanding(), 2);
        nic.on_cqe(SimTime(5_000), QpId(2));
        assert_eq!(nic.outstanding(QpId(2)), 1);
    }

    #[test]
    fn qp_depth_enforced() {
        let params = FabricParams {
            qp_depth: 2,
            ..FabricParams::default()
        };
        let mut nic = RdmaNic::new(params, 1);
        let mut mem = MemNode::new(100, 4096);
        nic.post(SimTime(0), QpId(0), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        nic.post(SimTime(0), QpId(0), Verb::Read, 1, 4096, &mut mem)
            .unwrap();
        let err = nic.post(SimTime(0), QpId(0), Verb::Read, 2, 4096, &mut mem);
        assert_eq!(err, Err(PostError::QpFull));
        // A CQE frees a slot.
        nic.on_cqe(SimTime(5_000), QpId(0));
        assert!(nic
            .post(SimTime(0), QpId(0), Verb::Read, 2, 4096, &mut mem)
            .is_ok());
    }

    #[test]
    fn engine_is_shared_across_qps() {
        let (mut nic, mut mem) = setup();
        let a = nic
            .post(SimTime(0), QpId(0), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        let b = nic
            .post(SimTime(0), QpId(1), Verb::Read, 1, 4096, &mut mem)
            .unwrap();
        // Both pay engine + wire queueing; the second completes later.
        assert!(b.done_at > a.done_at);
    }

    #[test]
    fn cq_reassociation_routes_completions() {
        let (mut nic, mut mem) = setup();
        nic.associate_cq(QpId(3), CqId(0));
        let c = nic
            .post(SimTime(0), QpId(3), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        assert_eq!(c.cq, CqId(0));
        assert_eq!(c.qp, QpId(3));
    }

    #[test]
    fn writes_load_outbound_direction() {
        let (mut nic, mut mem) = setup();
        let before_out = nic.ctrl_link().snapshot();
        let before_in = nic.data_link().snapshot();
        nic.post(SimTime(0), QpId(0), Verb::Write, 9, 4096, &mut mem)
            .unwrap();
        let d_out = nic.ctrl_link().snapshot().bytes - before_out.bytes;
        let d_in = nic.data_link().snapshot().bytes - before_in.bytes;
        assert!(d_out > 4096, "page travels outbound");
        assert!(d_in < 256, "only the ack returns");
        assert_eq!(mem.writes(), 1);
    }

    #[test]
    fn reads_load_inbound_direction() {
        let (mut nic, mut mem) = setup();
        let before = nic.data_link().snapshot();
        for p in 0..10 {
            nic.post(SimTime(0), QpId(0), Verb::Read, p, 4096, &mut mem)
                .unwrap();
        }
        let after = nic.data_link().snapshot();
        assert_eq!(after.bytes - before.bytes, 10 * (4096 + 78));
        assert_eq!(nic.posted_reads(), 10);
    }

    #[test]
    fn back_to_back_reads_pipeline_on_the_wire() {
        // With many outstanding READs, completions are spaced by the data
        // serialization time (the link is the bottleneck), demonstrating
        // the concurrency yield-based handling unlocks.
        let (mut nic, mut mem) = setup();
        let mut last = SimTime::ZERO;
        let mut gaps = Vec::new();
        for p in 0..20 {
            let c = nic
                .post(
                    SimTime(0),
                    QpId((p % 8) as u32),
                    Verb::Read,
                    p,
                    4096,
                    &mut mem,
                )
                .unwrap();
            if p > 10 {
                gaps.push(c.done_at.since(last));
            }
            last = c.done_at;
        }
        for g in gaps {
            // Bottleneck spacing: the WQE engine (400 ns) or the data
            // serialization (~334 ns), whichever binds.
            assert!(
                g <= SimDuration::from_nanos(410),
                "steady-state gap {g} should be ~ one engine slot"
            );
        }
    }

    #[test]
    fn issued_at_splits_queue_from_wire() {
        let (mut nic, mut mem) = setup();
        let a = nic
            .post(SimTime(0), QpId(0), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        // Doorbell + engine paid before dispatch; wire after.
        assert!(a.issued_at > SimTime(0));
        assert!(a.issued_at < a.done_at);
        // A second post queues behind the first in the shared engine.
        let b = nic
            .post(SimTime(0), QpId(1), Verb::Read, 1, 4096, &mut mem)
            .unwrap();
        assert!(b.issued_at > a.issued_at);
    }

    #[test]
    #[should_panic(expected = "CQE for idle QP")]
    fn spurious_cqe_panics() {
        let (mut nic, _) = setup();
        nic.on_cqe(SimTime(0), QpId(0));
    }

    #[test]
    fn occupancy_is_time_weighted() {
        let (mut nic, mut mem) = setup();
        // Two WRs held from t=0; one retires at t=1000, the other at
        // t=3000. Integral = 2*1000 + 1*2000 = 4000 WR·ns.
        nic.post(SimTime(0), QpId(0), Verb::Read, 0, 4096, &mut mem)
            .unwrap();
        nic.post(SimTime(0), QpId(1), Verb::Read, 1, 4096, &mut mem)
            .unwrap();
        nic.on_cqe(SimTime(1_000), QpId(0));
        nic.on_cqe(SimTime(3_000), QpId(1));
        let occ = nic.occupancy(SimTime(3_000));
        assert_eq!(occ.weighted_ns, 4_000);
        assert_eq!(occ.max, 2);
        // Idle afterwards: the integral stops growing.
        assert_eq!(nic.occupancy(SimTime(10_000)).weighted_ns, 4_000);
    }
}
