//! The RDMA NIC model.
//!
//! A [`RdmaNic`] owns the two directions of the compute↔memory link and
//! a set of queue pairs. Posting a verb walks the request through every
//! FIFO resource analytically — doorbell, shared WQE engine, outbound
//! wire, remote NIC, inbound wire, local DMA — and returns the completion
//! time. Because each resource is first-come-first-served, computing
//! completion times at post time in event order is exact.
//!
//! Two behaviours matter for the paper's results:
//!
//! - **Bounded send queues.** `post` fails with [`PostError::QpFull`]
//!   when a QP already has `qp_depth` outstanding requests; the Adios
//!   page fault handler must then pause (§5.2, the Memcached ceiling).
//! - **Per-QP outstanding counts** are exposed so the dispatcher can run
//!   PF-aware dispatching (Algorithm 1): "the user-level scheduler
//!   directly accesses the kernel-level QP information exposed by the
//!   unikernel".
//!
//! With an armed [`FaultPlane`], `post` additionally models the RC
//! transport: a lost request or response packet goes unacknowledged
//! until the retransmission timeout fires, the engine retransmits with
//! exponential backoff, and after `rc_retries` failed retransmissions
//! the work request completes with a fatal CQE error
//! ([`CompletionStatus::RetryExceeded`]). Retransmissions are generated
//! by the NIC's transport engine an RTO after the original send, so
//! they bypass the WQE-engine and link FIFO heads (which were already
//! charged at post time) and only account wasted wire bytes.

use std::rc::Rc;

use desim::{SimDuration, SimTime};
use faults::{FaultPlane, NodeHealth};

use crate::link::Link;
use crate::memnode::MemNode;
use crate::params::FabricParams;

/// Identifies a queue pair on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpId(pub u32);

/// Identifies a completion queue on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// One-sided verbs supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Fetch a page from the memory node (page-fault path).
    Read,
    /// Write a dirty page back to the memory node (reclaim path).
    Write,
}

/// Why a post was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The QP's send queue is at `qp_depth` outstanding requests.
    QpFull,
}

/// How a work request's CQE reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The transfer completed.
    Success,
    /// The RC retry budget was exhausted: the original send and all
    /// `rc_retries` retransmissions went unacknowledged.
    RetryExceeded,
    /// The transfer was delivered but the CQE carries a fatal error
    /// (remote access/protection fault, WR flushed).
    RemoteError,
}

/// A successfully posted work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// QP the work request was posted on.
    pub qp: QpId,
    /// CQ the completion will be raised on (the QP's associated CQ).
    pub cq: CqId,
    /// Simulated instant the shared WQE engine dispatched the work
    /// request (doorbell + engine queueing paid; wire not yet). The
    /// span layer splits each fetch into `nic_queue` (post→issue) and
    /// `wire` (issue→completion) at this instant.
    pub issued_at: SimTime,
    /// Simulated instant the *final* transmission attempt went on the
    /// wire. Equals `issued_at` unless the transport retransmitted;
    /// the span layer renders `[issued_at, wire_start]` as the
    /// retransmission phase.
    pub wire_start: SimTime,
    /// Simulated instant the CQE becomes pollable.
    pub done_at: SimTime,
    /// How the CQE reports (errors are still CQEs: the caller must
    /// consume them with [`RdmaNic::on_cqe`] at `done_at`).
    pub status: CompletionStatus,
    /// RC retransmissions this WR needed (0 on a lossless fabric).
    pub retransmits: u32,
}

impl Completion {
    /// Whether the CQE reports a fatal error.
    pub fn is_error(&self) -> bool {
        self.status != CompletionStatus::Success
    }

    /// Queueing wait in the shared WQE engine: post instant →
    /// dispatch. Zero when the engine was idle.
    pub fn sq_wait(&self, posted_at: SimTime) -> SimDuration {
        self.issued_at.saturating_since(posted_at)
    }

    /// Full send-queue slot residence: post instant → CQE pollable.
    /// The slot itself frees when the CQE is consumed with
    /// [`RdmaNic::on_cqe`], which simulations do at `done_at` — so this
    /// is the per-element wait the queueing observatory records for SQ
    /// occupancy.
    pub fn slot_residence(&self, posted_at: SimTime) -> SimDuration {
        self.done_at.saturating_since(posted_at)
    }
}

#[derive(Debug, Clone)]
struct Qp {
    outstanding: u32,
    cq: CqId,
}

/// Aggregate QP-occupancy accounting at one instant, for computing
/// time-weighted mean occupancy over a measurement window (diff two
/// snapshots and divide by the window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Time integral of total outstanding work requests, in WR × ns.
    pub weighted_ns: u128,
    /// Maximum total outstanding observed since NIC creation.
    pub max: u32,
}

/// The compute-node RNIC together with the RDMA link to the memory node.
#[derive(Debug, Clone)]
pub struct RdmaNic {
    /// Shared, immutable cost constants: the runtime builds one NIC
    /// rail per memnode shard, and all rails reference one allocation
    /// instead of each carrying a private copy.
    params: Rc<FabricParams>,
    engine_free: SimTime,
    qps: Vec<Qp>,
    /// Compute → memory direction (READ requests, WRITE data).
    to_remote: Link,
    /// Memory → compute direction (READ data, WRITE acks).
    from_remote: Link,
    /// Size of the control messages (READ request / WRITE ack).
    ctrl_bytes: u32,
    posted_reads: u64,
    posted_writes: u64,
    /// Time integral of total outstanding WRs (WR × ns), up to
    /// `occ_since`.
    occ_weighted: u128,
    occ_since: SimTime,
    occ_max: u32,
    /// Smoothed round-trip time in ns (RFC 6298), fed from
    /// unretransmitted completions when `params.adaptive_rto` is set.
    srtt_ns: f64,
    /// Round-trip time variance in ns (RFC 6298).
    rttvar_ns: f64,
    /// RTT samples folded into `srtt_ns` so far; zero means the
    /// adaptive timer has no estimate and falls back to `params.rto`.
    rtt_samples: u64,
}

/// Transport timer granularity: the adaptive RTO never arms finer than
/// this (RFC 6298's clock-granularity term `G`).
const RTO_GRANULARITY_NS: u64 = 1_000;

impl RdmaNic {
    /// Creates a NIC with `num_qps` queue pairs; QP *i* initially
    /// completes into CQ *i*.
    ///
    /// Accepts either owned [`FabricParams`] or a pre-shared
    /// `Rc<FabricParams>`; multiple rails built from the same `Rc`
    /// share one parameter allocation.
    pub fn new(params: impl Into<Rc<FabricParams>>, num_qps: u32) -> RdmaNic {
        let params = params.into();
        RdmaNic {
            to_remote: Link::new(&params),
            from_remote: Link::new(&params),
            qps: (0..num_qps)
                .map(|i| Qp {
                    outstanding: 0,
                    cq: CqId(i),
                })
                .collect(),
            engine_free: SimTime::ZERO,
            ctrl_bytes: 16,
            posted_reads: 0,
            posted_writes: 0,
            occ_weighted: 0,
            occ_since: SimTime::ZERO,
            occ_max: 0,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rtt_samples: 0,
            params,
        }
    }

    /// Accrues occupancy-time up to `now`. Non-monotone timestamps
    /// (worker virtual clocks run slightly ahead of the event clock)
    /// are tolerated by never accruing negative intervals.
    fn advance_occupancy(&mut self, now: SimTime) {
        if now > self.occ_since {
            let held = self.total_outstanding() as u128;
            self.occ_weighted += held * now.since(self.occ_since).as_nanos() as u128;
            self.occ_since = now;
        }
    }

    /// Re-associates a QP's completions with a different CQ.
    ///
    /// This is the CQ/QP semantic Adios leverages for polling delegation
    /// (§3.4): a CQ can manage multiple QPs.
    pub fn associate_cq(&mut self, qp: QpId, cq: CqId) {
        self.qps[qp.0 as usize].cq = cq;
    }

    /// The backed-off RTO armed after transmission attempt `attempt`
    /// (0 = the original send): base RTO doubling per retry, capped.
    ///
    /// The base is `params.rto` (fixed firmware ladder), or — with
    /// [`FabricParams::adaptive_rto`] on and at least one RTT sample —
    /// `SRTT + max(G, 4·RTTVAR)` per RFC 6298, so a warm transport
    /// detects a lost microsecond-scale fetch in a few µs instead of
    /// the 16 µs minimum the fixed timer imposes.
    fn rto_backoff(&self, attempt: u32) -> SimDuration {
        let base = if self.params.adaptive_rto && self.rtt_samples > 0 {
            let rto = self.srtt_ns + (4.0 * self.rttvar_ns).max(RTO_GRANULARITY_NS as f64);
            (rto.round() as u64).max(RTO_GRANULARITY_NS)
        } else {
            self.params.rto.as_nanos()
        };
        let ns = base.saturating_mul(1u64 << attempt.min(16));
        SimDuration::from_nanos(ns.min(self.params.rto_cap.as_nanos()).max(1))
    }

    /// Folds one RTT measurement into SRTT/RTTVAR (RFC 6298 §2, with
    /// the standard α = 1/8, β = 1/4 gains). Only unretransmitted
    /// exchanges are sampled (Karn's algorithm), which callers enforce.
    fn rtt_sample(&mut self, r: SimDuration) {
        let r = r.as_nanos() as f64;
        if self.rtt_samples == 0 {
            self.srtt_ns = r;
            self.rttvar_ns = r / 2.0;
        } else {
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - r).abs();
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * r;
        }
        self.rtt_samples += 1;
    }

    /// Smoothed RTT estimate, if the adaptive timer has one.
    pub fn srtt(&self) -> Option<SimDuration> {
        (self.rtt_samples > 0).then(|| SimDuration::from_nanos(self.srtt_ns.round() as u64))
    }

    /// RTT variance estimate, if the adaptive timer has one.
    pub fn rttvar(&self) -> Option<SimDuration> {
        (self.rtt_samples > 0).then(|| SimDuration::from_nanos(self.rttvar_ns.round() as u64))
    }

    /// The base (attempt-0, un-backed-off) RTO the NIC would arm for
    /// the next send: the RFC 6298 estimate once the adaptive timer is
    /// warm, the fixed firmware ladder value otherwise.
    pub fn current_rto(&self) -> SimDuration {
        self.rto_backoff(0)
    }

    /// Extra one-way cost a degraded link adds on top of a FIFO
    /// transmit: the slowed-down share of serialization plus added
    /// latency. Zero (exactly) on a healthy link.
    fn degrade_extra(&self, bytes: u32, pen: &faults::LinkPenalty) -> SimDuration {
        if pen.bw_factor <= 1.0 && pen.extra_latency == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let base = self.params.serialize(bytes).as_nanos() as f64;
        let slow = (base * (pen.bw_factor - 1.0)).max(0.0).round() as u64;
        SimDuration::from_nanos(slow) + pen.extra_latency
    }

    /// Full analytic one-way cost of a retransmitted packet (which
    /// bypasses the link FIFO): degraded serialization + propagation +
    /// added latency.
    fn retransmit_leg(&self, bytes: u32, pen: &faults::LinkPenalty) -> SimDuration {
        let base = self.params.serialize(bytes).as_nanos() as f64;
        let ser = (base * pen.bw_factor.max(1.0)).round() as u64;
        SimDuration::from_nanos(ser.max(1)) + self.params.propagation + pen.extra_latency
    }

    /// Posts a one-sided verb of `bytes` payload on `qp` at `now`.
    ///
    /// On success, the QP's outstanding count rises by one; the caller
    /// must call [`RdmaNic::on_cqe`] when simulated time reaches
    /// `done_at` (i.e. when it processes the completion event) — for
    /// error completions too, since errors are still CQEs.
    ///
    /// `plane` injects faults; with [`FaultPlane::inert`] the transfer
    /// timing is bit-identical to the lossless model (no rng draws, no
    /// penalties).
    #[allow(clippy::too_many_arguments)]
    pub fn post(
        &mut self,
        now: SimTime,
        qp: QpId,
        verb: Verb,
        page: u64,
        bytes: u32,
        mem: &mut MemNode,
        plane: &mut FaultPlane,
    ) -> Result<Completion, PostError> {
        if self.qps[qp.0 as usize].outstanding >= self.params.qp_depth {
            return Err(PostError::QpFull);
        }
        self.advance_occupancy(now);
        let q = &mut self.qps[qp.0 as usize];
        q.outstanding += 1;
        let cq = q.cq;
        self.occ_max = self.occ_max.max(self.total_outstanding());

        // Doorbell + shared WQE engine (single FIFO server).
        let ready = now + self.params.doorbell;
        self.engine_free = self.engine_free.max(ready) + self.params.nic_engine;
        let dispatched = self.engine_free;

        let (out_bytes, in_bytes) = match verb {
            Verb::Read => {
                self.posted_reads += 1;
                (self.ctrl_bytes, bytes)
            }
            Verb::Write => {
                self.posted_writes += 1;
                (bytes, self.ctrl_bytes)
            }
        };

        // RC transfer: each attempt sends the outbound leg, the remote
        // serves it, and the inbound leg returns. A loss anywhere means
        // no CQE — the transport waits out the (backed-off) RTO and
        // retransmits, up to the retry budget. Attempt 0 rides the
        // normal FIFO resources; retransmissions happen an RTO later in
        // transport hardware and are charged analytically (see
        // `Link::account`).
        let mut attempt: u32 = 0;
        let mut send_at = dispatched;
        let (status, done_at) = loop {
            let retx = attempt > 0;
            let out_pen = plane.link_penalty(send_at);
            let out_arrive = if retx {
                self.to_remote.account(out_bytes);
                send_at + self.retransmit_leg(out_bytes, &out_pen)
            } else {
                let arrive = self.to_remote.transmit(send_at, out_bytes);
                arrive + self.degrade_extra(out_bytes, &out_pen)
            };
            let delivered = !plane.packet_lost(send_at)
                && plane.node_health(mem.id(), out_arrive) != NodeHealth::Down;
            if delivered {
                match verb {
                    Verb::Read => mem.serve_read(page),
                    Verb::Write => mem.serve_write(page),
                }
                let stall = match plane.node_health(mem.id(), out_arrive) {
                    NodeHealth::Stalled(d) => d,
                    _ => SimDuration::ZERO,
                };
                let resp_ready = out_arrive + self.params.remote_processing + stall;
                let in_pen = plane.link_penalty(resp_ready);
                let resp_here = if retx {
                    self.from_remote.account(in_bytes);
                    resp_ready + self.retransmit_leg(in_bytes, &in_pen)
                } else {
                    let arrive = self.from_remote.transmit(resp_ready, in_bytes);
                    arrive + self.degrade_extra(in_bytes, &in_pen)
                };
                if !plane.packet_lost(resp_ready) {
                    let done = resp_here + self.params.local_dma;
                    let status = if plane.cqe_error(done) {
                        CompletionStatus::RemoteError
                    } else {
                        CompletionStatus::Success
                    };
                    break (status, done);
                }
            }
            // No ACK: wait out the RTO armed at send time, then either
            // retransmit or give up with a fatal CQE.
            let timeout_at = send_at + self.rto_backoff(attempt);
            if attempt >= self.params.rc_retries {
                break (CompletionStatus::RetryExceeded, timeout_at);
            }
            send_at = timeout_at;
            attempt += 1;
        };
        // Feed the adaptive timer from delivered, unretransmitted
        // exchanges only (Karn's algorithm): `done_at - send_at` is the
        // true wire round-trip of the attempt that produced the CQE.
        if self.params.adaptive_rto && attempt == 0 && status != CompletionStatus::RetryExceeded {
            self.rtt_sample(done_at.since(send_at));
        }
        Ok(Completion {
            qp,
            cq,
            issued_at: dispatched,
            wire_start: send_at,
            done_at,
            status,
            retransmits: attempt,
        })
    }

    /// Consumes a completion at `now`: decrements the QP's outstanding
    /// count and accrues occupancy-time.
    ///
    /// Must be called in completion-time order (the runtime processes
    /// completion events through its time-ordered queue, which
    /// guarantees this).
    ///
    /// # Panics
    ///
    /// Panics if the QP has no outstanding request.
    pub fn on_cqe(&mut self, now: SimTime, qp: QpId) {
        self.advance_occupancy(now);
        let q = &mut self.qps[qp.0 as usize];
        assert!(q.outstanding > 0, "CQE for idle QP {qp:?}");
        q.outstanding -= 1;
    }

    /// Takes an occupancy snapshot at `now` (see [`OccupancySnapshot`]).
    pub fn occupancy(&self, now: SimTime) -> OccupancySnapshot {
        let mut weighted = self.occ_weighted;
        if now > self.occ_since {
            weighted +=
                self.total_outstanding() as u128 * now.since(self.occ_since).as_nanos() as u128;
        }
        OccupancySnapshot {
            weighted_ns: weighted,
            max: self.occ_max,
        }
    }

    /// Outstanding work requests on `qp` (the PF-aware dispatch signal).
    pub fn outstanding(&self, qp: QpId) -> u32 {
        self.qps[qp.0 as usize].outstanding
    }

    /// Total outstanding work requests across all QPs.
    pub fn total_outstanding(&self) -> u32 {
        self.qps.iter().map(|q| q.outstanding).sum()
    }

    /// The memory→compute direction (carries fetched pages); its
    /// utilisation is "RDMA link utilisation" in Figures 2e / 7e.
    pub fn data_link(&self) -> &Link {
        &self.from_remote
    }

    /// The compute→memory direction (carries write-backs + requests).
    pub fn ctrl_link(&self) -> &Link {
        &self.to_remote
    }

    /// READ work requests posted so far.
    pub fn posted_reads(&self) -> u64 {
        self.posted_reads
    }

    /// WRITE work requests posted so far.
    pub fn posted_writes(&self) -> u64 {
        self.posted_writes
    }

    /// Number of queue pairs.
    pub fn num_qps(&self) -> u32 {
        self.qps.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultScenario;

    fn setup() -> (RdmaNic, MemNode) {
        (
            RdmaNic::new(FabricParams::default(), 8),
            MemNode::new(1 << 20, 4096),
        )
    }

    fn inert() -> FaultPlane {
        FaultPlane::inert()
    }

    /// A scenario whose every packet is lost (loss probability 1).
    fn black_hole() -> FaultPlane {
        FaultPlane::new(
            FaultScenario {
                name: "black-hole",
                loss: 1.0,
                corrupt: 0.0,
                cqe_error: 0.0,
                episodes: Vec::new(),
            },
            1,
        )
    }

    #[test]
    fn unloaded_read_completes_in_paper_window() {
        let (mut nic, mut mem) = setup();
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        let us = c.done_at.as_nanos() as f64 / 1000.0;
        assert!((1.9..=3.1).contains(&us), "fetch = {us} us");
        assert_eq!(c.cq, CqId(0));
        assert_eq!(mem.reads(), 1);
    }

    #[test]
    fn outstanding_tracks_posts_and_cqes() {
        let (mut nic, mut mem) = setup();
        nic.post(
            SimTime(0),
            QpId(2),
            Verb::Read,
            0,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        nic.post(
            SimTime(0),
            QpId(2),
            Verb::Read,
            1,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        assert_eq!(nic.outstanding(QpId(2)), 2);
        assert_eq!(nic.total_outstanding(), 2);
        nic.on_cqe(SimTime(5_000), QpId(2));
        assert_eq!(nic.outstanding(QpId(2)), 1);
    }

    #[test]
    fn qp_depth_enforced() {
        let params = FabricParams {
            qp_depth: 2,
            ..FabricParams::default()
        };
        let mut nic = RdmaNic::new(params, 1);
        let mut mem = MemNode::new(100, 4096);
        nic.post(
            SimTime(0),
            QpId(0),
            Verb::Read,
            0,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        nic.post(
            SimTime(0),
            QpId(0),
            Verb::Read,
            1,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        let err = nic.post(
            SimTime(0),
            QpId(0),
            Verb::Read,
            2,
            4096,
            &mut mem,
            &mut inert(),
        );
        assert_eq!(err, Err(PostError::QpFull));
        // A CQE frees a slot.
        nic.on_cqe(SimTime(5_000), QpId(0));
        assert!(nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                2,
                4096,
                &mut mem,
                &mut inert()
            )
            .is_ok());
    }

    #[test]
    fn engine_is_shared_across_qps() {
        let (mut nic, mut mem) = setup();
        let a = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                0,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        let b = nic
            .post(
                SimTime(0),
                QpId(1),
                Verb::Read,
                1,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        // Both pay engine + wire queueing; the second completes later.
        assert!(b.done_at > a.done_at);
    }

    #[test]
    fn cq_reassociation_routes_completions() {
        let (mut nic, mut mem) = setup();
        nic.associate_cq(QpId(3), CqId(0));
        let c = nic
            .post(
                SimTime(0),
                QpId(3),
                Verb::Read,
                0,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        assert_eq!(c.cq, CqId(0));
        assert_eq!(c.qp, QpId(3));
    }

    #[test]
    fn writes_load_outbound_direction() {
        let (mut nic, mut mem) = setup();
        let before_out = nic.ctrl_link().snapshot();
        let before_in = nic.data_link().snapshot();
        nic.post(
            SimTime(0),
            QpId(0),
            Verb::Write,
            9,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        let d_out = nic.ctrl_link().snapshot().bytes - before_out.bytes;
        let d_in = nic.data_link().snapshot().bytes - before_in.bytes;
        assert!(d_out > 4096, "page travels outbound");
        assert!(d_in < 256, "only the ack returns");
        assert_eq!(mem.writes(), 1);
    }

    #[test]
    fn reads_load_inbound_direction() {
        let (mut nic, mut mem) = setup();
        let before = nic.data_link().snapshot();
        for p in 0..10 {
            nic.post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                p,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        }
        let after = nic.data_link().snapshot();
        assert_eq!(after.bytes - before.bytes, 10 * (4096 + 78));
        assert_eq!(nic.posted_reads(), 10);
    }

    #[test]
    fn back_to_back_reads_pipeline_on_the_wire() {
        // With many outstanding READs, completions are spaced by the data
        // serialization time (the link is the bottleneck), demonstrating
        // the concurrency yield-based handling unlocks.
        let (mut nic, mut mem) = setup();
        let mut last = SimTime::ZERO;
        let mut gaps = Vec::new();
        for p in 0..20 {
            let c = nic
                .post(
                    SimTime(0),
                    QpId((p % 8) as u32),
                    Verb::Read,
                    p,
                    4096,
                    &mut mem,
                    &mut inert(),
                )
                .unwrap();
            if p > 10 {
                gaps.push(c.done_at.since(last));
            }
            last = c.done_at;
        }
        for g in gaps {
            // Bottleneck spacing: the WQE engine (400 ns) or the data
            // serialization (~334 ns), whichever binds.
            assert!(
                g <= SimDuration::from_nanos(410),
                "steady-state gap {g} should be ~ one engine slot"
            );
        }
    }

    #[test]
    fn issued_at_splits_queue_from_wire() {
        let (mut nic, mut mem) = setup();
        let a = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                0,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        // Doorbell + engine paid before dispatch; wire after.
        assert!(a.issued_at > SimTime(0));
        assert!(a.issued_at < a.done_at);
        // A second post queues behind the first in the shared engine.
        let b = nic
            .post(
                SimTime(0),
                QpId(1),
                Verb::Read,
                1,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        assert!(b.issued_at > a.issued_at);
    }

    #[test]
    #[should_panic(expected = "CQE for idle QP")]
    fn spurious_cqe_panics() {
        let (mut nic, _) = setup();
        nic.on_cqe(SimTime(0), QpId(0));
    }

    #[test]
    fn occupancy_is_time_weighted() {
        let (mut nic, mut mem) = setup();
        // Two WRs held from t=0; one retires at t=1000, the other at
        // t=3000. Integral = 2*1000 + 1*2000 = 4000 WR·ns.
        nic.post(
            SimTime(0),
            QpId(0),
            Verb::Read,
            0,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        nic.post(
            SimTime(0),
            QpId(1),
            Verb::Read,
            1,
            4096,
            &mut mem,
            &mut inert(),
        )
        .unwrap();
        nic.on_cqe(SimTime(1_000), QpId(0));
        nic.on_cqe(SimTime(3_000), QpId(1));
        let occ = nic.occupancy(SimTime(3_000));
        assert_eq!(occ.weighted_ns, 4_000);
        assert_eq!(occ.max, 2);
        // Idle afterwards: the integral stops growing.
        assert_eq!(nic.occupancy(SimTime(10_000)).weighted_ns, 4_000);
    }

    #[test]
    fn lossless_post_reports_success_with_no_retransmits() {
        let (mut nic, mut mem) = setup();
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut inert(),
            )
            .unwrap();
        assert_eq!(c.status, CompletionStatus::Success);
        assert_eq!(c.retransmits, 0);
        assert_eq!(c.wire_start, c.issued_at);
        assert!(!c.is_error());
    }

    #[test]
    fn black_hole_exhausts_retry_budget_with_backoff() {
        let (mut nic, mut mem) = setup();
        let mut plane = black_hole();
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut plane,
            )
            .unwrap();
        assert_eq!(c.status, CompletionStatus::RetryExceeded);
        assert!(c.is_error());
        assert_eq!(c.retransmits, FabricParams::default().rc_retries);
        // 16 + 32 + 64 + 128 + 4×256 µs of backed-off RTOs.
        let elapsed = c.done_at.since(c.issued_at).as_nanos();
        assert_eq!(elapsed, 1_264_000, "RTO ladder = {elapsed} ns");
        assert!(c.wire_start > c.issued_at);
        // No request ever reached the node.
        assert_eq!(mem.reads(), 0);
        // The QP slot is held until the error CQE is consumed.
        assert_eq!(nic.outstanding(QpId(0)), 1);
        nic.on_cqe(c.done_at, QpId(0));
        assert_eq!(nic.outstanding(QpId(0)), 0);
    }

    #[test]
    fn adaptive_rto_without_samples_matches_legacy_ladder() {
        // Cold transport: no successful completion has ever been seen,
        // so the adaptive timer has no estimate and must fall back to
        // the exact fixed ladder (byte-identity with the knob off).
        let params = FabricParams {
            adaptive_rto: true,
            ..FabricParams::default()
        };
        let mut nic = RdmaNic::new(params, 8);
        let mut mem = MemNode::new(1 << 20, 4096);
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut black_hole(),
            )
            .unwrap();
        assert_eq!(c.status, CompletionStatus::RetryExceeded);
        assert_eq!(c.done_at.since(c.issued_at).as_nanos(), 1_264_000);
        assert!(nic.srtt().is_none());
    }

    #[test]
    fn adaptive_rto_warm_transport_times_out_in_microseconds() {
        // Three retries keep the 256 µs backoff cap out of the picture,
        // so the elapsed ladder reflects the adaptive base directly.
        let params = FabricParams {
            adaptive_rto: true,
            rc_retries: 3,
            ..FabricParams::default()
        };
        let mut nic = RdmaNic::new(params, 8);
        let mut mem = MemNode::new(1 << 20, 4096);
        // Warm SRTT/RTTVAR with a few clean fetches (~2.3 µs each).
        let mut t = SimTime(0);
        for page in 0..4 {
            let c = nic
                .post(t, QpId(0), Verb::Read, page, 4096, &mut mem, &mut inert())
                .unwrap();
            nic.on_cqe(c.done_at, QpId(0));
            t = c.done_at + SimDuration::from_micros(1);
        }
        let srtt = nic.srtt().expect("warm transport has an RTT estimate");
        assert!(
            (1_500..=3_500).contains(&srtt.as_nanos()),
            "srtt = {srtt:?}"
        );
        // A black-holed fetch now exhausts the retry budget far faster
        // than the fixed 16 µs base would: the legacy ladder with three
        // retries is 16+32+64+128 = 240 µs, the adaptive one runs off
        // a ~5 µs base.
        let c = nic
            .post(
                t,
                QpId(0),
                Verb::Read,
                99,
                4096,
                &mut mem,
                &mut black_hole(),
            )
            .unwrap();
        assert_eq!(c.status, CompletionStatus::RetryExceeded);
        assert_eq!(c.retransmits, 3);
        let elapsed = c.done_at.since(c.issued_at).as_nanos();
        assert!(
            elapsed < 120_000,
            "adaptive ladder = {elapsed} ns, expected well under the 240 µs fixed ladder"
        );
        // Retransmitted (ambiguous) exchanges never feed the estimator.
        let srtt_after = nic.srtt().unwrap();
        assert_eq!(srtt, srtt_after);
    }

    #[test]
    fn retransmissions_account_wasted_bandwidth_without_fifo_distortion() {
        let (mut nic, mut mem) = setup();
        let before = nic.ctrl_link().snapshot();
        let free_before = nic.ctrl_link().next_free();
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut black_hole(),
            )
            .unwrap();
        let after = nic.ctrl_link().snapshot();
        // Original + every retransmission consumed request-sized bytes.
        assert_eq!(after.messages - before.messages, 1 + c.retransmits as u64);
        // Only the original send moved the FIFO head (to the end of its
        // own ~8 ns serialization at dispatch) — not out to the RTO
        // ladder a transmit-per-retry would imply.
        let free_after = nic.ctrl_link().next_free();
        assert!(free_after > free_before);
        assert!(
            free_after < c.issued_at + SimDuration::from_nanos(100),
            "FIFO head at {free_after:?} distorted by retransmissions"
        );
    }

    #[test]
    fn node_down_is_indistinguishable_from_loss_and_replica_survives() {
        let params = FabricParams::default();
        let mut plane = FaultPlane::new(FaultScenario::crash(), 3);
        let t = SimTime(20_000_000); // inside the outage window
        let mut primary = MemNode::new(1 << 20, 4096); // id 0: down
        let mut nic = RdmaNic::new(params.clone(), 8);
        let c = nic
            .post(t, QpId(0), Verb::Read, 7, 4096, &mut primary, &mut plane)
            .unwrap();
        assert_eq!(c.status, CompletionStatus::RetryExceeded);
        assert_eq!(primary.reads(), 0);
        nic.on_cqe(c.done_at, QpId(0));

        let mut replica = MemNode::new(1 << 20, 4096).with_id(1);
        let c2 = nic
            .post(t, QpId(0), Verb::Read, 7, 4096, &mut replica, &mut plane)
            .unwrap();
        assert_eq!(c2.status, CompletionStatus::Success);
        assert_eq!(c2.retransmits, 0);
        assert_eq!(replica.reads(), 1);
    }

    #[test]
    fn node_stall_delays_the_response() {
        let mut healthy = inert();
        let mut plane = FaultPlane::new(FaultScenario::stall(), 3);
        let t = SimTime(3_200_000); // inside a stall window
        let (mut nic_a, mut mem_a) = setup();
        let base = nic_a
            .post(t, QpId(0), Verb::Read, 7, 4096, &mut mem_a, &mut healthy)
            .unwrap();
        let (mut nic_b, mut mem_b) = setup();
        let stalled = nic_b
            .post(t, QpId(0), Verb::Read, 7, 4096, &mut mem_b, &mut plane)
            .unwrap();
        assert_eq!(stalled.status, CompletionStatus::Success);
        assert_eq!(
            stalled.done_at.since(base.done_at),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn injected_cqe_error_is_fatal_but_on_time() {
        let (mut nic, mut mem) = setup();
        let mut plane = FaultPlane::new(
            FaultScenario {
                name: "poison",
                loss: 0.0,
                corrupt: 0.0,
                cqe_error: 1.0,
                episodes: Vec::new(),
            },
            1,
        );
        let c = nic
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem,
                &mut plane,
            )
            .unwrap();
        assert_eq!(c.status, CompletionStatus::RemoteError);
        assert_eq!(c.retransmits, 0);
        // The data transfer itself completed (and was served) on time.
        assert_eq!(mem.reads(), 1);
        let us = c.done_at.as_nanos() as f64 / 1000.0;
        assert!((1.9..=3.1).contains(&us), "fetch = {us} us");
    }

    #[test]
    fn degraded_link_window_slows_the_transfer() {
        let mut plane = FaultPlane::new(
            FaultScenario {
                name: "degraded",
                loss: 0.0,
                corrupt: 0.0,
                cqe_error: 0.0,
                episodes: vec![faults::Episode {
                    start: SimTime(0),
                    end: SimTime(1_000_000),
                    kind: faults::EpisodeKind::LinkDegraded {
                        extra_latency: SimDuration::from_micros(2),
                        bw_factor: 2.0,
                        loss: 0.0,
                    },
                }],
            },
            1,
        );
        let (mut nic_a, mut mem_a) = setup();
        let base = nic_a
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem_a,
                &mut inert(),
            )
            .unwrap();
        let (mut nic_b, mut mem_b) = setup();
        let slow = nic_b
            .post(
                SimTime(0),
                QpId(0),
                Verb::Read,
                7,
                4096,
                &mut mem_b,
                &mut plane,
            )
            .unwrap();
        // Both legs pay +2 µs latency; the data leg also pays ~334 ns of
        // halved bandwidth, the request leg a few ns.
        let extra = slow.done_at.since(base.done_at).as_nanos();
        assert!((4_300..4_500).contains(&extra), "extra = {extra} ns");
    }
}
