//! The memory node.
//!
//! With one-sided RDMA the memory node's CPU never touches a page fetch:
//! its NIC serves READ/WRITE directly from registered memory (the paper
//! backs it with 2 MB huge pages). The node is therefore passive in the
//! model — its per-request cost lives in
//! [`FabricParams::remote_processing`](crate::FabricParams) — but it
//! still validates addresses and keeps service statistics.

/// The remote memory node backing the compute node's paged memory.
#[derive(Debug, Clone)]
pub struct MemNode {
    id: u32,
    total_pages: u64,
    page_size: u32,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl MemNode {
    /// Creates a memory node exporting `total_pages` pages of
    /// `page_size` bytes, with id 0.
    pub fn new(total_pages: u64, page_size: u32) -> MemNode {
        MemNode {
            id: 0,
            total_pages,
            page_size,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Assigns the node id the fault plane keys its health episodes on
    /// (replica 0 is the primary; replicas take ids 1, 2, …).
    pub fn with_id(mut self, id: u32) -> MemNode {
        self.id = id;
        self
    }

    /// This node's id in the fault plane's namespace.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Serves a one-sided READ of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the exported region — a fetch of an
    /// unmapped remote page is always a compute-node paging bug.
    pub fn serve_read(&mut self, page: u64) {
        assert!(
            page < self.total_pages,
            "remote READ outside exported region: page {page} >= {}",
            self.total_pages
        );
        self.reads += 1;
        self.bytes_read += self.page_size as u64;
    }

    /// Serves a one-sided WRITE of `page` (dirty-page write-back).
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the exported region.
    pub fn serve_write(&mut self, page: u64) {
        assert!(
            page < self.total_pages,
            "remote WRITE outside exported region: page {page} >= {}",
            self.total_pages
        );
        self.writes += 1;
        self.bytes_written += self.page_size as u64;
    }

    /// Number of pages exported.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// READs served so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// WRITEs served so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes served by READs.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes absorbed by WRITEs.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut m = MemNode::new(100, 4096);
        m.serve_read(0);
        m.serve_read(99);
        m.serve_write(5);
        assert_eq!(m.reads(), 2);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.bytes_read(), 8192);
        assert_eq!(m.bytes_written(), 4096);
    }

    #[test]
    #[should_panic(expected = "outside exported region")]
    fn read_out_of_range_panics() {
        MemNode::new(10, 4096).serve_read(10);
    }

    #[test]
    #[should_panic(expected = "outside exported region")]
    fn write_out_of_range_panics() {
        MemNode::new(10, 4096).serve_write(11);
    }
}
