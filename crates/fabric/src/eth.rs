//! Raw-Ethernet client path.
//!
//! The load generator and the compute node exchange UDP-style request/
//! reply packets over a dedicated 100 GbE link using the Raw Ethernet
//! feature of libibverbs (§4 of the paper). The feature the evaluation
//! relies on — NIC hardware timestamps on TX and RX completion
//! descriptors — is modelled by returning wire-accurate delivery times,
//! which the load generator records as its RX timestamps.

use std::collections::VecDeque;

use desim::SimTime;

use crate::link::Link;
use crate::params::FabricParams;

/// Bounded RX descriptor ring; packets arriving to a full ring are
/// dropped (this is where offered-load beyond saturation disappears in
/// Figure 2d).
#[derive(Debug)]
pub struct RxRing<T> {
    ring: VecDeque<T>,
    capacity: usize,
    drops: u64,
}

impl<T> RxRing<T> {
    /// Creates a ring with `capacity` descriptors.
    pub fn new(capacity: usize) -> RxRing<T> {
        RxRing {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            drops: 0,
        }
    }

    /// Posts a received packet; returns `false` (and counts a drop) if
    /// the ring is full.
    pub fn push(&mut self, item: T) -> bool {
        if self.ring.len() >= self.capacity {
            self.drops += 1;
            false
        } else {
            self.ring.push_back(item);
            true
        }
    }

    /// Takes the oldest packet.
    pub fn pop(&mut self) -> Option<T> {
        self.ring.pop_front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Packets dropped because the ring was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// The reply-transmission result.
#[derive(Debug, Clone, Copy)]
pub struct TxResult {
    /// When the TX completion (CQE) becomes pollable at the compute node
    /// — the signal polling delegation redirects to the dispatcher's CQ.
    pub cqe_at: SimTime,
    /// When the reply is fully received by the load generator's NIC;
    /// this is the hardware RX timestamp used for end-to-end latency.
    pub client_rx_at: SimTime,
}

/// The compute-node Ethernet port (client-facing).
#[derive(Debug)]
pub struct EthPort {
    /// Load generator → compute node direction.
    ingress: Link,
    /// Compute node → load generator direction.
    egress: Link,
    tx_engine_free: SimTime,
    tx_engine_cost: desim::SimDuration,
    cqe_cost: desim::SimDuration,
}

impl EthPort {
    /// Creates the port from the shared fabric parameters.
    pub fn new(params: &FabricParams) -> EthPort {
        EthPort {
            ingress: Link::new(params),
            egress: Link::new(params),
            tx_engine_free: SimTime::ZERO,
            tx_engine_cost: params.eth_tx_engine,
            cqe_cost: params.eth_tx_completion,
        }
    }

    /// Carries a client request put on the wire at `now` (the load
    /// generator's hardware TX timestamp); returns when it lands in the
    /// compute node's RX ring.
    pub fn deliver_request(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.ingress.transmit(now, bytes)
    }

    /// Transmits a reply posted by a worker at `now`.
    pub fn send_reply(&mut self, now: SimTime, bytes: u32) -> TxResult {
        self.tx_engine_free = self.tx_engine_free.max(now) + self.tx_engine_cost;
        let client_rx_at = self.egress.transmit(self.tx_engine_free, bytes);
        // The local CQE is raised once the frame has left the port.
        let cqe_at = self.egress.next_free() + self.cqe_cost;
        TxResult {
            cqe_at,
            client_rx_at,
        }
    }

    /// The ingress (request) direction.
    pub fn ingress(&self) -> &Link {
        &self.ingress
    }

    /// The egress (reply) direction.
    pub fn egress(&self) -> &Link {
        &self.egress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_ring_bounds_and_drops() {
        let mut r = RxRing::new(2);
        assert!(r.push(1));
        assert!(r.push(2));
        assert!(!r.push(3));
        assert_eq!(r.drops(), 1);
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn request_delivery_has_wire_latency() {
        let mut p = EthPort::new(&FabricParams::default());
        let arrival = p.deliver_request(SimTime(0), 100);
        // ser((100+78)*8 bits at 100 Gbps) ≈ 15 ns + 300 ns propagation.
        assert!((310..=330).contains(&arrival.as_nanos()), "{arrival:?}");
    }

    #[test]
    fn reply_cqe_after_frame_leaves() {
        let mut p = EthPort::new(&FabricParams::default());
        let tx = p.send_reply(SimTime(1_000), 1024);
        // The local CQE needs a PCIe completion round trip after the
        // frame leaves; the client's RX lands before it.
        assert!(tx.cqe_at > tx.client_rx_at);
        assert!(
            tx.cqe_at.as_nanos() - tx.client_rx_at.as_nanos() >= 500,
            "TX completion is what a non-delegating worker spins on"
        );
    }

    #[test]
    fn replies_share_the_tx_engine() {
        let mut p = EthPort::new(&FabricParams::default());
        let a = p.send_reply(SimTime(0), 128);
        let b = p.send_reply(SimTime(0), 128);
        assert!(b.client_rx_at > a.client_rx_at);
    }

    #[test]
    fn directions_are_independent() {
        let mut p = EthPort::new(&FabricParams::default());
        // Saturate egress; ingress latency must not change.
        for _ in 0..100 {
            p.send_reply(SimTime(0), 4096);
        }
        let arrival = p.deliver_request(SimTime(0), 100);
        assert!(arrival.as_nanos() < 400);
    }
}
