//! Fabric cost constants.
//!
//! Defaults are calibrated to the paper's testbed (ConnectX-6 Dx 100 GbE,
//! PCIe-attached, 4 KB pages) and to the latency components the paper
//! itself publishes: an unloaded 4 KB one-sided READ lands at ≈2.3 µs,
//! inside the 2–3 µs the paper quotes (§3, refs [29, 64, 66]).

use desim::SimDuration;

/// Cost constants for links and NICs.
#[derive(Debug, Clone)]
pub struct FabricParams {
    /// Link bandwidth in bits per second (100 GbE).
    pub link_bandwidth_bps: u64,
    /// One-way propagation + switching delay per link.
    pub propagation: SimDuration,
    /// Wire overhead added to every message (Ethernet + IP + UDP + BTH/
    /// RETH + ICRC + FCS for RoCE; Ethernet framing for raw packets).
    pub wire_overhead_bytes: u32,
    /// MMIO doorbell + PCIe posting cost paid by the CPU per work request.
    pub doorbell: SimDuration,
    /// Shared NIC work-queue-engine occupancy per WQE. This is the
    /// resource the paper blames for Memcached's throughput ceiling ("the
    /// NIC could not match the host's processing power", §5.2).
    pub nic_engine: SimDuration,
    /// Memory-node-side NIC processing + host DMA per request.
    pub remote_processing: SimDuration,
    /// Compute-node-side DMA write + CQE generation on response arrival.
    pub local_dma: SimDuration,
    /// Send-queue depth per QP (maximum outstanding work requests).
    pub qp_depth: u32,
    /// Base RC retransmission timeout: how long the transport engine
    /// waits for the missing response/ACK before retransmitting. RoCE
    /// `local_ack_timeout` granularity puts practical minima in the
    /// tens of microseconds.
    pub rto: SimDuration,
    /// RC retry budget (`retry_cnt`): retransmissions allowed before
    /// the work request completes with a fatal CQE error.
    pub rc_retries: u32,
    /// Cap on the exponentially backed-off RTO.
    pub rto_cap: SimDuration,
    /// Adaptive retransmission timer (RFC 6298 style): the transport
    /// engine tracks SRTT/RTTVAR from unretransmitted completions and
    /// arms `SRTT + 4·RTTVAR` instead of the fixed [`rto`](Self::rto)
    /// base once it has a sample. Off by default — the legacy fixed
    /// 16 µs ladder is what the paper's testbed NIC firmware does, and
    /// keeping it the default preserves byte-identity of every run
    /// that predates this knob.
    pub adaptive_rto: bool,
    /// RX descriptor ring size of the Ethernet port.
    pub rx_ring_entries: usize,
    /// TX engine occupancy per Ethernet transmit.
    pub eth_tx_engine: SimDuration,
    /// Delay from a frame leaving the port to its TX CQE being
    /// pollable (descriptor fetch + completion DMA over PCIe). This is
    /// what a non-delegating worker busy-waits on.
    pub eth_tx_completion: SimDuration,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            link_bandwidth_bps: 100_000_000_000,
            propagation: SimDuration::from_nanos(300),
            wire_overhead_bytes: 78,
            doorbell: SimDuration::from_nanos(100),
            nic_engine: SimDuration::from_nanos(400),
            remote_processing: SimDuration::from_nanos(600),
            local_dma: SimDuration::from_nanos(250),
            qp_depth: 64,
            rto: SimDuration::from_micros(16),
            rc_retries: 7,
            rto_cap: SimDuration::from_micros(256),
            adaptive_rto: false,
            rx_ring_entries: 4096,
            eth_tx_engine: SimDuration::from_nanos(150),
            eth_tx_completion: SimDuration::from_nanos(1_000),
        }
    }
}

impl FabricParams {
    /// Serialization time for `bytes` of payload plus wire overhead.
    pub fn serialize(&self, payload_bytes: u32) -> SimDuration {
        let wire_bytes = (payload_bytes + self.wire_overhead_bytes) as u64;
        // bits / (bits per ns); round up so a message never takes zero time.
        let bits = wire_bytes * 8;
        let ns = (bits * desim::NS_PER_SEC).div_ceil(self.link_bandwidth_bps);
        SimDuration::from_nanos(ns.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_of_a_page() {
        let p = FabricParams::default();
        // 4 KB + 78 B at 100 Gbps = 4174 * 8 / 100 = ~334 ns.
        let d = p.serialize(4096);
        assert!((330..=340).contains(&d.as_nanos()), "{d:?}");
    }

    #[test]
    fn serialization_never_zero() {
        let p = FabricParams::default();
        assert!(p.serialize(0).as_nanos() >= 1);
    }

    #[test]
    fn unloaded_read_latency_in_paper_range() {
        // Doorbell + engine + req wire + prop + remote + data wire + prop
        // + local DMA should land in the paper's 2–3 µs window.
        let p = FabricParams::default();
        let total = p.doorbell
            + p.nic_engine
            + p.serialize(16)
            + p.propagation
            + p.remote_processing
            + p.serialize(4096)
            + p.propagation
            + p.local_dma;
        let us = total.as_micros_f64();
        assert!((1.9..=3.1).contains(&us), "unloaded fetch = {us} us");
    }
}
