//! Simulated network fabric for the Adios reproduction.
//!
//! The paper's testbed connects a compute node, a memory node and a load
//! generator with 100 GbE links; the compute node fetches 4 KB pages from
//! the memory node with one-sided RDMA READs over an NVIDIA ConnectX-6 Dx
//! RNIC. No RNIC is available here, so this crate models the fabric as
//! queueing components with published cost constants (see `DESIGN.md` §2):
//!
//! - [`Link`] — a unidirectional, bandwidth-limited wire with propagation
//!   delay and byte/busy-time accounting (for the RDMA-utilisation
//!   figures).
//! - [`RdmaNic`] — queue pairs with bounded send queues, a shared WQE
//!   processing engine, one-sided READ/WRITE verbs and completion routing
//!   to per-QP completion queues. CQ *re-association* — the mechanism
//!   behind Adios' polling delegation (§3.4 of the paper) — is supported
//!   by giving each QP an explicit target CQ.
//! - [`EthPort`] — the Raw-Ethernet client path with a bounded RX ring
//!   and hardware TX/RX timestamps (the load generator measures
//!   end-to-end latency exactly as the paper does, from NIC timestamps).
//! - [`MemNode`] — the passive one-sided memory node, with address-range
//!   validation and service statistics.
//! - [`ShardMap`] — deterministic page → shard → memnode placement
//!   (hash or range partition) with per-shard replica chains, so the
//!   page space can span several memory nodes.
//!
//! All components are *passive*: they never own an event loop. Posting a
//! work request returns the simulated completion time analytically (every
//! internal resource is FIFO), and the caller schedules that completion
//! in its own event queue.

pub mod eth;
pub mod link;
pub mod memnode;
pub mod nic;
pub mod params;
pub mod shard;

pub use eth::{EthPort, RxRing};
pub use link::Link;
pub use memnode::MemNode;
pub use nic::{Completion, CompletionStatus, CqId, OccupancySnapshot, PostError, QpId, RdmaNic};
pub use params::FabricParams;
pub use shard::{ShardMap, ShardPolicy};
