//! Deterministic sharding of the remote page space across memnodes.
//!
//! A [`ShardMap`] partitions the page-id space into `shards` disjoint
//! shards. Each shard owns a *replica chain* of memnodes: the chain of
//! shard `s` occupies the global node ids `s * replicas .. (s + 1) *
//! replicas`, with replica 0 the primary every fetch targets first.
//! With one shard the map degenerates to the pre-sharding layout (node
//! ids `0 .. replicas`), so single-shard runs are bit-identical to the
//! unsharded simulation.
//!
//! Two placement policies are supported:
//!
//! - [`ShardPolicy::Hash`] — a splitmix64-style mix of the page id
//!   modulo the shard count. Spreads any access pattern near-uniformly;
//!   the default.
//! - [`ShardPolicy::Range`] — contiguous, gap-free ranges of the page
//!   space (`page * shards / total_pages`). Keeps sequential streams on
//!   one shard, which preserves readahead locality at the cost of skew
//!   under hot ranges.

/// How pages are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Hash of the page id modulo the shard count.
    Hash,
    /// Contiguous range partition of the page space.
    Range,
}

/// A deterministic page → shard → memnode map.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    replicas: usize,
    total_pages: u64,
    policy: ShardPolicy,
}

/// The finalizer of splitmix64: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardMap {
    /// Builds a map of `total_pages` pages over `shards` shards, each
    /// backed by a chain of `replicas` memnodes.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `replicas` or `total_pages` is zero.
    pub fn new(shards: usize, replicas: usize, total_pages: u64, policy: ShardPolicy) -> ShardMap {
        assert!(shards >= 1, "at least one memnode shard required");
        assert!(replicas >= 1, "at least one replica per shard required");
        assert!(total_pages >= 1, "empty page space");
        ShardMap {
            shards,
            replicas,
            total_pages,
            policy,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Replicas per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total memnodes across every shard's chain.
    pub fn nodes(&self) -> usize {
        self.shards * self.replicas
    }

    /// Placement policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The shard owning `page`. Total over the page space and pure in
    /// `(page, policy, shards, total_pages)`.
    pub fn shard_of(&self, page: u64) -> usize {
        debug_assert!(page < self.total_pages, "page outside the page space");
        match self.policy {
            ShardPolicy::Hash => (mix64(page) % self.shards as u64) as usize,
            // u128 keeps `page * shards` exact for any page count.
            ShardPolicy::Range => {
                ((page as u128 * self.shards as u128) / self.total_pages as u128) as usize
            }
        }
    }

    /// Global memnode id of `replica` in `shard`'s chain.
    pub fn node_id(&self, shard: usize, replica: usize) -> u32 {
        debug_assert!(shard < self.shards && replica < self.replicas);
        (shard * self.replicas + replica) as u32
    }

    /// Global memnode id of `shard`'s primary.
    pub fn primary(&self, shard: usize) -> u32 {
        self.node_id(shard, 0)
    }

    /// Re-maps `page` onto the first live node of its shard's chain,
    /// probing the chain in failover order (primary first). `alive`
    /// judges a global node id; returns `None` when the whole chain is
    /// down. This is the declarative spec of the runtime's reactive
    /// failover chain: the chain re-issues in exactly this order, so a
    /// fetch never lands on a node this function would skip.
    pub fn route(&self, page: u64, alive: impl Fn(u32) -> bool) -> Option<u32> {
        let shard = self.shard_of(page);
        (0..self.replicas)
            .map(|r| self.node_id(shard, r))
            .find(|&n| alive(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGES: u64 = 65_536;

    #[test]
    fn map_is_total_and_deterministic() {
        for policy in [ShardPolicy::Hash, ShardPolicy::Range] {
            let m = ShardMap::new(4, 2, PAGES, policy);
            let n = ShardMap::new(4, 2, PAGES, policy);
            for page in 0..PAGES {
                let s = m.shard_of(page);
                assert!(s < 4, "{policy:?}: shard {s} out of range for page {page}");
                assert_eq!(s, n.shard_of(page), "{policy:?}: map must be pure");
                assert_eq!(s, m.shard_of(page), "{policy:?}: map must be stable");
            }
        }
    }

    #[test]
    fn hash_policy_is_balanced_within_tolerance() {
        let m = ShardMap::new(4, 1, PAGES, ShardPolicy::Hash);
        let mut counts = [0u64; 4];
        for page in 0..PAGES {
            counts[m.shard_of(page)] += 1;
        }
        let ideal = PAGES as f64 / 4.0;
        for (s, &c) in counts.iter().enumerate() {
            let skew = (c as f64 - ideal).abs() / ideal;
            assert!(
                skew < 0.05,
                "shard {s} holds {c} pages, {skew:.3} away from the ideal {ideal}"
            );
        }
    }

    #[test]
    fn range_policy_is_contiguous_and_gap_free() {
        // Deliberately not a divisor of the page count: the partition
        // must still cover everything without gaps.
        for shards in [1usize, 3, 4, 7] {
            let m = ShardMap::new(shards, 1, PAGES, ShardPolicy::Range);
            let mut prev = 0usize;
            let mut seen = vec![false; shards];
            seen[0] = true;
            assert_eq!(m.shard_of(0), 0, "range partition starts at shard 0");
            for page in 1..PAGES {
                let s = m.shard_of(page);
                assert!(
                    s == prev || s == prev + 1,
                    "{shards} shards: shard ids must be monotone and gap-free, \
                     got {prev} -> {s} at page {page}"
                );
                seen[s] = true;
                prev = s;
            }
            assert_eq!(prev, shards - 1, "partition must end at the last shard");
            assert!(seen.iter().all(|&s| s), "every shard must own pages");
        }
    }

    #[test]
    fn node_ids_pack_chains_densely() {
        let m = ShardMap::new(3, 2, PAGES, ShardPolicy::Hash);
        assert_eq!(m.nodes(), 6);
        let ids: Vec<u32> = (0..3)
            .flat_map(|s| (0..2).map(move |r| (s, r)))
            .map(|(s, r)| m.node_id(s, r))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(m.primary(0), 0, "shard 0's primary keeps node id 0");
        assert_eq!(m.primary(2), 4);
    }

    #[test]
    fn single_shard_matches_unsharded_layout() {
        let m = ShardMap::new(1, 2, PAGES, ShardPolicy::Hash);
        for page in (0..PAGES).step_by(997) {
            assert_eq!(m.shard_of(page), 0);
        }
        assert_eq!(m.primary(0), 0);
        assert_eq!(m.node_id(0, 1), 1);
    }

    #[test]
    fn post_crash_remap_avoids_down_nodes_and_covers_every_page() {
        let m = ShardMap::new(4, 2, PAGES, ShardPolicy::Hash);
        // Crash shard 1's primary (global node id 2): its pages must
        // re-map onto the replica, every other shard keeps its primary,
        // and no page routes to the dead node.
        let down = m.primary(1);
        for page in 0..PAGES {
            let node = m
                .route(page, |n| n != down)
                .expect("chain has a live replica");
            assert_ne!(node, down, "page {page} routed to the down node");
            let shard = m.shard_of(page);
            if shard == 1 {
                assert_eq!(node, m.node_id(1, 1), "crashed shard re-maps to replica");
            } else {
                assert_eq!(node, m.primary(shard), "other shards stay undisturbed");
            }
        }
        // A fully-dead chain is reported, not silently mis-routed.
        let dead = ShardMap::new(2, 1, PAGES, ShardPolicy::Hash);
        assert_eq!(dead.route(0, |_| false), None);
    }

    #[test]
    #[should_panic(expected = "at least one memnode shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0, 1, PAGES, ShardPolicy::Hash);
    }
}
