//! Bandwidth-limited unidirectional link.
//!
//! A [`Link`] is a FIFO wire: messages serialize back-to-back at line
//! rate and then propagate. The link accounts carried bytes and busy
//! time so experiments can report utilisation over a measurement window
//! (Figures 2e and 7e of the paper).

use desim::{SimDuration, SimTime, NS_PER_SEC};

use crate::params::FabricParams;

/// A unidirectional, bandwidth-limited wire.
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth_bps: u64,
    propagation: SimDuration,
    wire_overhead_bytes: u32,
    next_free: SimTime,
    bytes_carried: u64,
    messages: u64,
    busy: SimDuration,
}

/// A snapshot of link counters, used to compute utilisation over a
/// measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Cumulative payload + overhead bytes carried.
    pub bytes: u64,
    /// Cumulative messages carried.
    pub messages: u64,
    /// Cumulative serialization (busy) time.
    pub busy: SimDuration,
}

impl Link {
    /// Creates a link from the shared fabric parameters.
    pub fn new(params: &FabricParams) -> Link {
        Link {
            bandwidth_bps: params.link_bandwidth_bps,
            propagation: params.propagation,
            wire_overhead_bytes: params.wire_overhead_bytes,
            next_free: SimTime::ZERO,
            bytes_carried: 0,
            messages: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Transmits a message handed to the wire at `now`; returns the time
    /// it is fully delivered at the far end.
    ///
    /// The message queues behind any in-flight serialization (FIFO), so
    /// back-to-back callers observe queueing delay — this is where RDMA
    /// link congestion appears in the model.
    pub fn transmit(&mut self, now: SimTime, payload_bytes: u32) -> SimTime {
        let wire_bytes = (payload_bytes + self.wire_overhead_bytes) as u64;
        let ser_ns = (wire_bytes * 8 * NS_PER_SEC)
            .div_ceil(self.bandwidth_bps)
            .max(1);
        let ser = SimDuration::from_nanos(ser_ns);
        let start = self.next_free.max(now);
        self.next_free = start + ser;
        self.bytes_carried += wire_bytes;
        self.messages += 1;
        self.busy += ser;
        self.next_free + self.propagation
    }

    /// Returns the instant the wire becomes free for a new message.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Takes a counter snapshot.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            bytes: self.bytes_carried,
            messages: self.messages,
            busy: self.busy,
        }
    }

    /// Computes utilisation (0.0–1.0) between two snapshots over a
    /// window of `window` duration, based on serialization busy time.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or the snapshots are out of order.
    pub fn utilization(before: &LinkSnapshot, after: &LinkSnapshot, window: SimDuration) -> f64 {
        assert!(window > SimDuration::ZERO, "zero utilisation window");
        let busy = after.busy - before.busy;
        busy.as_nanos() as f64 / window.as_nanos() as f64
    }

    /// Computes goodput in bits per second between two snapshots.
    pub fn throughput_bps(before: &LinkSnapshot, after: &LinkSnapshot, window: SimDuration) -> f64 {
        assert!(window > SimDuration::ZERO, "zero throughput window");
        ((after.bytes - before.bytes) * 8) as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(&FabricParams::default())
    }

    #[test]
    fn single_message_latency() {
        let mut l = link();
        let arrival = l.transmit(SimTime(1_000), 4096);
        // ser ≈ 334 ns + 300 ns propagation.
        assert_eq!(arrival.as_nanos(), 1_000 + 334 + 300);
    }

    #[test]
    fn fifo_queueing() {
        let mut l = link();
        let a = l.transmit(SimTime(0), 4096);
        let b = l.transmit(SimTime(0), 4096);
        // Second message waits for the first to finish serializing.
        assert_eq!(b.as_nanos() - a.as_nanos(), 334);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = link();
        let _ = l.transmit(SimTime(0), 64);
        // Long idle gap: next message starts immediately.
        let arrival = l.transmit(SimTime(1_000_000), 64);
        let ser = (64 + 78) * 8 / 100 + 1; // ceil at 100 Gbps
        assert_eq!(arrival.as_nanos(), 1_000_000 + ser as u64 + 300);
    }

    #[test]
    fn utilization_accounting() {
        let mut l = link();
        let before = l.snapshot();
        // Fill exactly half of a 10 µs window with serialization.
        let mut now = SimTime(0);
        let mut sent = SimDuration::ZERO;
        while sent.as_nanos() < 5_000 {
            let t = l.transmit(now, 4096);
            now = t; // pace at completion, leaving prop gaps
            sent += SimDuration::from_nanos(334);
        }
        let after = l.snapshot();
        let util = Link::utilization(&before, &after, SimDuration::from_micros(10));
        assert!((0.45..=0.56).contains(&util), "util = {util}");
        let tput = Link::throughput_bps(&before, &after, SimDuration::from_micros(10));
        assert!(tput > 0.0);
    }

    #[test]
    fn saturated_link_is_fully_utilized() {
        let mut l = link();
        let before = l.snapshot();
        // Offer far more than the link can carry in 100 µs.
        for _ in 0..1_000 {
            l.transmit(SimTime(0), 4096);
        }
        let after = l.snapshot();
        // 1000 * 334 ns of busy time vs a 334 µs window = 100 %.
        let window = SimDuration::from_nanos(334_000);
        let util = Link::utilization(&before, &after, window);
        assert!(util >= 0.99, "util = {util}");
    }

    mod properties {
        use super::*;
        use desim::Rng;

        /// FIFO: arrival times are non-decreasing regardless of the
        /// (time-ordered) submission pattern, and byte accounting
        /// conserves payload + overhead.
        #[test]
        fn fifo_and_conservation() {
            let mut rng = Rng::new(0xF1F0);
            for _ in 0..64 {
                let n = 1 + rng.gen_range(99) as usize;
                let mut sorted: Vec<(u64, u32)> = (0..n)
                    .map(|_| (rng.gen_range(100_000), 1 + rng.gen_range(9_999) as u32))
                    .collect();
                sorted.sort_by_key(|&(t, _)| t);
                let mut l = Link::new(&FabricParams::default());
                let before = l.snapshot();
                let mut prev_arrival = None;
                let mut payload_total = 0u64;
                for (t, bytes) in sorted {
                    let arrival = l.transmit(SimTime(t), bytes);
                    if let Some(p) = prev_arrival {
                        assert!(arrival > p, "FIFO violated");
                    }
                    prev_arrival = Some(arrival);
                    payload_total += bytes as u64 + 78;
                }
                let after = l.snapshot();
                assert_eq!(after.bytes - before.bytes, payload_total);
                assert_eq!(after.messages - before.messages, n as u64);
                // Busy time is at least the line-rate serialization of
                // every byte carried.
                let min_busy = payload_total * 8 * desim::NS_PER_SEC
                    / FabricParams::default().link_bandwidth_bps;
                assert!(after.busy.as_nanos() >= min_busy);
            }
        }

        /// A link never delivers faster than line rate over any prefix
        /// of a burst.
        #[test]
        fn never_exceeds_line_rate() {
            for seed in 0u64..64 {
                let mut rng = Rng::new(seed);
                let mut l = Link::new(&FabricParams::default());
                let mut carried = 0u64;
                let start = SimTime(0);
                for _ in 0..50 {
                    let bytes = 64 + rng.gen_range(8_192) as u32;
                    let last = l.transmit(start, bytes);
                    carried += (bytes + 78) as u64;
                    let elapsed = last.since(start).as_nanos().saturating_sub(300); // minus prop
                    let implied_bps = carried as f64 * 8.0 / (elapsed as f64 / 1e9);
                    assert!(
                        implied_bps <= 100e9 * 1.01,
                        "implied rate {implied_bps} bps"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero utilisation window")]
    fn zero_window_panics() {
        let l = link();
        let s = l.snapshot();
        Link::utilization(&s, &s, SimDuration::ZERO);
    }
}
