//! Open-loop load generation and measurement.
//!
//! The paper's load generator (§4) is mutilate-like: an open-loop
//! Poisson arrival process running on its own host, measuring
//! end-to-end latency from NIC hardware timestamps (reply RX minus
//! request TX). This crate provides:
//!
//! - [`OpenLoop`] — the Poisson arrival process (deterministic given a
//!   seed, so every system under test sees the *same* arrival sequence);
//! - [`Recorder`] — per-class latency histograms, per-request component
//!   breakdowns (for Figures 2c / 7c), drop accounting and a warm-up
//!   window;
//! - [`LoadPoint`] — one point of a latency-vs-throughput sweep;
//! - [`tenant`] — the multi-tenant traffic plane: [`TenantMix`] merges
//!   N independent per-tenant arrival sources (Poisson or MMPP, each
//!   with its own rate, app, priority class and SLO spec) into one
//!   deterministic stream tagged with tenant ids.

pub mod arrivals;
pub mod record;
pub mod sweep;
pub mod tenant;

pub use arrivals::{BurstyLoop, IngressFanIn, OpenLoop};
pub use record::{Breakdown, Recorder};
pub use sweep::LoadPoint;
pub use tenant::{TenantMix, TenantPlane, TenantPriority, TenantSpec};
