//! Open-loop Poisson arrival process.

use desim::{Rng, SimDuration, SimTime};

/// An open-loop Poisson request source.
///
/// Being *open loop* is essential to the paper's methodology: arrivals
/// do not wait for replies, so queueing delay shows up as latency (and
/// overload as drops) instead of silently throttling the offered load.
///
/// # Examples
///
/// ```
/// use loadgen::OpenLoop;
///
/// let mut src = OpenLoop::new(1_000_000.0, 42); // 1 MRPS
/// let t1 = src.next_arrival();
/// let t2 = src.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoop {
    rng: Rng,
    mean_interarrival_ns: f64,
    next: SimTime,
    generated: u64,
}

impl OpenLoop {
    /// Creates a source offering `rate_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not strictly positive.
    pub fn new(rate_rps: f64, seed: u64) -> OpenLoop {
        assert!(rate_rps > 0.0, "offered load must be positive");
        OpenLoop {
            rng: Rng::new(seed),
            mean_interarrival_ns: 1e9 / rate_rps,
            next: SimTime::ZERO,
            generated: 0,
        }
    }

    /// Returns the next request's hardware TX timestamp.
    pub fn next_arrival(&mut self) -> SimTime {
        let gap = self.rng.exp(self.mean_interarrival_ns);
        self.next += SimDuration::from_nanos(gap.round().max(1.0) as u64);
        self.generated += 1;
        self.next
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The configured mean inter-arrival gap.
    pub fn mean_interarrival(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean_interarrival_ns.round() as u64)
    }
}

/// A two-state Markov-modulated Poisson process (MMPP): bursts of
/// `peak_factor ×` the mean rate alternate with quiet periods, keeping
/// the long-run average at `rate_rps`.
///
/// Used to study burst tolerance (§3.2: the unithread pool "must be
/// sufficient to handle bursty request arrivals").
#[derive(Debug, Clone)]
pub struct BurstyLoop {
    rng: Rng,
    on_interarrival_ns: f64,
    off_interarrival_ns: f64,
    mean_phase_ns: f64,
    in_burst: bool,
    phase_end: SimTime,
    next: SimTime,
    generated: u64,
}

impl BurstyLoop {
    /// Creates a bursty source averaging `rate_rps`; bursts run at
    /// `peak_factor ×` that rate, quiet phases absorb the difference
    /// (equal mean phase lengths).
    ///
    /// # Panics
    ///
    /// Panics unless `rate_rps > 0` and `peak_factor > 1`.
    pub fn new(rate_rps: f64, peak_factor: f64, mean_phase: SimDuration, seed: u64) -> BurstyLoop {
        assert!(rate_rps > 0.0, "offered load must be positive");
        assert!(
            (1.0..=2.0).contains(&peak_factor) && peak_factor > 1.0,
            "peak factor must be in (1, 2] (equal-length phases)"
        );
        // Equal expected phase lengths: mean = (r_on + r_off) / 2, so
        // r_off = (2 − peak_factor) × rate keeps the long-run average.
        let r_on = rate_rps * peak_factor;
        let r_off = (rate_rps * (2.0 - peak_factor)).max(1.0);
        BurstyLoop {
            rng: Rng::new(seed),
            on_interarrival_ns: 1e9 / r_on,
            off_interarrival_ns: 1e9 / r_off,
            mean_phase_ns: mean_phase.as_nanos() as f64,
            in_burst: false,
            phase_end: SimTime::ZERO,
            next: SimTime::ZERO,
            generated: 0,
        }
    }

    /// Returns the next request's hardware TX timestamp.
    pub fn next_arrival(&mut self) -> SimTime {
        loop {
            if self.next >= self.phase_end {
                self.in_burst = !self.in_burst;
                let len = self.rng.exp(self.mean_phase_ns).max(1.0);
                self.phase_end = self.next + SimDuration::from_nanos(len as u64);
            }
            let mean = if self.in_burst {
                self.on_interarrival_ns
            } else {
                self.off_interarrival_ns
            };
            let gap = SimDuration::from_nanos(self.rng.exp(mean).round().max(1.0) as u64);
            let candidate = self.next + gap;
            if candidate > self.phase_end {
                // Cross into the next phase and redraw at its rate.
                self.next = self.phase_end;
                continue;
            }
            self.next = candidate;
            self.generated += 1;
            return self.next;
        }
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Whether the process is currently inside a burst.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

/// RSS-style fan-in of one arrival stream onto `lanes` per-dispatcher
/// ingress slots.
///
/// Real multi-core ingress planes steer packets by a NIC hash of the
/// flow tuple, not round-robin: consecutive arrivals of a burst can land
/// on the *same* lane while its siblings idle. This steers by a
/// splitmix64 hash of the arrival sequence number, which reproduces that
/// lumpiness deterministically — the imbalance is what work stealing and
/// flat combining exist to absorb. With one lane the steer is the
/// constant `0` and the internal counter is the only state touched, so a
/// single-dispatcher run stays bit-identical to the pre-fan-in stream.
#[derive(Debug, Clone)]
pub struct IngressFanIn {
    lanes: usize,
    salt: u64,
    seq: u64,
}

impl IngressFanIn {
    /// Creates a fan-in over `lanes` ingress slots, salted by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn new(lanes: usize, seed: u64) -> IngressFanIn {
        assert!(lanes >= 1, "fan-in needs at least one lane");
        IngressFanIn {
            lanes,
            salt: seed,
            seq: 0,
        }
    }

    /// Steers the next arrival to a lane in `0..lanes`.
    pub fn steer(&mut self) -> usize {
        let i = self.seq;
        self.seq += 1;
        if self.lanes == 1 {
            return 0;
        }
        // splitmix64 finalizer over (sequence ⊕ salt).
        let mut z = i
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            ^ self.salt;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % self.lanes as u64) as usize
    }

    /// Number of ingress lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_converges_to_offered_load() {
        let mut src = OpenLoop::new(2_000_000.0, 7);
        let n = 200_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = src.next_arrival();
        }
        let achieved = n as f64 / last.as_secs_f64();
        assert!(
            (achieved / 2_000_000.0 - 1.0).abs() < 0.02,
            "achieved {achieved} rps"
        );
        assert_eq!(src.generated(), n);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut src = OpenLoop::new(10_000_000.0, 3);
        let mut prev = SimTime::ZERO;
        for _ in 0..10_000 {
            let t = src.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = OpenLoop::new(1e6, 11);
        let mut b = OpenLoop::new(1e6, 11);
        for _ in 0..1000 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn interarrival_cv_is_poisson_like() {
        // Exponential gaps: coefficient of variation ≈ 1.
        let mut src = OpenLoop::new(1e6, 5);
        let mut gaps = Vec::new();
        let mut prev = SimTime::ZERO;
        for _ in 0..100_000 {
            let t = src.next_arrival();
            gaps.push(t.since(prev).as_nanos() as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        OpenLoop::new(0.0, 1);
    }

    #[test]
    fn bursty_mean_rate_converges() {
        let mut src = BurstyLoop::new(1_000_000.0, 1.8, SimDuration::from_micros(500), 7);
        let n = 300_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = src.next_arrival();
        }
        let achieved = n as f64 / last.as_secs_f64();
        assert!(
            (achieved / 1_000_000.0 - 1.0).abs() < 0.08,
            "long-run mean {achieved} rps"
        );
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        // Compare max arrivals in 100 µs windows: the MMPP must show
        // materially hotter windows than plain Poisson at the same mean.
        fn max_window(mut next: impl FnMut() -> SimTime) -> usize {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..200_000 {
                let t = next();
                *counts.entry(t.as_nanos() / 100_000).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        }
        let mut poisson = OpenLoop::new(1_000_000.0, 3);
        let mut bursty = BurstyLoop::new(1_000_000.0, 1.9, SimDuration::from_micros(400), 3);
        let p = max_window(|| poisson.next_arrival());
        let b = max_window(|| bursty.next_arrival());
        assert!(
            b as f64 > p as f64 * 1.15,
            "bursty max window {b} vs poisson {p}"
        );
    }

    #[test]
    fn bursty_arrivals_strictly_increase() {
        let mut src = BurstyLoop::new(500_000.0, 1.5, SimDuration::from_micros(200), 9);
        let mut prev = SimTime::ZERO;
        for _ in 0..20_000 {
            let t = src.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "peak factor")]
    fn bursty_rejects_bad_factor() {
        BurstyLoop::new(1e6, 3.0, SimDuration::from_micros(100), 1);
    }

    #[test]
    fn single_lane_fan_in_is_constant_zero() {
        let mut f = IngressFanIn::new(1, 99);
        for _ in 0..1000 {
            assert_eq!(f.steer(), 0);
        }
    }

    #[test]
    fn fan_in_is_deterministic_and_in_range() {
        let mut a = IngressFanIn::new(4, 7);
        let mut b = IngressFanIn::new(4, 7);
        for _ in 0..10_000 {
            let lane = a.steer();
            assert_eq!(lane, b.steer());
            assert!(lane < 4);
        }
    }

    #[test]
    fn fan_in_spreads_roughly_evenly_but_not_round_robin() {
        let mut f = IngressFanIn::new(4, 11);
        let mut counts = [0usize; 4];
        let mut repeats = 0usize;
        let mut prev = usize::MAX;
        let n = 40_000;
        for _ in 0..n {
            let lane = f.steer();
            counts[lane] += 1;
            if lane == prev {
                repeats += 1;
            }
            prev = lane;
        }
        for (lane, &c) in counts.iter().enumerate() {
            let share = c as f64 / n as f64;
            assert!(
                (0.22..=0.28).contains(&share),
                "lane {lane} got share {share}"
            );
        }
        // Hash steering keeps back-to-back same-lane arrivals (~1/lanes
        // of the stream); strict round-robin would have none.
        assert!(repeats > n / 8, "only {repeats} back-to-back repeats");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_fan_in_rejected() {
        IngressFanIn::new(0, 1);
    }
}
