//! Sweep result types and formatting.

/// One point of a latency-vs-throughput sweep (one x-position of the
/// paper's figures).
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Offered load (requests per second).
    pub offered_rps: f64,
    /// Achieved throughput (completions per second in the window).
    pub achieved_rps: f64,
    /// Median end-to-end latency (ns).
    pub p50_ns: u64,
    /// P99 end-to-end latency (ns).
    pub p99_ns: u64,
    /// P99.9 end-to-end latency (ns).
    pub p999_ns: u64,
    /// Mean end-to-end latency (ns).
    pub mean_ns: f64,
    /// Requests dropped in the window.
    pub drops: u64,
    /// RDMA data-direction link utilisation (0–1).
    pub rdma_util: f64,
}

impl LoadPoint {
    /// Formats the point as a fixed-width table row.
    pub fn row(&self) -> String {
        format!(
            "{:>10.0} {:>11.0} {:>9.2} {:>9.2} {:>10.2} {:>9.2} {:>8} {:>7.1}%",
            self.offered_rps,
            self.achieved_rps,
            self.p50_ns as f64 / 1000.0,
            self.p99_ns as f64 / 1000.0,
            self.p999_ns as f64 / 1000.0,
            self.mean_ns / 1000.0,
            self.drops,
            self.rdma_util * 100.0,
        )
    }

    /// The table header matching [`LoadPoint::row`].
    pub fn header() -> &'static str {
        "   offered    achieved   p50(us)   p99(us)  p999(us)  mean(us)    drops    util"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_all_fields() {
        let p = LoadPoint {
            offered_rps: 1_300_000.0,
            achieved_rps: 1_290_000.0,
            p50_ns: 5_300,
            p99_ns: 52_000,
            p999_ns: 150_000,
            mean_ns: 9_000.0,
            drops: 12,
            rdma_util: 0.5,
        };
        let row = p.row();
        assert!(row.contains("1300000"));
        assert!(row.contains("5.30"));
        assert!(row.contains("50.0%"));
        assert_eq!(
            LoadPoint::header().split_whitespace().count(),
            8,
            "header column count matches row"
        );
    }
}
