//! Latency recording with component breakdowns.

use desim::{CriticalPath, Histogram, SimDuration, SimTime};

/// Where a request's time went (Figures 2c and 7c).
///
/// All fields are nanoseconds. Breakdowns are derived from the span
/// layer's [`CriticalPath`] attribution (see
/// [`Breakdown::from_critical_path`]): the five wall-clock components
/// plus `net_ns` partition the end-to-end latency *exactly*, so
/// [`Breakdown::total_ns`] equals the request's measured e2e latency.
/// Busy-wait time is called out separately because it is the paper's
/// villain: worker cycles burned spinning on an outstanding fetch (the
/// slashed region of Figure 2c); as wasted *cycles* it overlays the
/// wall-clock components rather than adding to them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Dispatcher + worker queueing delay, QP-stall and reply-doorbell
    /// waits included.
    pub queueing_ns: u64,
    /// Worker cycles burned busy-waiting (fetch spins, QP-full stalls,
    /// reply-CQE spins) — an overlay on the wall-clock components,
    /// excluded from [`Breakdown::total_ns`].
    pub busywait_ns: u64,
    /// Request handling compute (application + fault handler + map +
    /// reply construction).
    pub handling_ns: u64,
    /// Stalled RDMA fetch exposure: time the request was parked on or
    /// spinning for a fetch (fetch wall time hidden under useful work
    /// is *not* charged here).
    pub rdma_ns: u64,
    /// Context-switch time (unithread switches, preemption switches).
    pub ctxswitch_ns: u64,
    /// Client↔server network time (request delivery + reply flight).
    pub net_ns: u64,
}

impl Breakdown {
    /// Sum of the disjoint wall-clock components; equals the request's
    /// end-to-end latency exactly for span-derived breakdowns.
    /// `busywait_ns` is excluded: it is a wasted-cycles overlay on the
    /// queueing/rdma wall time, reported separately.
    pub fn total_ns(&self) -> u64 {
        self.queueing_ns + self.handling_ns + self.rdma_ns + self.ctxswitch_ns + self.net_ns
    }

    /// Folds a span-layer attribution into the figure-2c/7c component
    /// scheme. The mapping keeps [`Breakdown::total_ns`] equal to
    /// `cp.e2e_ns` (the ten phases partition e2e exactly):
    ///
    /// - queueing ← dispatch + queue + qp_stall + tx_wait
    /// - handling ← handle + reply
    /// - rdma ← fetch_wait + spin (stalled fetch exposure)
    /// - ctxswitch ← ctx, net ← net
    /// - busywait ← spin + qp_stall + tx_wait (cycles burned polling;
    ///   overlay, not a component)
    pub fn from_critical_path(cp: &CriticalPath) -> Breakdown {
        Breakdown {
            queueing_ns: cp.dispatch_ns + cp.queue_ns + cp.qp_stall_ns + cp.tx_wait_ns,
            busywait_ns: cp.spin_ns + cp.qp_stall_ns + cp.tx_wait_ns,
            handling_ns: cp.handle_ns + cp.reply_ns,
            rdma_ns: cp.fetch_wait_ns + cp.spin_ns,
            ctxswitch_ns: cp.ctx_ns,
            net_ns: cp.net_ns,
        }
    }
}

/// Mean breakdown of the requests whose end-to-end latency sits around
/// a percentile (the paper plots component composition at P10/P50/P99/
/// P99.9).
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakdownAt {
    /// The percentile this row describes.
    pub percentile: f64,
    /// Mean components of requests in the window around the percentile.
    pub mean: BreakdownF,
    /// Mean end-to-end latency of the same window; equals
    /// [`BreakdownF::total_ns`] up to float rounding (the components
    /// partition each request's e2e exactly).
    pub mean_e2e_ns: f64,
}

/// Fractional breakdown (means).
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakdownF {
    /// See [`Breakdown::queueing_ns`].
    pub queueing_ns: f64,
    /// See [`Breakdown::busywait_ns`].
    pub busywait_ns: f64,
    /// See [`Breakdown::handling_ns`].
    pub handling_ns: f64,
    /// See [`Breakdown::rdma_ns`].
    pub rdma_ns: f64,
    /// See [`Breakdown::ctxswitch_ns`].
    pub ctxswitch_ns: f64,
    /// See [`Breakdown::net_ns`].
    pub net_ns: f64,
}

impl BreakdownF {
    /// Sum of the disjoint wall-clock components (busy-wait excluded),
    /// mirroring [`Breakdown::total_ns`].
    pub fn total_ns(&self) -> f64 {
        self.queueing_ns + self.handling_ns + self.rdma_ns + self.ctxswitch_ns + self.net_ns
    }
}

/// Collects end-to-end latencies (per request class), breakdowns and
/// drop counts over a measurement window.
pub struct Recorder {
    warmup_end: SimTime,
    measure_end: SimTime,
    overall: Histogram,
    per_class: Vec<Histogram>,
    breakdowns: Vec<(u64, Breakdown)>,
    keep_breakdowns: bool,
    completed: u64,
    completed_in_window: u64,
    dropped: u64,
    first_completion: Option<SimTime>,
    last_completion: Option<SimTime>,
}

impl Recorder {
    /// Creates a recorder measuring completions whose *reply RX time*
    /// falls in `[warmup_end, measure_end)` (steady-state completions,
    /// as a real load generator measures).
    pub fn new(warmup_end: SimTime, measure_end: SimTime, classes: usize) -> Recorder {
        Recorder {
            warmup_end,
            measure_end,
            overall: Histogram::new(),
            per_class: (0..classes.max(1)).map(|_| Histogram::new()).collect(),
            breakdowns: Vec::new(),
            keep_breakdowns: false,
            completed: 0,
            completed_in_window: 0,
            dropped: 0,
            first_completion: None,
            last_completion: None,
        }
    }

    /// Enables per-request breakdown retention (memory-proportional to
    /// completions; used by the breakdown figures only).
    pub fn keep_breakdowns(&mut self, on: bool) {
        self.keep_breakdowns = on;
    }

    /// Records a completed request.
    pub fn complete(
        &mut self,
        class: u16,
        tx_time: SimTime,
        rx_time: SimTime,
        breakdown: Breakdown,
    ) {
        self.completed += 1;
        if rx_time < self.warmup_end || rx_time >= self.measure_end {
            return;
        }
        let e2e = rx_time.since(tx_time).as_nanos();
        self.overall.record(e2e);
        if let Some(h) = self.per_class.get_mut(class as usize) {
            h.record(e2e);
        }
        if self.keep_breakdowns {
            self.breakdowns.push((e2e, breakdown));
        }
        self.completed_in_window += 1;
        if self.first_completion.is_none() {
            self.first_completion = Some(rx_time);
        }
        self.last_completion = Some(rx_time);
    }

    /// Records a dropped request (RX ring or queue overflow).
    pub fn drop_request(&mut self, tx_time: SimTime) {
        if tx_time >= self.warmup_end && tx_time < self.measure_end {
            self.dropped += 1;
        }
    }

    /// The overall end-to-end latency histogram.
    pub fn overall(&self) -> &Histogram {
        &self.overall
    }

    /// Latency histogram of one request class.
    pub fn class(&self, class: u16) -> &Histogram {
        &self.per_class[class as usize]
    }

    /// Completions inside the measurement window.
    pub fn completed_in_window(&self) -> u64 {
        self.completed_in_window
    }

    /// All completions, including warm-up.
    pub fn completed_total(&self) -> u64 {
        self.completed
    }

    /// Drops inside the measurement window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Achieved throughput over the measurement window, in requests per
    /// second.
    pub fn achieved_rps(&self) -> f64 {
        let window = self.measure_end.since(self.warmup_end);
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.completed_in_window as f64 / window.as_secs_f64()
    }

    /// The first and last completion instants inside the window (for
    /// sanity-checking that a run actually spanned its window).
    pub fn completion_span(&self) -> Option<(SimTime, SimTime)> {
        Some((self.first_completion?, self.last_completion?))
    }

    /// Mean component breakdown of requests whose latency falls in a
    /// small rank window around percentile `p` (requires
    /// [`Recorder::keep_breakdowns`]).
    pub fn breakdown_at(&mut self, p: f64) -> BreakdownAt {
        assert!(
            self.keep_breakdowns,
            "breakdown_at requires keep_breakdowns(true)"
        );
        self.breakdowns.sort_unstable_by_key(|(e2e, _)| *e2e);
        let n = self.breakdowns.len();
        if n == 0 {
            return BreakdownAt {
                percentile: p,
                mean: BreakdownF::default(),
                mean_e2e_ns: 0.0,
            };
        }
        let rank = (((p / 100.0) * n as f64).ceil() as usize).clamp(1, n) - 1;
        // Average a ±0.05 % window (at least 11 samples) around the rank.
        let half = ((n / 2000) + 5).min(n / 2);
        let lo = rank.saturating_sub(half);
        let hi = (rank + half + 1).min(n);
        let window = &self.breakdowns[lo..hi];
        let m = window.len() as f64;
        let mut mean = BreakdownF::default();
        let mut mean_e2e_ns = 0.0;
        for (e2e, b) in window {
            mean.queueing_ns += b.queueing_ns as f64 / m;
            mean.busywait_ns += b.busywait_ns as f64 / m;
            mean.handling_ns += b.handling_ns as f64 / m;
            mean.rdma_ns += b.rdma_ns as f64 / m;
            mean.ctxswitch_ns += b.ctxswitch_ns as f64 / m;
            mean.net_ns += b.net_ns as f64 / m;
            mean_e2e_ns += *e2e as f64 / m;
        }
        BreakdownAt {
            percentile: p,
            mean,
            mean_e2e_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn warmup_excluded() {
        let mut r = Recorder::new(t(1000), t(2000), 1);
        r.complete(0, t(500), t(600), Breakdown::default()); // warm-up
        r.complete(0, t(1500), t(1700), Breakdown::default());
        r.complete(0, t(2500), t(2600), Breakdown::default()); // after end
        assert_eq!(r.completed_in_window(), 1);
        assert_eq!(r.completed_total(), 3);
        assert_eq!(r.overall().count(), 1);
        assert_eq!(r.overall().percentile(50.0), 200);
    }

    #[test]
    fn per_class_histograms() {
        let mut r = Recorder::new(t(0), t(10_000), 2);
        r.complete(0, t(1), t(101), Breakdown::default());
        r.complete(1, t(2), t(1002), Breakdown::default());
        assert_eq!(r.class(0).count(), 1);
        assert_eq!(r.class(1).count(), 1);
        assert!(r.class(1).percentile(50.0) > r.class(0).percentile(50.0));
    }

    #[test]
    fn achieved_rps_over_window() {
        let mut r = Recorder::new(t(0), t(1_000_000), 1); // 1 ms window
        for i in 0..100 {
            r.complete(0, t(i * 10_000), t(i * 10_000 + 500), Breakdown::default());
        }
        assert!((r.achieved_rps() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_span_tracks_window() {
        let mut r = Recorder::new(t(0), t(1_000_000), 1);
        assert_eq!(r.completion_span(), None);
        r.complete(0, t(100), t(500), Breakdown::default());
        r.complete(0, t(200), t(900), Breakdown::default());
        assert_eq!(r.completion_span(), Some((t(500), t(900))));
    }

    #[test]
    fn drops_counted_in_window_only() {
        let mut r = Recorder::new(t(100), t(200), 1);
        r.drop_request(t(50));
        r.drop_request(t(150));
        r.drop_request(t(250));
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn breakdown_at_partitions_fast_and_slow() {
        let mut r = Recorder::new(t(0), t(1_000_000), 1);
        r.keep_breakdowns(true);
        // 90 fast requests: all handling; 10 slow: mostly queueing.
        for i in 0..90 {
            let b = Breakdown {
                handling_ns: 800,
                ..Default::default()
            };
            r.complete(0, t(i * 100), t(i * 100 + 800), b);
        }
        for i in 0..10 {
            let b = Breakdown {
                handling_ns: 800,
                queueing_ns: 50_000,
                ..Default::default()
            };
            r.complete(0, t(50_000 + i * 100), t(100_800 + i * 100), b);
        }
        let p50 = r.breakdown_at(50.0);
        let p99 = r.breakdown_at(99.0);
        assert!(p50.mean.queueing_ns < 10_000.0, "{:?}", p50);
        assert!(p99.mean.queueing_ns > 20_000.0, "{:?}", p99);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = Breakdown {
            queueing_ns: 1,
            busywait_ns: 2,
            handling_ns: 3,
            rdma_ns: 4,
            ctxswitch_ns: 5,
            net_ns: 6,
        };
        assert_eq!(b.total_ns(), 19, "busywait excluded (wasted-cycle overlay)");
    }

    #[test]
    fn breakdown_from_critical_path_partitions_e2e() {
        let cp = CriticalPath {
            e2e_ns: 1_000,
            net_ns: 100,
            dispatch_ns: 50,
            queue_ns: 150,
            handle_ns: 200,
            spin_ns: 80,
            fetch_wait_ns: 220,
            qp_stall_ns: 60,
            tx_wait_ns: 40,
            ctx_ns: 70,
            reply_ns: 30,
            fetch_wall_ns: 500,
            fetch_hidden_ns: 200,
        };
        assert_eq!(cp.components_sum(), cp.e2e_ns);
        let b = Breakdown::from_critical_path(&cp);
        assert_eq!(b.total_ns(), cp.e2e_ns, "components partition e2e");
        assert_eq!(b.queueing_ns, 50 + 150 + 60 + 40);
        assert_eq!(b.rdma_ns, 220 + 80);
        assert_eq!(b.busywait_ns, 80 + 60 + 40);
        assert_eq!(b.handling_ns, 230);
        assert_eq!(b.net_ns, 100);
    }

    #[test]
    fn breakdown_at_reports_window_mean_e2e() {
        let mut r = Recorder::new(t(0), t(1_000_000), 1);
        r.keep_breakdowns(true);
        for i in 0..200u64 {
            let q = 100 + i * 10;
            let b = Breakdown {
                queueing_ns: q,
                handling_ns: 700,
                net_ns: 200,
                ..Default::default()
            };
            r.complete(0, t(i * 1_000), t(i * 1_000 + b.total_ns()), b);
        }
        for p in [10.0, 50.0, 99.0, 99.9] {
            let row = r.breakdown_at(p);
            assert!(
                (row.mean.total_ns() - row.mean_e2e_ns).abs() < 0.5,
                "p{p}: components {} vs e2e {}",
                row.mean.total_ns(),
                row.mean_e2e_ns
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires keep_breakdowns")]
    fn breakdown_requires_opt_in() {
        let mut r = Recorder::new(t(0), t(1), 1);
        r.breakdown_at(50.0);
    }
}
