//! Multi-tenant traffic plane: N independent arrival sources merged
//! into one deterministic stream tagged with tenant ids.
//!
//! A [`TenantSpec`] describes one tenant — its offered rate, the app it
//! runs, a priority class, an optional MMPP burst shape and an optional
//! latency SLO (the PR 5 `lat<OBJ:BUDGET@WINDOW` grammar, parsed with
//! [`desim::parse_slo_spec`]). A [`TenantPlane`] is the full mix plus
//! the admission knobs the runtime enforces (per-tenant token buckets,
//! the low-priority shed watermark). [`TenantMix`] turns a plane into
//! the merged arrival stream.
//!
//! Determinism contract: every tenant draws from its *own* generator,
//! seeded as `base_seed ^ golden_ratio * index ^ seed_bump`, and the
//! merge is a total order on `(time, tenant index)`. Changing one
//! tenant's `seed_bump` therefore reshuffles only that tenant's arrival
//! instants — the other tenants' subsequences are byte-identical (see
//! `per_tenant_streams_are_independent`). With a single tenant and
//! `seed_bump = 0` the stream is *exactly* `OpenLoop::new(rate, seed)`,
//! which is what keeps `tenants = 1` runs on the golden byte stream.

use crate::arrivals::{BurstyLoop, OpenLoop};
use desim::{SimDuration, SimTime, SloRule};

/// Dispatcher priority class of a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantPriority {
    /// Served first; never shed by the watermark policy.
    High,
    /// Served after every queued high-priority request; shed once the
    /// dispatcher queue crosses the plane's watermark.
    Low,
}

impl TenantPriority {
    /// Lower-case display name (stable — the run JSON uses it).
    pub fn name(self) -> &'static str {
        match self {
            TenantPriority::High => "high",
            TenantPriority::Low => "low",
        }
    }
}

/// One tenant of the mix.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (defaults to `tN` when parsed from a spec string).
    pub name: String,
    /// Mean offered rate in requests per second.
    pub rate_rps: f64,
    /// App the tenant runs — a workload name resolved by the caller
    /// (`array`, `kvs`, `llm`, …); the plane itself is app-agnostic.
    pub app: String,
    /// Dispatcher priority class.
    pub priority: TenantPriority,
    /// SLO rules evaluated over the tenant's own completion window.
    pub slo: Vec<SloRule>,
    /// MMPP burst shape `(peak_factor, mean_phase)`; `None` = Poisson.
    pub burst: Option<(f64, SimDuration)>,
    /// XORed into the tenant's derived seed — lets tests perturb one
    /// tenant's stream without touching the others.
    pub seed_bump: u64,
    /// Token-bucket admission rate in requests per second; `None`
    /// admits everything (no policing).
    pub bucket_rps: Option<f64>,
    /// Token-bucket burst capacity in requests.
    pub bucket_burst: u32,
}

impl TenantSpec {
    /// A Poisson tenant with no SLO and no admission cap.
    pub fn new(rate_rps: f64, app: impl Into<String>, priority: TenantPriority) -> TenantSpec {
        assert!(rate_rps > 0.0, "tenant rate must be positive");
        TenantSpec {
            name: String::new(),
            rate_rps,
            app: app.into(),
            priority,
            slo: Vec::new(),
            burst: None,
            seed_bump: 0,
            bucket_rps: None,
            bucket_burst: 64,
        }
    }

    /// Builder: attach a parsed SLO rule set.
    pub fn with_slo(mut self, slo: Vec<SloRule>) -> TenantSpec {
        self.slo = slo;
        self
    }

    /// Builder: MMPP bursts instead of Poisson arrivals.
    pub fn with_burst(mut self, peak_factor: f64, mean_phase: SimDuration) -> TenantSpec {
        self.burst = Some((peak_factor, mean_phase));
        self
    }

    /// Builder: token-bucket admission cap.
    pub fn with_bucket(mut self, rate_rps: f64, burst: u32) -> TenantSpec {
        assert!(rate_rps > 0.0 && burst > 0, "bucket must admit something");
        self.bucket_rps = Some(rate_rps);
        self.bucket_burst = burst;
        self
    }

    /// Builder: perturb this tenant's derived seed.
    pub fn with_seed_bump(mut self, bump: u64) -> TenantSpec {
        self.seed_bump = bump;
        self
    }

    /// Parses one tenant field: `RATE[@BUCKET]:APP:PRIO[:SLO]`, where
    /// `RATE` accepts `k`/`m` suffixes (`800k`, `1.2m`), the optional
    /// `@BUCKET` rate enables token-bucket admission policing at that
    /// rate (burst 64), `APP` is a workload name, `PRIO` is `hi`/`high`
    /// or `lo`/`low`, and the optional trailing `SLO` is a full PR 5
    /// spec (it may itself contain `:`, so the split stops after the
    /// third field).
    pub fn parse(field: &str) -> Result<TenantSpec, String> {
        let mut parts = field.splitn(4, ':');
        let rate = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("empty tenant field in {field:?}"))?;
        let (rate, bucket) = match rate.split_once('@') {
            Some((r, b)) => (r, Some(parse_rate(b)?)),
            None => (rate, None),
        };
        let rate_rps = parse_rate(rate)?;
        let app = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("tenant {field:?}: missing app name"))?;
        let prio = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("tenant {field:?}: missing priority (hi/lo)"))?;
        let priority = match prio {
            "hi" | "high" => TenantPriority::High,
            "lo" | "low" => TenantPriority::Low,
            other => return Err(format!("tenant {field:?}: unknown priority {other:?}")),
        };
        let slo = match parts.next() {
            Some(spec) if !spec.is_empty() => desim::parse_slo_spec(spec)
                .map_err(|e| format!("tenant {field:?}: bad SLO spec: {e}"))?,
            _ => Vec::new(),
        };
        let mut spec = TenantSpec::new(rate_rps, app, priority).with_slo(slo);
        if let Some(b) = bucket {
            spec = spec.with_bucket(b, 64);
        }
        Ok(spec)
    }
}

/// Parses `800k` / `1.2m` / `250000` into requests per second.
fn parse_rate(s: &str) -> Result<f64, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 1e3),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 1e6),
        _ => (s, 1.0),
    };
    let v: f64 = digits
        .parse()
        .map_err(|_| format!("bad rate {s:?} (expected e.g. 800k, 1.2m, 250000)"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("rate {s:?} must be positive and finite"));
    }
    Ok(v * mult)
}

/// The full tenant mix plus the admission knobs the runtime enforces.
#[derive(Debug, Clone)]
pub struct TenantPlane {
    /// The tenants, in id order (tenant ids are indices into this).
    pub specs: Vec<TenantSpec>,
    /// Dispatcher-queue depth beyond which low-priority arrivals are
    /// shed; `None` disables watermark shedding.
    pub shed_watermark: Option<usize>,
}

impl TenantPlane {
    /// A plane over explicit specs; names default to `tN`.
    pub fn new(mut specs: Vec<TenantSpec>) -> TenantPlane {
        assert!(
            !specs.is_empty(),
            "a tenant plane needs at least one tenant"
        );
        for (i, s) in specs.iter_mut().enumerate() {
            if s.name.is_empty() {
                s.name = format!("t{i}");
            }
        }
        TenantPlane {
            specs,
            shed_watermark: None,
        }
    }

    /// Builder: enable watermark shedding of low-priority arrivals.
    pub fn with_shed_watermark(mut self, depth: usize) -> TenantPlane {
        self.shed_watermark = Some(depth);
        self
    }

    /// Parses a `;`-separated list of tenant fields (see
    /// [`TenantSpec::parse`]), e.g.
    /// `600k:kvs:hi:lat<150us:0.1@1ms;1.8m:llm:lo`.
    pub fn parse(spec: &str) -> Result<TenantPlane, String> {
        let specs: Vec<TenantSpec> = spec
            .split(';')
            .filter(|f| !f.is_empty())
            .map(TenantSpec::parse)
            .collect::<Result<_, _>>()?;
        if specs.is_empty() {
            return Err("empty tenant spec".into());
        }
        if specs.len() > desim::trace::tenant_names::MAX_TENANTS {
            return Err(format!(
                "at most {} tenants supported",
                desim::trace::tenant_names::MAX_TENANTS
            ));
        }
        Ok(TenantPlane::new(specs))
    }

    /// Total offered rate across all tenants.
    pub fn total_rate_rps(&self) -> f64 {
        self.specs.iter().map(|s| s.rate_rps).sum()
    }
}

/// The derived per-tenant seed: tenant 0 with no bump keeps the base
/// seed bit-for-bit (single-tenant golden byte-identity); later tenants
/// decorrelate via a golden-ratio stride.
fn tenant_seed(base: u64, index: usize, bump: u64) -> u64 {
    base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bump
}

/// One tenant's arrival source.
enum Source {
    Poisson(OpenLoop),
    Mmpp(BurstyLoop),
}

impl Source {
    fn next_arrival(&mut self) -> SimTime {
        match self {
            Source::Poisson(s) => s.next_arrival(),
            Source::Mmpp(s) => s.next_arrival(),
        }
    }
}

/// N independent arrival sources merged into one stream tagged with
/// tenant ids, by total order on `(time, tenant index)`.
pub struct TenantMix {
    sources: Vec<Source>,
    /// The head arrival of each tenant, not yet emitted.
    pending: Vec<SimTime>,
    generated: u64,
}

impl TenantMix {
    /// Builds the merged stream for a plane.
    pub fn new(plane: &TenantPlane, base_seed: u64) -> TenantMix {
        let mut sources: Vec<Source> = plane
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let seed = tenant_seed(base_seed, i, spec.seed_bump);
                match spec.burst {
                    Some((peak, phase)) => {
                        Source::Mmpp(BurstyLoop::new(spec.rate_rps, peak, phase, seed))
                    }
                    None => Source::Poisson(OpenLoop::new(spec.rate_rps, seed)),
                }
            })
            .collect();
        let pending = sources.iter_mut().map(Source::next_arrival).collect();
        TenantMix {
            sources,
            pending,
            generated: 0,
        }
    }

    /// Next arrival in the merged stream: the earliest pending instant,
    /// ties broken by the lower tenant index.
    pub fn next_arrival(&mut self) -> (SimTime, u16) {
        let mut best = 0usize;
        for i in 1..self.pending.len() {
            if self.pending[i] < self.pending[best] {
                best = i;
            }
        }
        let at = self.pending[best];
        self.pending[best] = self.sources[best].next_arrival();
        self.generated += 1;
        (at, best as u16)
    }

    /// Number of tenants in the mix.
    pub fn tenants(&self) -> usize {
        self.sources.len()
    }

    /// Arrivals emitted so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane3() -> TenantPlane {
        TenantPlane::new(vec![
            TenantSpec::new(300_000.0, "kvs", TenantPriority::High),
            TenantSpec::new(500_000.0, "llm", TenantPriority::Low),
            TenantSpec::new(200_000.0, "array", TenantPriority::Low),
        ])
    }

    /// Drains `n` arrivals, returning each tenant's own subsequence.
    fn subsequences(mix: &mut TenantMix, n: usize) -> Vec<Vec<SimTime>> {
        let mut out = vec![Vec::new(); mix.tenants()];
        for _ in 0..n {
            let (at, t) = mix.next_arrival();
            out[t as usize].push(at);
        }
        out
    }

    #[test]
    fn merged_stream_is_time_ordered_and_deterministic() {
        let mut a = TenantMix::new(&plane3(), 7);
        let mut b = TenantMix::new(&plane3(), 7);
        let mut last = SimTime(0);
        for _ in 0..5_000 {
            let (ta, ia) = a.next_arrival();
            let (tb, ib) = b.next_arrival();
            assert_eq!((ta, ia), (tb, ib), "equal seeds must merge identically");
            assert!(ta >= last, "merged stream must be time-ordered");
            last = ta;
        }
        assert_eq!(a.generated(), 5_000);
    }

    #[test]
    fn single_tenant_reproduces_open_loop_exactly() {
        // The byte-identity keystone: one Poisson tenant with no bump
        // *is* OpenLoop under the same seed.
        let plane = TenantPlane::new(vec![TenantSpec::new(
            900_000.0,
            "array",
            TenantPriority::High,
        )]);
        let mut mix = TenantMix::new(&plane, 5);
        let mut solo = OpenLoop::new(900_000.0, 5);
        for _ in 0..10_000 {
            let (at, t) = mix.next_arrival();
            assert_eq!(t, 0);
            assert_eq!(at, solo.next_arrival());
        }
    }

    #[test]
    fn per_tenant_streams_are_independent() {
        // Bumping tenant 2's seed must not move a single arrival of
        // tenants 0 and 1 — only the interleaving changes.
        let mut base = TenantMix::new(&plane3(), 11);
        let mut bumped_plane = plane3();
        bumped_plane.specs[2].seed_bump = 0xDEAD_BEEF;
        let mut bumped = TenantMix::new(&bumped_plane, 11);
        let a = subsequences(&mut base, 6_000);
        let b = subsequences(&mut bumped, 6_000);
        // Compare the common prefix of each unperturbed tenant (the
        // drain cut lands at different per-tenant counts).
        for t in 0..2 {
            let n = a[t].len().min(b[t].len());
            assert!(n > 500, "tenant {t} should have arrivals");
            assert_eq!(a[t][..n], b[t][..n], "tenant {t} stream moved");
        }
        assert_ne!(
            a[2][..a[2].len().min(b[2].len())],
            b[2][..a[2].len().min(b[2].len())],
            "the bumped tenant must actually change"
        );
    }

    #[test]
    fn rates_partition_the_merged_stream() {
        // Each tenant's share of arrivals tracks its share of the rate.
        let mut mix = TenantMix::new(&plane3(), 13);
        let counts = subsequences(&mut mix, 50_000);
        let total: f64 = 1_000_000.0;
        for (t, rate) in [300_000.0, 500_000.0, 200_000.0].iter().enumerate() {
            let share = counts[t].len() as f64 / 50_000.0;
            let want = rate / total;
            assert!(
                (share - want).abs() < 0.02,
                "tenant {t}: share {share:.3} vs rate share {want:.3}"
            );
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plane =
            TenantPlane::parse("600k:kvs:hi:lat<150us:0.1@1ms;1.8m:llm:lo;250000:array:low")
                .unwrap();
        assert_eq!(plane.specs.len(), 3);
        assert_eq!(plane.specs[0].rate_rps, 600_000.0);
        assert_eq!(plane.specs[0].app, "kvs");
        assert_eq!(plane.specs[0].priority, TenantPriority::High);
        assert_eq!(plane.specs[0].slo.len(), 1);
        assert!(matches!(plane.specs[0].slo[0], SloRule::LatencyBurn { .. }));
        assert_eq!(plane.specs[1].rate_rps, 1_800_000.0);
        assert_eq!(plane.specs[1].priority, TenantPriority::Low);
        assert!(plane.specs[1].slo.is_empty());
        assert_eq!(plane.specs[2].rate_rps, 250_000.0);
        assert_eq!(plane.specs[2].name, "t2");
        assert!((plane.total_rate_rps() - 2_650_000.0).abs() < 1.0);
    }

    #[test]
    fn spec_parsing_reads_the_bucket_suffix() {
        // `RATE@BUCKET` polices admission below the offered rate; the
        // `@` inside a trailing SLO window must not confuse the split.
        let plane = TenantPlane::parse("3m@400k:llm:lo;300k:kvs:hi:lat<200us:0.001@10ms").unwrap();
        assert_eq!(plane.specs[0].rate_rps, 3_000_000.0);
        assert_eq!(plane.specs[0].bucket_rps, Some(400_000.0));
        assert_eq!(plane.specs[0].bucket_burst, 64);
        assert_eq!(plane.specs[1].bucket_rps, None);
        assert_eq!(plane.specs[1].slo.len(), 1);
        assert!(TenantPlane::parse("3m@:llm:lo").is_err());
        assert!(TenantPlane::parse("3m@0:llm:lo").is_err());
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(TenantPlane::parse("").is_err());
        assert!(TenantPlane::parse("0:kvs:hi").is_err());
        assert!(TenantPlane::parse("800k:kvs").is_err());
        assert!(TenantPlane::parse("800k:kvs:mid").is_err());
        assert!(TenantPlane::parse("800k:kvs:hi:lat<oops").is_err());
        assert!(TenantPlane::parse("1k:a:hi;".repeat(9).as_str()).is_err());
    }
}
