//! Regenerates fig8 sensitivity (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "fig8_sensitivity",
        adios_core::experiments::fig8_sensitivity::run,
    );
}
