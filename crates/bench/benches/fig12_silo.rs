//! Regenerates fig12 silo (see `adios_core::experiments`).

fn main() {
    bench::harness("fig12_silo", adios_core::experiments::fig12_silo::run);
}
