//! Regenerates fig10 memcached (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "fig10_memcached",
        adios_core::experiments::fig10_memcached::run,
    );
}
