//! Regenerates the design-choice ablations (DESIGN.md §6).

fn main() {
    bench::harness_multi("ablations", adios_core::experiments::ablations::run);
}
