//! Regenerates table2 workloads (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "table2_workloads",
        adios_core::experiments::table2_workloads::run,
    );
}
