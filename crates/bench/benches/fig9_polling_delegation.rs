//! Regenerates fig9 polling delegation (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "fig9_polling_delegation",
        adios_core::experiments::fig9_polling::run,
    );
}
