//! Regenerates fig11 rocksdb (see `adios_core::experiments`).

fn main() {
    bench::harness("fig11_rocksdb", adios_core::experiments::fig11_rocksdb::run);
}
