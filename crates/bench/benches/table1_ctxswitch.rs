//! Regenerates table1 ctxswitch (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "table1_ctxswitch",
        adios_core::experiments::table1_ctxswitch::run,
    );
}
