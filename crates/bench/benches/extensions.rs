//! Regenerates the extension studies (Infiniswap, huge pages, Leap,
//! work stealing, burst tolerance, scalability).

fn main() {
    bench::harness_multi("extensions", adios_core::experiments::extensions::run);
}
