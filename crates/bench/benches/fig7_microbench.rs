//! Regenerates fig7 microbench (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "fig7_microbench",
        adios_core::experiments::fig7_microbench::run,
    );
}
