//! Criterion microbenchmarks of the hot components: the real unithread
//! switch (Table 1's mechanism), the DES event queue, the histogram and
//! the page cache. These quantify that the *simulator itself* is fast
//! enough for the full-figure sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use desim::{EventQueue, Histogram, Rng, SimTime};
use paging::{EvictionPolicy, PageCache, PageState};
use unithread::cycles::{measure_heavy_switch, measure_unithread_switch};
use unithread::Runner;

fn bench_context_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_switch");
    // Criterion measures the measurement loop itself: one iteration =
    // 2000 round trips = 4000 one-way switches.
    g.bench_function("unithread_4000_switches", |b| {
        b.iter(|| black_box(measure_unithread_switch(1, 2_000)))
    });
    g.bench_function("ucontext_equivalent_4000_switches", |b| {
        b.iter(|| black_box(measure_heavy_switch(1, 2_000)))
    });
    g.finish();
}

fn bench_runner(c: &mut Criterion) {
    c.bench_function("runner_spawn_run_recycle", |b| {
        let mut runner = Runner::new(64, 16 * 1024, 128);
        b.iter(|| {
            let tid = runner.spawn(b"req", |y| y.yield_now()).unwrap();
            runner.run_until_idle();
            black_box(tid)
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = Rng::new(7);
        b.iter_batched(
            || {
                let mut times: Vec<u64> = (0..1_000).map(|_| rng.gen_range(1_000_000)).collect();
                times.sort_unstable();
                times
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime(*t), i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_10k", |b| {
        let mut rng = Rng::new(9);
        let values: Vec<u64> = (0..10_000)
            .map(|_| 1 + rng.gen_range(100_000_000))
            .collect();
        b.iter(|| {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            black_box(h.percentile(99.9))
        });
    });
}

fn bench_page_cache(c: &mut Criterion) {
    c.bench_function("page_cache_fault_evict_cycle", |b| {
        let mut cache = PageCache::new(1_024, 1 << 20, EvictionPolicy::Clock);
        let mut rng = Rng::new(5);
        cache.warm(900, &mut rng);
        b.iter(|| {
            let page = rng.gen_range(1 << 20);
            match cache.lookup(page) {
                PageState::Resident => cache.touch(page, false),
                PageState::InFlight => cache.complete_fetch(page),
                PageState::NotResident => {
                    if !cache.begin_fetch(page) {
                        cache.evict_one();
                        assert!(cache.begin_fetch(page));
                    }
                    cache.complete_fetch(page);
                }
            }
            black_box(cache.free_frames())
        });
    });
}

fn bench_simulation_throughput(c: &mut Criterion) {
    // How fast the DES itself runs: one 4 ms microbenchmark window at
    // 1.3 MRPS is ~50k requests / ~500k events per iteration.
    use adios_core::prelude::*;
    c.bench_function("simulation_4ms_window_at_1_3mrps", |b| {
        let mut wl = ArrayIndexWorkload::new(16_384);
        b.iter(|| {
            let r = run_one(
                SystemConfig::adios(),
                &mut wl,
                RunParams {
                    offered_rps: 1_300_000.0,
                    seed: 3,
                    warmup: desim::SimDuration::from_millis(1),
                    measure: desim::SimDuration::from_millis(4),
                    local_mem_fraction: 0.2,
                    keep_breakdowns: false,
                    burst: None,
                    timeline_bucket: None,
                },
            );
            black_box(r.recorder.completed_in_window())
        });
    });
}

criterion_group!(
    benches,
    bench_context_switch,
    bench_runner,
    bench_event_queue,
    bench_histogram,
    bench_page_cache,
    bench_simulation_throughput
);
criterion_main!(benches);
