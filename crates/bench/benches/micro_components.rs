//! Microbenchmarks of the hot components: the real unithread switch
//! (Table 1's mechanism), the DES event queue, the histogram and the
//! page cache. These quantify that the *simulator itself* is fast
//! enough for the full-figure sweeps.
//!
//! Self-contained harness (no external benchmark crate): each case is
//! timed over enough iterations to amortize clock reads, after a short
//! warm-up, and reports mean wall time per iteration.

use std::hint::black_box;
use std::time::Instant;

use desim::{EventQueue, Histogram, Rng, SimTime};
use paging::{EvictionPolicy, PageCache, PageState};
use unithread::cycles::{measure_heavy_switch, measure_unithread_switch};
use unithread::Runner;

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warm-up
/// runs) and prints mean ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..(iters / 10 + 1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:<44} {:>12.0} ns/iter  ({iters} iters)",
        total.as_nanos() as f64 / iters as f64
    );
}

fn bench_context_switch() {
    // One iteration = 2000 round trips = 4000 one-way switches.
    bench("context_switch/unithread_4000_switches", 200, || {
        black_box(measure_unithread_switch(1, 2_000));
    });
    bench("context_switch/ucontext_equivalent_4000", 200, || {
        black_box(measure_heavy_switch(1, 2_000));
    });
}

fn bench_runner() {
    let mut runner = Runner::new(64, 16 * 1024, 128);
    bench("runner_spawn_run_recycle", 100_000, || {
        let tid = runner.spawn(b"req", |y| y.yield_now()).unwrap();
        runner.run_until_idle();
        black_box(tid);
    });
}

fn bench_event_queue() {
    let mut rng = Rng::new(7);
    let mut times: Vec<u64> = (0..1_000).map(|_| rng.gen_range(1_000_000)).collect();
    times.sort_unstable();
    bench("event_queue_push_pop_1k", 2_000, || {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        black_box(n);
    });
}

fn bench_histogram() {
    let mut rng = Rng::new(9);
    let values: Vec<u64> = (0..10_000)
        .map(|_| 1 + rng.gen_range(100_000_000))
        .collect();
    bench("histogram_record_10k", 2_000, || {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        black_box(h.percentile(99.9));
    });
}

fn bench_page_cache() {
    let mut cache = PageCache::new(1_024, 1 << 20, EvictionPolicy::Clock);
    let mut rng = Rng::new(5);
    cache.warm(900, &mut rng);
    bench("page_cache_fault_evict_cycle", 1_000_000, || {
        let page = rng.gen_range(1 << 20);
        match cache.lookup(page) {
            PageState::Resident => cache.touch(page, false),
            PageState::InFlight => cache.complete_fetch(page),
            PageState::NotResident => {
                if !cache.begin_fetch(page) {
                    cache.evict_one();
                    assert!(cache.begin_fetch(page));
                }
                cache.complete_fetch(page);
            }
        }
        black_box(cache.free_frames());
    });
}

fn bench_simulation_throughput() {
    // How fast the DES itself runs: one 4 ms microbenchmark window at
    // 1.3 MRPS is ~50k requests / ~500k events per iteration.
    use adios_core::prelude::*;
    let mut wl = ArrayIndexWorkload::new(16_384);
    bench("simulation_4ms_window_at_1_3mrps", 10, || {
        let r = run_one(
            SystemConfig::adios(),
            &mut wl,
            RunParams {
                offered_rps: 1_300_000.0,
                seed: 3,
                warmup: desim::SimDuration::from_millis(1),
                measure: desim::SimDuration::from_millis(4),
                local_mem_fraction: 0.2,
                keep_breakdowns: false,
                burst: None,
                timeline_bucket: None,
                ..Default::default()
            },
        );
        black_box(r.recorder.completed_in_window());
    });
}

fn main() {
    bench_context_switch();
    bench_runner();
    bench_event_queue();
    bench_histogram();
    bench_page_cache();
    bench_simulation_throughput();
}
