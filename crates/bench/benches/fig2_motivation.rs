//! Regenerates fig2 motivation (see `adios_core::experiments`).

fn main() {
    bench::harness(
        "fig2_motivation",
        adios_core::experiments::fig2_motivation::run,
    );
}
