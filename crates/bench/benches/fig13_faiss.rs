//! Regenerates fig13 faiss (see `adios_core::experiments`).

fn main() {
    bench::harness("fig13_faiss", adios_core::experiments::fig13_faiss::run);
}
